//! Recursive-descent parser for the SELECT/WHERE/COST/EPOCH grammar.
//!
//! ```text
//! query  := SELECT items FROM ident [WHERE preds] [COST costs]
//!           [EPOCH DURATION num [unit]]
//! items  := item {',' item}
//! item   := ident '(' [ident] ')'   // aggregate or arbitrary function
//!         | ident                   // plain attribute
//! preds  := pred {AND pred | ',' pred}
//! pred   := 'region' '(' ident ')'
//!         | ident op num            // op ∈ =, <, <=, >, >=
//! costs  := cost {',' cost}
//! cost   := ('energy'|'time'|'accuracy') [op] num
//! unit   := 's' | 'ms' | 'min'
//! ```

use crate::ast::{CmpOp, CostBound, Pred, Query, SelectItem};
use crate::lexer::{lex, LexError, Token};
use pg_sensornet::aggregate::AggFn;
use pg_sim::Duration;
use std::fmt;

/// A parse failure with a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong, and roughly where.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error: {}", self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            msg: format!("{} at byte {}", e.msg, e.pos),
        }
    }
}

struct P {
    toks: Vec<Token>,
    i: usize,
}

impl P {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.i)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            msg: format!("{} (at token {})", msg.into(), self.i),
        }
    }

    /// Consume an identifier equal (case-insensitively) to `kw`.
    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(self.err(format!("expected '{kw}', found {other:?}"))),
        }
    }

    /// Is the current token the given keyword?
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        match self.next() {
            Some(Token::Num(x)) => Ok(x),
            other => Err(self.err(format!("expected number, found {other:?}"))),
        }
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        let name = self.ident()?;
        if self.peek() == Some(&Token::LParen) {
            self.next();
            let arg = match self.peek() {
                Some(Token::Ident(_)) => Some(self.ident()?),
                _ => None,
            };
            match self.next() {
                Some(Token::RParen) => {}
                other => return Err(self.err(format!("expected ')', found {other:?}"))),
            }
            if let Some(agg) = AggFn::parse(&name) {
                let attr = arg.ok_or_else(|| self.err(format!("{name}() needs an attribute")))?;
                return Ok(SelectItem::Agg(agg, attr));
            }
            return Ok(SelectItem::Func(name, arg));
        }
        Ok(SelectItem::Attr(name))
    }

    fn pred(&mut self) -> Result<Pred, ParseError> {
        let name = self.ident()?;
        if name.eq_ignore_ascii_case("region") {
            match self.next() {
                Some(Token::LParen) => {}
                other => return Err(self.err(format!("expected '(', found {other:?}"))),
            }
            let region = self.ident()?;
            match self.next() {
                Some(Token::RParen) => {}
                other => return Err(self.err(format!("expected ')', found {other:?}"))),
            }
            return Ok(Pred::Region(region));
        }
        let op = match self.next() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            other => return Err(self.err(format!("expected comparison, found {other:?}"))),
        };
        let value = self.number()?;
        if name.eq_ignore_ascii_case("sensor_id") && op == CmpOp::Eq {
            if value < 0.0 || value.fract() != 0.0 {
                return Err(self.err(format!(
                    "sensor id must be a non-negative integer, got {value}"
                )));
            }
            return Ok(Pred::SensorId(value as u32));
        }
        Ok(Pred::Cmp(name, op, value))
    }

    fn cost(&mut self) -> Result<CostBound, ParseError> {
        let kind = self.ident()?;
        // Optional comparison operator (COST energy <= 0.5 or COST energy 0.5).
        if matches!(self.peek(), Some(Token::Le | Token::Lt | Token::Eq)) {
            self.next();
        }
        let value = self.number()?;
        if value < 0.0 {
            return Err(self.err(format!("cost bound must be non-negative, got {value}")));
        }
        match kind.to_ascii_lowercase().as_str() {
            "energy" => Ok(CostBound::EnergyJ(value)),
            "time" => Ok(CostBound::TimeS(value)),
            "accuracy" => Ok(CostBound::AccuracyRel(value)),
            other => Err(self.err(format!(
                "unknown cost dimension '{other}' (energy|time|accuracy)"
            ))),
        }
    }
}

/// Parse query text into an AST.
pub fn parse(input: &str) -> Result<Query, ParseError> {
    let mut p = P {
        toks: lex(input)?,
        i: 0,
    };
    p.keyword("select")?;
    let mut select = vec![p.select_item()?];
    while p.peek() == Some(&Token::Comma) {
        p.next();
        select.push(p.select_item()?);
    }
    p.keyword("from")?;
    let source = p.ident()?;

    let mut wher = Vec::new();
    if p.at_keyword("where") {
        p.next();
        wher.push(p.pred()?);
        // Predicates are conjoined by either AND or a comma.
        while p.at_keyword("and") || p.peek() == Some(&Token::Comma) {
            p.next();
            wher.push(p.pred()?);
        }
    }

    let mut cost = Vec::new();
    if p.at_keyword("cost") {
        p.next();
        cost.push(p.cost()?);
        while p.peek() == Some(&Token::Comma) {
            p.next();
            cost.push(p.cost()?);
        }
    }

    let mut epoch = None;
    if p.at_keyword("epoch") {
        p.next();
        p.keyword("duration")?;
        let value = p.number()?;
        if value <= 0.0 {
            return Err(p.err(format!("epoch duration must be positive, got {value}")));
        }
        let unit = if matches!(p.peek(), Some(Token::Ident(_))) {
            p.ident()?
        } else {
            "s".to_string()
        };
        let secs = match unit.to_ascii_lowercase().as_str() {
            "s" | "sec" | "seconds" => value,
            "ms" => value / 1_000.0,
            "min" | "minutes" => value * 60.0,
            other => return Err(p.err(format!("unknown epoch unit '{other}'"))),
        };
        epoch = Some(Duration::from_secs_f64(secs));
    }

    if let Some(t) = p.peek() {
        return Err(p.err(format!("trailing input starting at '{t}'")));
    }
    Ok(Query {
        select,
        source,
        wher,
        cost,
        epoch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's example: "Return temperature at Sensor # 10".
    #[test]
    fn simple_query_parses() {
        let q = parse("SELECT temp FROM sensors WHERE sensor_id = #10").unwrap();
        assert_eq!(q.select, vec![SelectItem::Attr("temp".into())]);
        assert_eq!(q.source, "sensors");
        assert_eq!(q.target_sensor(), Some(10));
        assert!(q.cost.is_empty());
        assert_eq!(q.epoch, None);
    }

    /// The paper's example: "Return Average Temperature in room # 210".
    #[test]
    fn aggregate_query_parses() {
        let q = parse("SELECT AVG(temp) FROM sensors WHERE region(room210)").unwrap();
        assert_eq!(q.first_agg(), Some(AggFn::Avg));
        assert_eq!(q.region(), Some("room210"));
    }

    /// The paper's example: "Find Temperature Distribution in room #210".
    #[test]
    fn complex_query_parses() {
        let q =
            parse("SELECT temperature_distribution() FROM sensors WHERE region(room210)").unwrap();
        assert!(q.has_complex_fn());
        assert!(!q.has_aggregate());
        assert_eq!(
            q.select[0],
            SelectItem::Func("temperature_distribution".into(), None)
        );
    }

    /// The paper's example: "Return temperature at Sensor #10 every 10 s".
    #[test]
    fn continuous_query_parses() {
        let q = parse("SELECT temp FROM sensors WHERE sensor_id = 10 EPOCH DURATION 10 s").unwrap();
        assert_eq!(q.epoch, Some(Duration::from_secs(10)));
    }

    #[test]
    fn full_clause_stack_with_braces() {
        let q = parse(
            "SELECT {MAX(temp), temp} from sensors \
             WHERE {region(floor2) AND temp > 40} \
             COST {energy <= 0.5, time <= 2, accuracy 0.05} \
             EPOCH DURATION 500 ms",
        )
        .unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.wher.len(), 2);
        assert_eq!(q.energy_bound(), Some(0.5));
        assert_eq!(q.time_bound(), Some(2.0));
        assert_eq!(q.accuracy_bound(), Some(0.05));
        assert_eq!(q.epoch, Some(Duration::from_millis(500)));
    }

    #[test]
    fn epoch_units() {
        let q = parse("SELECT temp FROM sensors EPOCH DURATION 2 min").unwrap();
        assert_eq!(q.epoch, Some(Duration::from_secs(120)));
        let q = parse("SELECT temp FROM sensors EPOCH DURATION 3").unwrap();
        assert_eq!(q.epoch, Some(Duration::from_secs(3)));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse("select temp from sensors where sensor_id = 1").is_ok());
        assert!(parse("SeLeCt temp FrOm sensors").is_ok());
    }

    #[test]
    fn error_cases_are_reported() {
        assert!(parse("").is_err());
        assert!(parse("SELECT FROM sensors").is_err());
        assert!(parse("SELECT temp").is_err());
        assert!(parse("SELECT temp FROM sensors WHERE").is_err());
        assert!(parse("SELECT temp FROM sensors COST banana 3").is_err());
        assert!(parse("SELECT temp FROM sensors EPOCH DURATION -5").is_err());
        assert!(parse("SELECT temp FROM sensors EPOCH DURATION 5 fortnights").is_err());
        assert!(parse("SELECT temp FROM sensors garbage").is_err());
        assert!(parse("SELECT AVG() FROM sensors").is_err());
        assert!(parse("SELECT temp FROM sensors WHERE sensor_id = 2.5").is_err());
        assert!(parse("SELECT temp FROM sensors COST energy -1").is_err());
    }

    #[test]
    fn arbitrary_function_with_argument() {
        let q = parse("SELECT fourier_spectrum(temp) FROM sensors").unwrap();
        assert_eq!(
            q.select[0],
            SelectItem::Func("fourier_spectrum".into(), Some("temp".into()))
        );
    }
}
