//! Property-based tests for the query language: total lexing, parser
//! robustness, and classification determinism.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_query::ast::{CostBound, Pred, SelectItem};
use pg_query::classify::{classify, inner_kind, QueryKind};
use pg_query::lexer::lex;
use pg_query::parse;
use pg_sensornet::aggregate::AggFn;
use proptest::prelude::*;

/// Generate structurally valid query text along with the facts we expect
/// the parser to recover.
#[derive(Debug, Clone)]
struct GenQuery {
    text: String,
    agg: Option<AggFn>,
    complex: bool,
    sensor_id: Option<u32>,
    region: Option<String>,
    epoch_s: Option<u32>,
    energy: Option<f64>,
}

fn arb_query() -> impl Strategy<Value = GenQuery> {
    let select = prop_oneof![
        Just((None, false, "temp".to_string())),
        prop_oneof![
            Just(AggFn::Avg),
            Just(AggFn::Max),
            Just(AggFn::Min),
            Just(AggFn::Sum),
            Just(AggFn::Count),
            Just(AggFn::StdDev)
        ]
        .prop_map(|a| (Some(a), false, format!("{}(temp)", a.name()))),
        Just((None, true, "temperature_distribution()".to_string())),
    ];
    let wher = prop_oneof![
        Just((None, None, String::new())),
        (1u32..500).prop_map(|id| (Some(id), None, format!(" WHERE sensor_id = {id}"))),
        "[a-z][a-z0-9]{0,8}".prop_map(|r| {
            let clause = format!(" WHERE region({r})");
            (None, Some(r), clause)
        }),
    ];
    let epoch = prop_oneof![
        Just((None, String::new())),
        (1u32..1_000).prop_map(|s| (Some(s), format!(" EPOCH DURATION {s} s"))),
    ];
    let cost = prop_oneof![
        Just((None, String::new())),
        (0.001f64..100.0).prop_map(|e| (Some(e), format!(" COST energy {e}"))),
    ];
    (select, wher, cost, epoch).prop_map(|(sel, wh, co, ep)| GenQuery {
        text: format!("SELECT {} FROM sensors{}{}{}", sel.2, wh.2, co.1, ep.1),
        agg: sel.0,
        complex: sel.1,
        sensor_id: wh.0,
        region: wh.1,
        epoch_s: ep.0,
        energy: co.0,
    })
}

proptest! {
    /// Generated well-formed queries always parse, and the parser recovers
    /// exactly the facts that were generated.
    #[test]
    fn parser_recovers_generated_facts(g in arb_query()) {
        let q = parse(&g.text).unwrap_or_else(|e| panic!("{}: {e}", g.text));
        prop_assert_eq!(q.first_agg(), g.agg);
        prop_assert_eq!(q.has_complex_fn(), g.complex);
        prop_assert_eq!(q.target_sensor(), g.sensor_id);
        prop_assert_eq!(q.region(), g.region.as_deref());
        prop_assert_eq!(
            q.epoch.map(|e| e.as_secs_f64().round() as u32),
            g.epoch_s
        );
        match (q.energy_bound(), g.energy) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs())),
            (None, None) => {}
            other => prop_assert!(false, "energy bound mismatch: {other:?}"),
        }
    }

    /// Classification is a total function of the recovered structure.
    #[test]
    fn classification_matches_structure(g in arb_query()) {
        let q = parse(&g.text).unwrap();
        let k = classify(&q);
        if g.epoch_s.is_some() {
            prop_assert_eq!(k, QueryKind::Continuous);
            let inner = inner_kind(&q);
            prop_assert_ne!(inner, QueryKind::Continuous);
        } else if g.complex {
            prop_assert_eq!(k, QueryKind::Complex);
        } else if g.agg.is_some() {
            prop_assert_eq!(k, QueryKind::Aggregate);
        } else {
            prop_assert_eq!(k, QueryKind::Simple);
        }
    }

    /// The lexer never panics on arbitrary input — it returns Ok or a
    /// positioned error.
    #[test]
    fn lexer_is_total(s in "\\PC{0,200}") {
        match lex(&s) {
            Ok(_) => {}
            Err(e) => prop_assert!(e.pos <= s.len()),
        }
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_is_total(s in "\\PC{0,200}") {
        let _ = parse(&s);
    }

    /// Parsing is deterministic: the same text yields the same AST.
    #[test]
    fn parsing_is_deterministic(g in arb_query()) {
        let a = parse(&g.text).unwrap();
        let b = parse(&g.text).unwrap();
        prop_assert_eq!(a, b);
    }

    /// AST accessors agree with the raw clause vectors.
    #[test]
    fn accessors_consistent(g in arb_query()) {
        let q = parse(&g.text).unwrap();
        prop_assert_eq!(
            q.has_aggregate(),
            q.select.iter().any(|s| matches!(s, SelectItem::Agg(_, _)))
        );
        prop_assert_eq!(
            q.target_sensor().is_some(),
            q.wher.iter().any(|p| matches!(p, Pred::SensorId(_)))
        );
        prop_assert_eq!(
            q.energy_bound().is_some(),
            q.cost.iter().any(|c| matches!(c, CostBound::EnergyJ(_)))
        );
    }
}
