//! Streaming-runtime integration tests over a real `PervasiveGrid`: the
//! batch-equivalence property (a t=0 arrival stream with preemption off is
//! bit-identical to closed-loop `submit` + `run_until_idle`), open-loop
//! Poisson load end to end, and tree-maintenance modes through the grid.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_core::{PervasiveGrid, TreeMaintenance};
use pg_runtime::{
    MultiQueryRuntime, PoissonArrivals, QueryOpts, RuntimeConfig, SchedPolicy, TraceArrivals,
};
use pg_sensornet::region::Region;
use pg_sim::{Duration, SimTime};
use proptest::prelude::*;

fn grid(seed: u64) -> PervasiveGrid {
    PervasiveGrid::building(1, 6, seed)
        .region("west", Region::room(0.0, 0.0, 14.0, 30.0))
        .region("east", Region::room(10.0, 0.0, 30.0, 30.0))
        .build()
}

/// Deadlines all ≥ one epoch so EDF admission never rejects at t=0.
const WORKLOAD: [(&str, u64); 6] = [
    ("SELECT AVG(temp) FROM sensors", 40),
    ("SELECT MAX(temp) FROM sensors WHERE region(west)", 70),
    ("SELECT AVG(temp) FROM sensors WHERE region(east)", 100),
    ("SELECT MAX(temp) FROM sensors", 130),
    ("SELECT AVG(temp) FROM sensors WHERE region(west)", 160),
    ("SELECT temp FROM sensors WHERE sensor_id = 7", 190),
];

fn policy_of(ix: u8) -> SchedPolicy {
    match ix % 3 {
        0 => SchedPolicy::Fifo,
        1 => SchedPolicy::Edf,
        _ => SchedPolicy::EnergyFair,
    }
}

fn cfg(policy: SchedPolicy) -> RuntimeConfig {
    RuntimeConfig::builder()
        .slots_per_epoch(2)
        .policy(policy)
        .build()
}

/// Bit-exact per-outcome fingerprint, in completion order.
fn fingerprint(rt: &MultiQueryRuntime<PervasiveGrid>) -> Vec<String> {
    rt.outcomes()
        .iter()
        .map(|o| {
            let body = match &o.response {
                Ok(r) => format!(
                    "ok v={:?} e={} b={} t={} shared={}",
                    r.value.map(f64::to_bits),
                    r.cost.energy_j.to_bits(),
                    r.cost.bytes.to_bits(),
                    r.cost.time_s.to_bits(),
                    o.attribution.shared,
                ),
                Err(e) => format!("err {e}"),
            };
            format!(
                "{} #{} wait={} {}",
                o.text,
                o.completion_index,
                o.queue_wait_s.to_bits(),
                body
            )
        })
        .collect()
}

fn ordered_workload(order: &[usize]) -> Vec<(String, QueryOpts)> {
    order
        .iter()
        .map(|&i| {
            let (text, dl) = WORKLOAD[i];
            (
                text.to_string(),
                QueryOpts::with_deadline(Duration::from_secs(dl)),
            )
        })
        .collect()
}

/// Closed-loop v1 path: submit everything, then run to idle.
fn batch_fingerprint(order: &[usize], policy: SchedPolicy, seed: u64) -> Vec<String> {
    let mut rt = MultiQueryRuntime::new(cfg(policy), grid(seed));
    for (text, opts) in ordered_workload(order) {
        let adm = rt.submit(&text, opts);
        assert!(adm.is_accepted(), "workload fits the queue");
    }
    rt.run_until_idle(64);
    fingerprint(&rt)
}

/// Streaming path: the same workload expressed as a t=0 arrival trace,
/// driven through `run_stream` with preemption off.
fn stream_fingerprint(order: &[usize], policy: SchedPolicy, seed: u64) -> Vec<String> {
    let mut rt = MultiQueryRuntime::new(cfg(policy), grid(seed));
    let mut arrivals = TraceArrivals::batch_at_zero(ordered_workload(order));
    rt.run_stream(&mut arrivals, 64);
    assert_eq!(rt.arrived, order.len() as u64);
    fingerprint(&rt)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batch equivalence: with every arrival at t=0 and preemption off, the
    /// streaming event loop feeds the engine the exact same advance/execute
    /// sequence as the closed-loop batch API — outcomes are bit-identical
    /// (values, costs, waits, completion order) for every submission order
    /// and scheduling policy.
    #[test]
    fn t0_streaming_is_bit_identical_to_batch(
        keys in prop::collection::vec(0u8..=255, 6),
        policy_ix in 0u8..3,
        seed in 1u64..50,
    ) {
        let mut order: Vec<usize> = (0..WORKLOAD.len()).collect();
        order.sort_by_key(|&i| (keys[i], i));
        let policy = policy_of(policy_ix);
        prop_assert_eq!(
            batch_fingerprint(&order, policy, seed),
            stream_fingerprint(&order, policy, seed)
        );
    }
}

/// Open-loop Poisson load, end to end: every arrival is either answered or
/// visibly rejected, the clock advances with the offered load, and the
/// runtime drains to idle once the stream dries up.
#[test]
fn poisson_stream_drains_to_idle_on_a_real_grid() {
    let cfg = RuntimeConfig::builder()
        .capacity(16)
        .slots_per_epoch(4)
        .policy(SchedPolicy::Edf)
        .preemption(true)
        .build();
    let mut rt = MultiQueryRuntime::new(cfg, grid(42));
    let mix = vec![
        (
            "SELECT AVG(temp) FROM sensors".to_string(),
            QueryOpts::with_deadline(Duration::from_secs(120)),
        ),
        (
            "SELECT MAX(temp) FROM sensors WHERE region(east)".to_string(),
            QueryOpts::default().priority(1),
        ),
    ];
    let mut arrivals = PoissonArrivals::new(9, 0.1, SimTime::from_secs(600), mix);
    rt.run_stream(&mut arrivals, 10_000);

    assert!(arrivals.emitted() > 20, "0.1 Hz x 600 s offered load");
    assert_eq!(rt.arrived, arrivals.emitted());
    assert_eq!(rt.queue_depth(), 0, "stream must drain to idle");
    let answered = rt.outcomes().len() as u64;
    assert_eq!(answered + rt.rejected, arrivals.emitted());
    assert!(
        rt.engine().now >= SimTime::from_secs(570),
        "clock follows load"
    );
}

/// Tree maintenance through the grid: `Free` is the default and
/// bit-identical to an explicitly-Free build, while `Persistent` moves
/// fewer total wire bytes than `PerEpoch` for the same workload because
/// the tree is built once instead of every shared epoch.
#[test]
fn persistent_tree_attributes_fewer_bytes_than_per_epoch() {
    let run = |mode: Option<TreeMaintenance>| {
        let mut b = PervasiveGrid::building(1, 6, 42)
            .region("west", Region::room(0.0, 0.0, 14.0, 30.0))
            .region("east", Region::room(10.0, 0.0, 30.0, 30.0));
        if let Some(m) = mode {
            b = b.tree_maintenance(m);
        }
        let cfg = RuntimeConfig::builder().slots_per_epoch(2).build();
        let mut rt = MultiQueryRuntime::new(cfg, b.build());
        // Six shareable aggregates, two slots per epoch: three shared
        // chunks, so PerEpoch builds the tree three times.
        for _ in 0..3 {
            for text in [
                "SELECT AVG(temp) FROM sensors",
                "SELECT MAX(temp) FROM sensors",
            ] {
                assert!(rt.submit(text, QueryOpts::default()).is_accepted());
            }
        }
        rt.run_until_idle(16);
        let bytes: f64 = rt.outcomes().iter().map(|o| o.attribution.bytes).sum();
        let energy: f64 = rt.outcomes().iter().map(|o| o.attribution.energy_j).sum();
        let rebuilds = rt.engine().tree_session.rebuilds;
        (bytes, energy, rebuilds)
    };

    let (default_b, default_e, default_r) = run(None);
    let (free_b, free_e, free_r) = run(Some(TreeMaintenance::Free));
    let (per_epoch_b, per_epoch_e, per_epoch_r) = run(Some(TreeMaintenance::PerEpoch));
    let (persistent_b, persistent_e, persistent_r) = run(Some(TreeMaintenance::Persistent));

    // Default == Free, bit-exact (the v1 path, no control-plane charge).
    assert_eq!(default_b.to_bits(), free_b.to_bits());
    assert_eq!(default_e.to_bits(), free_e.to_bits());
    assert_eq!((default_r, free_r), (0, 0));

    // Explicit maintenance pays a control-plane cost over Free...
    assert!(per_epoch_b > free_b);
    assert!(persistent_b > free_b);
    // ...but a persistent tree amortizes it: one build vs three.
    assert_eq!(per_epoch_r, 3);
    assert_eq!(persistent_r, 1);
    assert!(
        persistent_b < per_epoch_b,
        "persistent tree must move fewer bytes: {persistent_b} vs {per_epoch_b}"
    );
    assert!(persistent_e < per_epoch_e);
}
