//! Integration and property tests for the multi-query runtime over a real
//! `PervasiveGrid`: scheduler determinism under submission interleaving,
//! EDF ordering, the energy-admission gate, shared-tree byte savings, and
//! single-query delegation equivalence.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_core::{PervasiveGrid, PgError};
use pg_partition::decide::Policy;
use pg_partition::model::SolutionModel;
use pg_runtime::{
    Admission, BatchQuery, MultiQueryRuntime, QueryEngine, QueryOpts, RejectReason, RuntimeConfig,
    SchedPolicy,
};
use pg_sensornet::region::Region;
use pg_sim::Duration;
use proptest::prelude::*;

fn grid(seed: u64) -> PervasiveGrid {
    PervasiveGrid::building(1, 6, seed)
        .region("west", Region::room(0.0, 0.0, 14.0, 30.0))
        .region("east", Region::room(10.0, 0.0, 30.0, 30.0))
        .build()
}

/// A fixed workload with pairwise-distinct deadlines (all ≥ one epoch),
/// submitted in arbitrary interleavings by the property test below.
const WORKLOAD: [(&str, u64); 6] = [
    ("SELECT AVG(temp) FROM sensors", 40),
    ("SELECT MAX(temp) FROM sensors WHERE region(west)", 70),
    ("SELECT AVG(temp) FROM sensors WHERE region(east)", 100),
    ("SELECT MAX(temp) FROM sensors", 130),
    ("SELECT AVG(temp) FROM sensors WHERE region(west)", 160),
    ("SELECT temp FROM sensors WHERE sensor_id = 7", 190),
];

/// Run the workload in `order` under EDF and return a canonical per-query
/// fingerprint (keyed by query text, bit-exact costs).
fn edf_fingerprint(order: &[usize]) -> Vec<(String, String)> {
    let cfg = RuntimeConfig::builder()
        .slots_per_epoch(2)
        .policy(SchedPolicy::Edf)
        .build();
    let mut rt = MultiQueryRuntime::new(cfg, grid(11));
    for &i in order {
        let (text, dl) = WORKLOAD[i];
        let adm = rt.submit(text, QueryOpts::with_deadline(Duration::from_secs(dl)));
        assert!(adm.is_accepted(), "workload fits the queue");
    }
    rt.run_until_idle(64);
    let mut per: Vec<(String, String)> = rt
        .outcomes()
        .iter()
        .map(|o| {
            let body = match &o.response {
                Ok(r) => format!(
                    "ok v={:?} e={} b={} t={} shared={} wait={}",
                    r.value.map(f64::to_bits),
                    r.cost.energy_j.to_bits(),
                    r.cost.bytes.to_bits(),
                    r.cost.time_s.to_bits(),
                    o.attribution.shared,
                    o.queue_wait_s.to_bits(),
                ),
                Err(e) => format!("err {e}"),
            };
            (o.text.clone(), format!("#{} {}", o.completion_index, body))
        })
        .collect();
    per.sort();
    per
}

proptest! {
    /// Scheduler determinism: under EDF with distinct deadlines, *any*
    /// submission interleaving of the same workload on the same seed
    /// yields bit-identical per-query outcomes (values, costs, completion
    /// indices, queue waits).
    #[test]
    fn edf_outcomes_are_interleaving_invariant(keys in prop::collection::vec(0u8..=255, 6)) {
        // Derive a permutation of 0..6 from the random keys.
        let mut order: Vec<usize> = (0..WORKLOAD.len()).collect();
        order.sort_by_key(|&i| (keys[i], i));
        let canonical: Vec<usize> = (0..WORKLOAD.len()).collect();
        prop_assert_eq!(edf_fingerprint(&order), edf_fingerprint(&canonical));
    }
}

#[test]
fn edf_never_completes_a_later_deadline_first() {
    // Submitted in reverse-deadline order; EDF must service them in
    // deadline order (one slot per epoch forces full serialization).
    let cfg = RuntimeConfig::builder()
        .slots_per_epoch(1)
        .policy(SchedPolicy::Edf)
        .build();
    let mut rt = MultiQueryRuntime::new(cfg, grid(3));
    let queries = [
        ("SELECT MAX(temp) FROM sensors", 300u64),
        ("SELECT AVG(temp) FROM sensors WHERE region(east)", 200),
        ("SELECT AVG(temp) FROM sensors", 100),
    ];
    for (text, dl) in queries {
        assert!(rt
            .submit(text, QueryOpts::with_deadline(Duration::from_secs(dl)))
            .is_accepted());
    }
    rt.run_until_idle(16);
    let deadlines: Vec<_> = rt.outcomes().iter().map(|o| o.deadline.unwrap()).collect();
    assert_eq!(rt.outcomes().len(), 3);
    assert!(
        deadlines.windows(2).all(|w| w[0] <= w[1]),
        "completion order must follow deadlines: {deadlines:?}"
    );
}

#[test]
fn energy_gate_rejects_without_spending() {
    let cfg = RuntimeConfig::builder().energy_budget_j(1e-6).build();
    let mut rt = MultiQueryRuntime::new(cfg, grid(5));
    let before = rt.engine().energy_consumed();
    let adm = rt.submit("SELECT AVG(temp) FROM sensors", QueryOpts::default());
    match adm {
        Admission::Rejected {
            reason: RejectReason::EnergyBudget { estimate_j, .. },
            ..
        } => assert!(estimate_j > 1e-6),
        other => panic!("expected an energy-budget rejection, got {other:?}"),
    }
    assert_eq!(rt.rejected, 1);
    assert_eq!(
        rt.engine().energy_consumed(),
        before,
        "admission control must not touch the radios"
    );
    assert_eq!(rt.run_epoch(), 0, "nothing was queued");
}

#[test]
fn overlapping_aggregates_share_the_tree_and_spend_fewer_bytes() {
    // The same 8 overlapping region aggregates, serial vs concurrent, on
    // identically-seeded grids pinned to the in-network tree placement.
    let build = || {
        PervasiveGrid::building(1, 6, 9)
            .policy(Policy::Static(SolutionModel::InNetworkTree))
            .region("west", Region::room(0.0, 0.0, 14.0, 30.0))
            .region("east", Region::room(10.0, 0.0, 30.0, 30.0))
            .build()
    };
    let texts: Vec<&str> = vec![
        "SELECT AVG(temp) FROM sensors",
        "SELECT MAX(temp) FROM sensors WHERE region(west)",
        "SELECT AVG(temp) FROM sensors WHERE region(east)",
        "SELECT MAX(temp) FROM sensors",
        "SELECT AVG(temp) FROM sensors WHERE region(west)",
        "SELECT MAX(temp) FROM sensors WHERE region(east)",
        "SELECT AVG(temp) FROM sensors",
        "SELECT MAX(temp) FROM sensors",
    ];

    let mut serial = build();
    let mut serial_bytes = 0.0;
    for t in &texts {
        serial_bytes += serial.submit(t).unwrap().cost.bytes;
    }

    let cfg = RuntimeConfig::builder()
        .slots_per_epoch(texts.len())
        .build();
    let mut rt = MultiQueryRuntime::new(cfg, build());
    for t in &texts {
        assert!(rt.submit(t, QueryOpts::default()).is_accepted());
    }
    assert_eq!(rt.run_epoch(), texts.len());
    let outcomes = rt.outcomes();
    let mut shared_bytes = 0.0;
    for o in outcomes {
        let r = o.response.as_ref().unwrap();
        assert!(o.attribution.shared, "all eight aggregates must share");
        assert!(r.value.is_some(), "shared answers still arrive");
        shared_bytes += o.attribution.bytes;
    }
    assert!(
        shared_bytes < serial_bytes / 2.0,
        "shared epoch must at least halve the bytes: {shared_bytes} vs {serial_bytes}"
    );
}

#[test]
fn batch_of_one_matches_plain_submit() {
    // The engine's batch path with a single entry is the same pipeline as
    // `submit` (which itself delegates through the single-query plan).
    let text = "SELECT AVG(temp) FROM sensors WHERE region(west)";
    let mut a = grid(13);
    let direct = a.submit(text).unwrap();

    let mut b = grid(13);
    let batch = [BatchQuery {
        text,
        deadline: None,
        brownout: false,
    }];
    let mut out = b.execute_batch(&batch);
    let (resp, attr) = out.pop().unwrap().unwrap();
    assert_eq!(resp, direct);
    assert!(!attr.shared);
    assert_eq!(attr.energy_j.to_bits(), direct.cost.energy_j.to_bits());
}

#[test]
fn brownout_batches_answer_coarser_and_are_annotated() {
    // The same two overlapping aggregates on identically-seeded grids:
    // the browned-out batch answers from a subsampled stratum — cheaper
    // on the wire, annotated in the degradation report, never empty.
    let texts = [
        "SELECT AVG(temp) FROM sensors",
        "SELECT MAX(temp) FROM sensors WHERE region(west)",
    ];
    let run = |brownout: bool| {
        let mut g = grid(23);
        let batch: Vec<BatchQuery<'_>> = texts
            .iter()
            .map(|&text| BatchQuery {
                text,
                deadline: None,
                brownout,
            })
            .collect();
        g.execute_batch(&batch)
    };
    let full = run(false);
    let brown = run(true);
    let mut full_bytes = 0.0;
    let mut brown_bytes = 0.0;
    for (f, b) in full.iter().zip(&brown) {
        let (fr, fa) = f.as_ref().unwrap();
        let (br, ba) = b.as_ref().unwrap();
        assert!(fa.shared && ba.shared, "both rides share the tree");
        assert!(!fr.degradation.brownout);
        assert!(br.degradation.brownout, "brownout must be annotated");
        assert!(br.degradation.is_degraded());
        assert!(br.value.is_some(), "brownout degrades, never drops answers");
        full_bytes += fa.bytes;
        brown_bytes += ba.bytes;
    }
    assert!(
        brown_bytes < full_bytes,
        "coarser strata must spend fewer bytes: {brown_bytes} vs {full_bytes}"
    );
}

#[test]
fn single_path_brownout_is_annotated() {
    // Non-shareable entries can't ride a coarser stratum, but the client
    // still learns the round ran browned out.
    let mut g = grid(23);
    let batch = [BatchQuery {
        text: "SELECT temp FROM sensors WHERE sensor_id = 7",
        deadline: None,
        brownout: true,
    }];
    let (resp, attr) = g.execute_batch(&batch).pop().unwrap().unwrap();
    assert!(!attr.shared);
    assert!(resp.degradation.brownout);
}

#[test]
fn mixed_batches_fail_per_query_not_wholesale() {
    let cfg = RuntimeConfig::builder().slots_per_epoch(4).build();
    let mut rt = MultiQueryRuntime::new(cfg, grid(17));
    for text in [
        "SELECT AVG(temp) FROM sensors",
        "NOT EVEN SQL",
        "SELECT MAX(temp) FROM sensors",
        "SELECT temp FROM sensors WHERE sensor_id = 9999",
    ] {
        assert!(rt.submit(text, QueryOpts::default()).is_accepted());
    }
    rt.run_epoch();
    let outcomes = rt.outcomes();
    assert_eq!(outcomes.len(), 4);
    assert!(outcomes[0].response.is_ok());
    assert!(matches!(outcomes[1].response, Err(PgError::Parse(_))));
    assert!(outcomes[2].response.is_ok());
    assert!(matches!(outcomes[3].response, Err(PgError::Exec(_))));
    // The two good aggregates still shared the tree around the failures.
    assert!(outcomes[0].attribution.shared);
    assert!(outcomes[2].attribution.shared);
}

#[test]
fn multiquery_runtime_reports_in_pg_report_v1_shape() {
    let mut rt = MultiQueryRuntime::new(RuntimeConfig::default(), grid(21));
    for (text, dl) in WORKLOAD {
        rt.submit(text, QueryOpts::with_deadline(Duration::from_secs(dl)));
    }
    rt.run_until_idle(32);
    let report = rt.report("t16_unit");
    let json = report.to_json().unwrap();
    for key in [
        "\"admitted\"",
        "\"completed\"",
        "\"rejection_rate\"",
        "\"energy_spent_j\"",
        "\"response_s\"",
    ] {
        assert!(json.contains(key), "report must carry {key}: {json}");
    }
}
