//! The runtime behind the Ronin middleware: a handheld client agent talks
//! to the query-processor agent over envelopes.
//!
//! This is the paper's Figure 1 wiring: the fire fighter's handheld does
//! not touch the sensor network directly — it sends a query envelope to the
//! base station's query-processor agent, whose deputy handles the wireless
//! hop, and receives a result envelope back.

use crate::runtime::PervasiveGrid;
use pg_agent::deputy::DirectDeputy;
use pg_agent::envelope::{AgentId, Envelope, Payload};
use pg_agent::profile::{AgentAttribute, AgentProfile};
use pg_agent::system::{Agent, AgentSystem};
use pg_net::link::LinkModel;
use pg_sim::SimTime;
use shared::Shared;

/// Content type of a query request envelope.
pub const CT_QUERY: &str = "pg/query";
/// Content type of a result envelope.
pub const CT_RESULT: &str = "pg/result";
/// Content type of an error envelope.
pub const CT_ERROR: &str = "pg/error";

/// Minimal shared-ownership shim (std `Rc<RefCell>` is not `Send`; the
/// agent system is single-threaded, so a `RefCell` wrapper suffices).
mod shared {
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Shared mutable handle used to let two agents see one runtime.
    #[derive(Debug)]
    pub struct Shared<T>(Rc<RefCell<T>>);

    impl<T> Clone for Shared<T> {
        fn clone(&self) -> Self {
            Shared(Rc::clone(&self.0))
        }
    }

    impl<T> Shared<T> {
        /// Wrap a value.
        pub fn new(v: T) -> Self {
            Shared(Rc::new(RefCell::new(v)))
        }

        /// Run `f` with mutable access.
        pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
            f(&mut self.0.borrow_mut())
        }
    }
}

pub use shared::Shared as SharedRuntime;

/// The base-station agent: parses/executes queries against the runtime.
pub struct QueryProcessorAgent {
    profile: AgentProfile,
    runtime: Shared<PervasiveGrid>,
    /// Queries served.
    pub served: u32,
}

impl QueryProcessorAgent {
    /// Wrap a shared runtime.
    pub fn new(runtime: Shared<PervasiveGrid>) -> Self {
        QueryProcessorAgent {
            profile: AgentProfile::new()
                .with_attr(AgentAttribute::ServiceProvider)
                .with_attr(AgentAttribute::GridGateway)
                .with_domain("role", "query-processor"),
            runtime,
            served: 0,
        }
    }
}

impl Agent for QueryProcessorAgent {
    fn profile(&self) -> &AgentProfile {
        &self.profile
    }

    fn handle(&mut self, now: SimTime, env: Envelope) -> Vec<Envelope> {
        if env.content_type != CT_QUERY {
            return Vec::new();
        }
        let Some(text) = env.payload.as_text().map(str::to_owned) else {
            return vec![env.reply(CT_ERROR, Payload::Text("non-text query".into()))];
        };
        self.served += 1;
        let result = self.runtime.with(|pg| {
            pg.now = now; // the middleware clock drives the runtime clock
            pg.submit(&text)
        });
        match result {
            Ok(resp) => {
                let body = resp.value.unwrap_or(f64::NAN);
                vec![env.reply(CT_RESULT, Payload::Number(body))]
            }
            Err(e) => vec![env.reply(CT_ERROR, Payload::Text(e.to_string()))],
        }
    }
}

/// The fire fighter's handheld: fires queries, records answers.
pub struct HandheldAgent {
    profile: AgentProfile,
    /// Results received, in arrival order.
    pub results: Vec<f64>,
    /// Errors received.
    pub errors: Vec<String>,
}

impl Default for HandheldAgent {
    fn default() -> Self {
        Self::new()
    }
}

impl HandheldAgent {
    /// A fresh handheld.
    pub fn new() -> Self {
        HandheldAgent {
            profile: AgentProfile::new()
                .with_attr(AgentAttribute::Client)
                .with_domain("device", "handheld"),
            results: Vec::new(),
            errors: Vec::new(),
        }
    }
}

impl Agent for HandheldAgent {
    fn profile(&self) -> &AgentProfile {
        &self.profile
    }

    fn handle(&mut self, _now: SimTime, env: Envelope) -> Vec<Envelope> {
        match env.content_type.as_str() {
            CT_RESULT => {
                if let Some(x) = env.payload.as_number() {
                    self.results.push(x);
                }
            }
            CT_ERROR => {
                if let Some(s) = env.payload.as_text() {
                    self.errors.push(s.to_string());
                }
            }
            _ => {}
        }
        Vec::new()
    }
}

/// Wire a runtime into an agent system; returns `(system, handheld id,
/// processor id)`. The handheld's deputy rides the 802.11 hop, the
/// processor's the wired base-station link.
pub fn middleware(runtime: PervasiveGrid) -> (AgentSystem, AgentId, AgentId) {
    let shared = Shared::new(runtime);
    let mut sys = AgentSystem::new();
    let handheld = sys.register(
        Box::new(HandheldAgent::new()),
        Box::new(DirectDeputy::new(LinkModel::wifi())),
    );
    let processor = sys.register(
        Box::new(QueryProcessorAgent::new(shared)),
        Box::new(DirectDeputy::new(LinkModel::wifi())),
    );
    (sys, handheld, processor)
}

/// Submit a query through the middleware and run to quiescence.
pub fn submit_via_middleware(
    sys: &mut AgentSystem,
    handheld: AgentId,
    processor: AgentId,
    text: &str,
) {
    sys.send(Envelope::new(
        handheld,
        processor,
        CT_QUERY,
        "pg:sensor-queries",
        Payload::Text(text.to_string()),
    ));
    sys.run_to_quiescence();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::PervasiveGrid;

    fn mk() -> (AgentSystem, AgentId, AgentId) {
        middleware(PervasiveGrid::building(1, 5, 3).build())
    }

    fn handheld_results(sys: &AgentSystem, id: AgentId) -> (Vec<f64>, Vec<String>) {
        let h: &HandheldAgent = sys
            .agent(id)
            .expect("registered")
            .downcast_ref()
            .expect("a HandheldAgent lives at this id");
        (h.results.clone(), h.errors.clone())
    }

    #[test]
    fn query_round_trips_through_envelopes() {
        let (mut sys, hh, qp) = mk();
        submit_via_middleware(&mut sys, hh, qp, "SELECT AVG(temp) FROM sensors");
        let (results, errors) = handheld_results(&sys, hh);
        assert_eq!(results.len(), 1);
        assert!(errors.is_empty());
        assert!((results[0] - 21.0).abs() < 3.0);
        // Two deliveries (query + result) with non-zero transport latency.
        assert_eq!(sys.metrics().counter("route.delivered"), 2);
        assert!(sys.now() > SimTime::ZERO);
    }

    #[test]
    fn bad_queries_come_back_as_error_envelopes() {
        let (mut sys, hh, qp) = mk();
        submit_via_middleware(&mut sys, hh, qp, "BANANA");
        let (results, errors) = handheld_results(&sys, hh);
        assert!(results.is_empty());
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("parse"));
    }

    #[test]
    fn multiple_queries_accumulate() {
        let (mut sys, hh, qp) = mk();
        for _ in 0..3 {
            submit_via_middleware(&mut sys, hh, qp, "SELECT MAX(temp) FROM sensors");
        }
        let (results, _) = handheld_results(&sys, hh);
        assert_eq!(results.len(), 3);
    }
}
