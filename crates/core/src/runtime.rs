//! The Pervasive Grid runtime: query text in, answer + learning out.

use crate::error::PgError;
use pg_grid::sched::GridCluster;
use pg_net::energy::RadioModel;
use pg_net::geom::Point;
use pg_net::link::LinkModel;
use pg_net::topology::{NodeId, Topology};
use pg_partition::decide::{DecisionConfig, DecisionMaker, Policy};
use pg_partition::exec::{execute_once, ExecContext};
use pg_partition::features::QueryFeatures;
use pg_partition::learn::Reward;
use pg_partition::model::{CostVector, SolutionModel};
use pg_query::classify::{classify, QueryKind};
use pg_sensornet::field::TemperatureField;
use pg_sensornet::network::SensorNetwork;
use pg_sensornet::proxy::SensorProxy;
use pg_sensornet::region::Region;
use pg_sensornet::shared::{SharedTreeSession, TreeMaintenance};
use pg_sim::fault::FaultPlan;
use pg_sim::rng::RngStreams;
use pg_sim::{Duration, SimTime};
use rand::rngs::StdRng;
use std::collections::BTreeMap;

/// How far a response deviated from the fault-free ideal.
///
/// Every [`QueryResponse`] carries one; under the empty fault plan and no
/// deadline it is all-default. The paper's §3 demands the system be
/// "tolerant to failures" and degrade gracefully — this report is where
/// that degradation becomes visible instead of silently low values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DegradationReport {
    /// A non-empty fault plan was installed when the query ran.
    pub faults_active: bool,
    /// Link-layer retransmissions spent collecting the answer.
    pub retries: u64,
    /// Seconds the query waited for the base station to recover before
    /// executing (outages cost latency, not answers).
    pub base_outage_wait_s: f64,
    /// The deadline budget in force, seconds: the builder-level deadline
    /// or the query's own `COST time` bound, whichever is tighter.
    pub deadline_s: Option<f64>,
    /// The response missed its deadline budget (measured time over budget,
    /// or no placement could be predicted to fit it).
    pub deadline_exceeded: bool,
    /// No model satisfied the effective bounds and the runtime fell back
    /// to a degraded placement rather than rejecting the query.
    pub fallback_model: bool,
    /// The query ran in brownout mode: the engine answered from a coarser
    /// aggregation stratum (a subsample of the member set) to shed work
    /// under overload instead of dropping the query outright.
    pub brownout: bool,
}

impl DegradationReport {
    /// True when anything deviated from the fault-free ideal.
    pub fn is_degraded(&self) -> bool {
        self.retries > 0
            || self.base_outage_wait_s > 0.0
            || self.deadline_exceeded
            || self.fallback_model
            || self.brownout
    }
}

/// How a response crossed cells on its way to the user, when it did.
///
/// A single-cell deployment never sets this: `submit` and the multi-query
/// engine leave it [`Default`] (no cells, no handoff). The federation
/// layer stamps it when a roaming user's query migrates between cells or
/// completes remotely with the result forwarded home, so the client can
/// always audit *where* an answer was computed relative to where it was
/// asked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Provenance {
    /// The cell the query was originally admitted at.
    pub origin_cell: Option<u32>,
    /// The cell whose base station actually serviced it.
    pub served_cell: Option<u32>,
    /// The cross-cell path the answer took, if any.
    pub handoff: Option<CrossCellHandoff>,
}

impl Provenance {
    /// True when the answer crossed a cell boundary.
    pub fn is_cross_cell(&self) -> bool {
        self.handoff.is_some()
            || match (self.origin_cell, self.served_cell) {
                (Some(o), Some(s)) => o != s,
                _ => false,
            }
    }
}

/// The cross-cell route a roaming user's answer took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossCellHandoff {
    /// The queued query migrated with the user and was re-planned and
    /// serviced at the destination cell.
    Migrated,
    /// The query completed at its origin cell after the user left; the
    /// result was forwarded to the user's new cell.
    ForwardedHome,
    /// The origin cell was dead or shedding at admission; a gossip-chosen
    /// neighbor absorbed the query.
    Absorbed,
}

/// The answer returned to the client for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The scalar answer (`None` when nothing arrived).
    pub value: Option<f64>,
    /// The query class the processor assigned.
    pub kind: QueryKind,
    /// The solution model the decision maker chose.
    pub model: SolutionModel,
    /// Measured execution cost.
    pub cost: CostVector,
    /// Fraction of requested readings represented.
    pub delivered_frac: f64,
    /// Measured relative error, when ground truth was computable.
    pub accuracy_err: Option<f64>,
    /// What the faults and deadline budget cost this answer.
    pub degradation: DegradationReport,
    /// Which cell(s) produced this answer, when a federation is involved.
    pub provenance: Provenance,
}

/// One entry of the runtime's query log (for experiments and audits).
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// The raw query text.
    pub text: String,
    /// When it was submitted.
    pub at: SimTime,
    /// What happened.
    pub response: Result<QueryResponse, PgError>,
}

/// Builder for a [`PervasiveGrid`].
#[derive(Debug)]
pub struct GridBuilder {
    topology: Topology,
    base: NodeId,
    battery_j: f64,
    link: LinkModel,
    radio: RadioModel,
    field: TemperatureField,
    policy: Policy,
    seed: u64,
    regions: BTreeMap<String, Region>,
    faults: FaultPlan,
    deadline: Option<Duration>,
    tree_maintenance: TreeMaintenance,
    decision: Option<DecisionConfig>,
}

impl GridBuilder {
    /// Start from a topology; the base station defaults to node 0.
    pub fn new(topology: Topology) -> Self {
        GridBuilder {
            topology,
            base: NodeId(0),
            battery_j: 50.0,
            link: LinkModel::sensor_radio(),
            radio: RadioModel::mote(),
            field: TemperatureField::calm(21.0),
            policy: Policy::Adaptive,
            seed: 42,
            regions: BTreeMap::new(),
            faults: FaultPlan::none(),
            deadline: None,
            tree_maintenance: TreeMaintenance::Free,
            decision: None,
        }
    }

    /// Set the base-station node.
    pub fn base(mut self, base: NodeId) -> Self {
        self.base = base;
        self
    }

    /// Set per-sensor battery capacity, joules.
    pub fn battery(mut self, joules: f64) -> Self {
        self.battery_j = joules;
        self
    }

    /// Set the sensor radio link model.
    pub fn link(mut self, link: LinkModel) -> Self {
        self.link = link;
        self
    }

    /// Set the physical field.
    pub fn field(mut self, field: TemperatureField) -> Self {
        self.field = field;
        self
    }

    /// Set the decision policy.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Configure the decision maker (weights, exploration, reward blend,
    /// bandit hyper-parameters) via [`DecisionConfig::builder`]. When not
    /// set, the policy runs under the defaults — bit-identical to the
    /// pre-builder behaviour.
    pub fn decision_config(mut self, cfg: DecisionConfig) -> Self {
        self.decision = Some(cfg);
        self
    }

    /// Set the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Register a named region for `WHERE region(name)`.
    pub fn region(mut self, name: impl Into<String>, r: Region) -> Self {
        self.regions.insert(name.into(), r);
        self
    }

    /// Install a fault plan: the same plan drives node crashes and message
    /// faults in the sensor substrate, worker outages in the grid, and
    /// base-station outage wait-outs in the runtime itself.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Set an end-to-end deadline budget. It propagates into planning as a
    /// response-time bound (net of any base-outage wait already incurred);
    /// responses that miss it are annotated, never rejected.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Set how shared aggregation trees live across scheduling epochs:
    /// [`TreeMaintenance::Free`] (default, v1 — trees materialize at no
    /// modelled cost), `PerEpoch` (construction beacons charged every
    /// epoch), or `Persistent` (build once, reuse until a node death
    /// invalidates the tree).
    pub fn tree_maintenance(mut self, mode: TreeMaintenance) -> Self {
        self.tree_maintenance = mode;
        self
    }

    /// Construct the runtime.
    pub fn build(self) -> PervasiveGrid {
        let streams = RngStreams::new(self.seed);
        let mut net = SensorNetwork::new(
            self.topology,
            self.base,
            self.radio,
            self.link,
            self.battery_j,
        );
        net.set_fault_plan(self.faults.clone());
        let mut grid = GridCluster::campus();
        grid.set_fault_plan(self.faults.clone());
        PervasiveGrid {
            exec_rng: streams.fork("exec"),
            net,
            grid,
            field: self.field,
            regions: self.regions,
            decision: DecisionMaker::with_config(
                self.policy,
                self.seed,
                self.decision.unwrap_or_default(),
            ),
            now: SimTime::ZERO,
            log: Vec::new(),
            proxy: None,
            faults: self.faults,
            deadline: self.deadline,
            tree_session: SharedTreeSession::new(self.tree_maintenance),
        }
    }
}

/// The running Pervasive Grid.
#[derive(Debug)]
pub struct PervasiveGrid {
    /// The sensor substrate (batteries drain as queries run).
    pub net: SensorNetwork,
    /// The wired grid behind the base station.
    pub grid: GridCluster,
    /// Ground-truth physical field.
    pub field: TemperatureField,
    /// Named regions.
    pub regions: BTreeMap<String, Region>,
    /// The adaptive decision maker.
    pub decision: DecisionMaker,
    /// The runtime clock.
    pub now: SimTime,
    /// Query audit log.
    pub log: Vec<QueryRecord>,
    /// Optional Fjords-style sensor proxy: when enabled, Simple queries are
    /// served from the freshest cached reading (zero sensor energy) while
    /// the cache is within its TTL.
    pub proxy: Option<SensorProxy>,
    /// The installed fault plan (the empty plan when none was given).
    pub faults: FaultPlan,
    /// End-to-end deadline budget, if one was set.
    pub deadline: Option<Duration>,
    /// Shared aggregation-tree lifetime across scheduling epochs (v1 Free
    /// mode by default; see [`GridBuilder::tree_maintenance`]).
    pub tree_session: SharedTreeSession,
    pub(crate) exec_rng: StdRng,
}

impl PervasiveGrid {
    /// The paper's building: `floors` floors of `side × side` sensors,
    /// 5 m pitch, 4 m between floors, base station at a corner.
    pub fn building(floors: usize, side: usize, seed: u64) -> GridBuilder {
        let topo = Topology::building(floors, side, side, 5.0, 4.0, 8.0);
        GridBuilder::new(topo).seed(seed)
    }

    /// Enable the sensor proxy with the given freshness TTL.
    pub fn enable_proxy(&mut self, ttl: Duration) {
        self.proxy = Some(SensorProxy::new(ttl));
    }

    /// Submit query text: the full Figure-1 pipeline.
    ///
    /// Delegates through the multi-query scheduler under the degenerate
    /// single-query plan (`RuntimeConfig::single_query()`): one slot, no
    /// admission gates, no clock movement — so the single-query and
    /// concurrent paths are one code path, and this stays bit-identical to
    /// executing the query directly.
    pub fn submit(&mut self, text: &str) -> Result<QueryResponse, PgError> {
        use pg_runtime::{MultiQueryRuntime, QueryOpts, RuntimeConfig};
        let result = {
            let mut rt = MultiQueryRuntime::new(RuntimeConfig::single_query(), &mut *self);
            let admission = rt.submit(text, QueryOpts::default());
            debug_assert!(admission.is_accepted(), "single-query plan never rejects");
            rt.run_epoch();
            let (_, mut outcomes) = rt.into_parts();
            match outcomes.pop() {
                Some(o) => o.response,
                None => Err(PgError::Config(
                    "multi-query runtime returned no outcome".into(),
                )),
            }
        };
        self.log.push(QueryRecord {
            text: text.to_string(),
            at: self.now,
            response: result.clone(),
        });
        result
    }

    /// The Figure-1 pipeline body. `sched_deadline_s` is the remaining
    /// deadline budget handed down by the multi-query scheduler, `None` on
    /// the plain single-query path (keeping that path bit-identical to the
    /// pre-scheduler pipeline).
    pub(crate) fn submit_inner(
        &mut self,
        text: &str,
        sched_deadline_s: Option<f64>,
    ) -> Result<QueryResponse, PgError> {
        // 1. Query Processor: parse and classify.
        let query = pg_query::parse(text)?;
        let kind = classify(&query);

        // Fast path: Simple one-shot reads through the sensor proxy (the
        // Fjords mediator) when one is enabled — concurrent queries share
        // physical samples instead of each waking the radio. The proxy
        // runs at the base station, so it cannot answer during an outage.
        if kind == QueryKind::Simple && query.cost.is_empty() && !self.faults.is_base_down(self.now)
        {
            if let (Some(target), Some(proxy)) = (query.target_sensor(), self.proxy.as_mut()) {
                let node = pg_net::topology::NodeId(target);
                if (target as usize) < self.net.len() && node != self.net.base() {
                    if let Some(read) = proxy.read(
                        &mut self.net,
                        &self.field,
                        node,
                        self.now,
                        &mut self.exec_rng,
                    ) {
                        return Ok(QueryResponse {
                            value: Some(read.value),
                            kind,
                            model: SolutionModel::BaseStation,
                            cost: CostVector {
                                energy_j: read.energy_j,
                                time_s: read.latency.as_secs_f64(),
                                bytes: if read.cache_hit { 0.0 } else { 12.0 },
                                ops: if read.cache_hit { 1.0 } else { 50.0 },
                            },
                            delivered_frac: 1.0,
                            accuracy_err: None,
                            degradation: DegradationReport {
                                faults_active: self.faults.is_active(),
                                ..DegradationReport::default()
                            },
                            provenance: Provenance::default(),
                        });
                    }
                }
            }
        }

        // Base-station outage: the centralized manager waits the outage
        // out and pays it in latency — the answer is delayed, not lost.
        let exec_at = self.faults.base_up_at(self.now);
        let wait_s = exec_at.since(self.now).as_secs_f64();

        // The effective deadline budget: the builder-level deadline, the
        // query's own COST time bound, or the scheduler's remaining budget,
        // whichever is tightest.
        let deadline_s = [
            self.deadline.map(|d| d.as_secs_f64()),
            query.time_bound(),
            sched_deadline_s,
        ]
        .into_iter()
        .flatten()
        .reduce(f64::min);
        // Propagate the *remaining* budget into planning: seconds already
        // burned waiting out the outage are gone. When there is no builder
        // or scheduler deadline and no wait, the query's own bounds already
        // say it all — leave them untouched (bit-identical to the
        // fault-free pipeline).
        let mut planned = query.clone();
        if let Some(d) = deadline_s {
            if self.deadline.is_some() || sched_deadline_s.is_some() || wait_s > 0.0 {
                use pg_query::ast::CostBound;
                planned.cost.retain(|c| !matches!(c, CostBound::TimeS(_)));
                planned.cost.push(CostBound::TimeS((d - wait_s).max(0.0)));
            }
        }

        // 2. Feature extraction against the live network.
        let features = {
            let ctx = ExecContext {
                net: &mut self.net,
                grid: &self.grid,
                field: &self.field,
                regions: &self.regions,
                now: exec_at,
            };
            QueryFeatures::extract(&ctx, &planned)
                .ok_or(PgError::Exec(pg_partition::exec::ExecError::NoMembers))?
        };

        // 3. Decision Maker: pick the placement within COST bounds. When
        // the budget (or the fault plan) leaves no feasible model, degrade
        // instead of rejecting: re-plan against the user's own bounds, and
        // past that fall back to the base-station placement. A plain
        // infeasible-COST query with no faults and no deadline still
        // rejects — that contract (T10) is unchanged.
        let mut fallback_model = false;
        let model = match self
            .decision
            .choose(&self.net, &self.grid, &planned, &features)
        {
            Ok(m) => m,
            Err(_) => {
                fallback_model = true;
                let user_plan = if planned.cost != query.cost {
                    self.decision
                        .choose(&self.net, &self.grid, &query, &features)
                        .ok()
                } else {
                    None
                };
                match user_plan {
                    Some(m) => m,
                    None if self.faults.is_active() => SolutionModel::BaseStation,
                    None => return Err(PgError::CostBoundsUnsatisfiable),
                }
            }
        };

        // 4. Simulator: execute on the substrates.
        let outcome = {
            let mut ctx = ExecContext {
                net: &mut self.net,
                grid: &self.grid,
                field: &self.field,
                regions: &self.regions,
                now: exec_at,
            };
            execute_once(&mut ctx, &query, model, &mut self.exec_rng)?
        };

        // 5. Adaptive feedback: incorporate actuals into the learner. The
        // outage wait is not a property of the placement, so the learner
        // sees the execution cost alone — but the full outcome signal
        // (loss, deadline fate including the wait, retries) rides along
        // for the composite-reward policies.
        self.decision.observe(
            &self.net,
            &self.grid,
            features,
            model,
            Reward {
                cost: outcome.cost,
                loss_frac: (1.0 - outcome.delivered_frac).clamp(0.0, 1.0),
                deadline_missed: deadline_s.is_some_and(|d| outcome.cost.time_s + wait_s > d),
                retries: outcome.retries,
                dead_letters: 0,
            },
        );

        let mut cost = outcome.cost;
        cost.time_s += wait_s;
        let degradation = DegradationReport {
            faults_active: self.faults.is_active(),
            retries: outcome.retries,
            base_outage_wait_s: wait_s,
            deadline_s,
            deadline_exceeded: deadline_s.is_some_and(|d| cost.time_s > d),
            fallback_model,
            brownout: false,
        };
        Ok(QueryResponse {
            value: outcome.value,
            kind,
            model,
            cost,
            delivered_frac: outcome.delivered_frac,
            accuracy_err: outcome.accuracy_err,
            degradation,
            provenance: Provenance::default(),
        })
    }

    /// Advance the runtime clock (e.g. between fire-scenario phases).
    pub fn advance(&mut self, dt: Duration) {
        self.now += dt;
    }

    /// Live sensors (base excluded).
    pub fn alive_sensors(&self) -> usize {
        self.net.alive_sensors()
    }

    /// Total sensor energy consumed so far, joules.
    pub fn energy_consumed(&self) -> f64 {
        self.net.total_consumed()
    }

    /// Convenience for examples: set the fire alight at the runtime's
    /// current position/time.
    pub fn ignite(&mut self, center: Point, peak: f64) {
        self.field = TemperatureField::building_fire(center, self.now, peak);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime() -> PervasiveGrid {
        PervasiveGrid::building(1, 5, 7)
            .region("corner", Region::room(0.0, 0.0, 12.0, 12.0))
            .build()
    }

    #[test]
    fn simple_query_round_trips() {
        let mut pg = runtime();
        let r = pg
            .submit("SELECT temp FROM sensors WHERE sensor_id = 12")
            .unwrap();
        assert_eq!(r.kind, QueryKind::Simple);
        assert!(r.value.is_some());
        assert!(r.cost.energy_j > 0.0);
        assert_eq!(pg.log.len(), 1);
    }

    #[test]
    fn aggregate_query_uses_region() {
        let mut pg = runtime();
        let r = pg
            .submit("SELECT AVG(temp) FROM sensors WHERE region(corner)")
            .unwrap();
        assert_eq!(r.kind, QueryKind::Aggregate);
        let v = r.value.unwrap();
        assert!((v - 21.0).abs() < 3.0, "calm building ≈ ambient: {v}");
    }

    #[test]
    fn parse_errors_are_logged_and_returned() {
        let mut pg = runtime();
        assert!(matches!(pg.submit("GIMME data"), Err(PgError::Parse(_))));
        assert!(pg.log[0].response.is_err());
    }

    #[test]
    fn impossible_cost_bounds_reject() {
        let mut pg = runtime();
        let r = pg.submit("SELECT AVG(temp) FROM sensors COST energy 0.000000001");
        assert_eq!(r, Err(PgError::CostBoundsUnsatisfiable));
    }

    #[test]
    fn queries_drain_energy_and_feed_the_learner() {
        let mut pg = runtime();
        assert_eq!(pg.decision.history_len(), 0);
        let before = pg.energy_consumed();
        pg.submit("SELECT MAX(temp) FROM sensors").unwrap();
        assert!(pg.energy_consumed() > before);
        assert_eq!(pg.decision.history_len(), 1);
    }

    #[test]
    fn ignite_heats_subsequent_answers() {
        let mut pg = runtime();
        let cold = pg
            .submit("SELECT MAX(temp) FROM sensors")
            .unwrap()
            .value
            .unwrap();
        pg.ignite(Point::flat(10.0, 10.0), 400.0);
        pg.advance(Duration::from_secs(600));
        let hot = pg
            .submit("SELECT MAX(temp) FROM sensors")
            .unwrap()
            .value
            .unwrap();
        assert!(hot > cold + 100.0, "fire must show: {cold} -> {hot}");
    }

    #[test]
    fn proxy_serves_repeated_simple_reads_for_free() {
        let mut pg = runtime();
        pg.enable_proxy(Duration::from_secs(30));
        let first = pg
            .submit("SELECT temp FROM sensors WHERE sensor_id = 12")
            .unwrap();
        assert!(first.cost.energy_j > 0.0, "first read touches the sensor");
        let after_first = pg.energy_consumed();
        // Nine more reads inside the TTL: all cache hits, zero energy.
        for _ in 0..9 {
            let r = pg
                .submit("SELECT temp FROM sensors WHERE sensor_id = 12")
                .unwrap();
            assert_eq!(r.cost.energy_j, 0.0);
            assert_eq!(r.value, first.value);
        }
        assert_eq!(pg.energy_consumed(), after_first);
        let proxy = pg.proxy.as_ref().unwrap();
        assert_eq!(proxy.misses, 1);
        assert_eq!(proxy.hits, 9);
        // Past the TTL the sensor is touched again.
        pg.advance(Duration::from_secs(60));
        let fresh = pg
            .submit("SELECT temp FROM sensors WHERE sensor_id = 12")
            .unwrap();
        assert!(fresh.cost.energy_j > 0.0);
    }

    #[test]
    fn proxy_does_not_intercept_cost_bounded_or_aggregate_queries() {
        let mut pg = runtime();
        pg.enable_proxy(Duration::from_secs(30));
        // Aggregates always run the full pipeline.
        pg.submit("SELECT AVG(temp) FROM sensors").unwrap();
        assert_eq!(pg.proxy.as_ref().unwrap().misses, 0);
        // COST-bounded simple reads need the decision maker's accounting.
        pg.submit("SELECT temp FROM sensors WHERE sensor_id = 12 COST energy 1.0")
            .unwrap();
        assert_eq!(pg.proxy.as_ref().unwrap().misses, 0);
    }

    #[test]
    fn fault_free_runs_report_no_degradation() {
        let mut pg = runtime();
        let r = pg.submit("SELECT AVG(temp) FROM sensors").unwrap();
        assert_eq!(r.degradation, DegradationReport::default());
        assert!(!r.degradation.is_degraded());
    }

    #[test]
    fn base_outage_is_waited_out_not_failed() {
        let plan = FaultPlan::builder(3)
            .base_outage(SimTime::ZERO, SimTime::from_secs(60))
            .build()
            .unwrap();
        let mut pg = PervasiveGrid::building(1, 5, 7).faults(plan).build();
        let r = pg.submit("SELECT AVG(temp) FROM sensors").unwrap();
        assert!(r.value.is_some());
        assert_eq!(r.degradation.base_outage_wait_s, 60.0);
        assert!(r.cost.time_s > 60.0, "wait must show in the measured time");
        assert!(r.degradation.is_degraded());
        // After the outage window there is nothing to wait for.
        pg.advance(Duration::from_secs(120));
        let r = pg.submit("SELECT AVG(temp) FROM sensors").unwrap();
        assert_eq!(r.degradation.base_outage_wait_s, 0.0);
    }

    #[test]
    fn chaos_queries_degrade_gracefully() {
        // The acceptance bar: >=30 % message loss plus a base-station
        // outage still answers, with the degradation spelled out.
        let plan = FaultPlan::builder(11)
            .message_loss(0.35)
            .base_outage(SimTime::ZERO, SimTime::from_secs(30))
            .build()
            .unwrap();
        let mut pg = PervasiveGrid::building(1, 5, 7).faults(plan).build();
        for q in [
            "SELECT AVG(temp) FROM sensors",
            "SELECT MAX(temp) FROM sensors",
            "SELECT temp FROM sensors WHERE sensor_id = 12",
        ] {
            let r = pg.submit(q).unwrap_or_else(|e| panic!("{q} failed: {e}"));
            assert!(r.delivered_frac > 0.0, "{q}: nothing delivered");
            assert!(r.degradation.faults_active);
        }
        // Heavy loss forces retransmissions somewhere across the batch.
        let total_retries: u64 = pg
            .log
            .iter()
            .filter_map(|rec| rec.response.as_ref().ok())
            .map(|r| r.degradation.retries)
            .sum();
        assert!(total_retries > 0, "35 % loss must cost retries");
    }

    #[test]
    fn missed_deadline_is_annotated_never_rejected() {
        // A 1 ms end-to-end budget is unmeetable by any placement: the
        // runtime degrades to a best-effort answer and says so.
        let mut pg = PervasiveGrid::building(1, 5, 7)
            .deadline(Duration::from_millis(1))
            .build();
        let r = pg.submit("SELECT AVG(temp) FROM sensors").unwrap();
        assert!(r.value.is_some());
        assert_eq!(r.degradation.deadline_s, Some(0.001));
        assert!(r.degradation.deadline_exceeded);
        assert!(r.degradation.fallback_model);
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let run = |deadline: Option<Duration>| {
            let mut b = PervasiveGrid::building(1, 5, 7);
            if let Some(d) = deadline {
                b = b.deadline(d);
            }
            let mut pg = b.build();
            pg.submit("SELECT AVG(temp) FROM sensors").unwrap()
        };
        let plain = run(None);
        let roomy = run(Some(Duration::from_secs(3600)));
        assert_eq!(plain.value, roomy.value);
        assert_eq!(plain.cost, roomy.cost);
        assert!(!roomy.degradation.deadline_exceeded);
        assert!(!roomy.degradation.fallback_model);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut pg = PervasiveGrid::building(1, 5, seed).build();
            pg.submit("SELECT AVG(temp) FROM sensors").unwrap().value
        };
        assert_eq!(run(9), run(9));
        // (Different seeds may or may not differ — no assertion.)
    }
}
