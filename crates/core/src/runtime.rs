//! The Pervasive Grid runtime: query text in, answer + learning out.

use crate::error::PgError;
use pg_grid::sched::GridCluster;
use pg_net::energy::RadioModel;
use pg_net::geom::Point;
use pg_net::link::LinkModel;
use pg_net::topology::{NodeId, Topology};
use pg_partition::decide::{DecisionMaker, Policy};
use pg_partition::exec::{execute_once, ExecContext};
use pg_partition::features::QueryFeatures;
use pg_partition::model::{CostVector, SolutionModel};
use pg_query::classify::{classify, QueryKind};
use pg_sensornet::field::TemperatureField;
use pg_sensornet::network::SensorNetwork;
use pg_sensornet::proxy::SensorProxy;
use pg_sensornet::region::Region;
use pg_sim::rng::RngStreams;
use pg_sim::{Duration, SimTime};
use rand::rngs::StdRng;
use std::collections::BTreeMap;

/// The answer returned to the client for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// The scalar answer (`None` when nothing arrived).
    pub value: Option<f64>,
    /// The query class the processor assigned.
    pub kind: QueryKind,
    /// The solution model the decision maker chose.
    pub model: SolutionModel,
    /// Measured execution cost.
    pub cost: CostVector,
    /// Fraction of requested readings represented.
    pub delivered_frac: f64,
    /// Measured relative error, when ground truth was computable.
    pub accuracy_err: Option<f64>,
}

/// One entry of the runtime's query log (for experiments and audits).
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// The raw query text.
    pub text: String,
    /// When it was submitted.
    pub at: SimTime,
    /// What happened.
    pub response: Result<QueryResponse, PgError>,
}

/// Builder for a [`PervasiveGrid`].
#[derive(Debug)]
pub struct GridBuilder {
    topology: Topology,
    base: NodeId,
    battery_j: f64,
    link: LinkModel,
    radio: RadioModel,
    field: TemperatureField,
    policy: Policy,
    seed: u64,
    regions: BTreeMap<String, Region>,
}

impl GridBuilder {
    /// Start from a topology; the base station defaults to node 0.
    pub fn new(topology: Topology) -> Self {
        GridBuilder {
            topology,
            base: NodeId(0),
            battery_j: 50.0,
            link: LinkModel::sensor_radio(),
            radio: RadioModel::mote(),
            field: TemperatureField::calm(21.0),
            policy: Policy::Adaptive,
            seed: 42,
            regions: BTreeMap::new(),
        }
    }

    /// Set the base-station node.
    pub fn base(mut self, base: NodeId) -> Self {
        self.base = base;
        self
    }

    /// Set per-sensor battery capacity, joules.
    pub fn battery(mut self, joules: f64) -> Self {
        self.battery_j = joules;
        self
    }

    /// Set the sensor radio link model.
    pub fn link(mut self, link: LinkModel) -> Self {
        self.link = link;
        self
    }

    /// Set the physical field.
    pub fn field(mut self, field: TemperatureField) -> Self {
        self.field = field;
        self
    }

    /// Set the decision policy.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Set the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Register a named region for `WHERE region(name)`.
    pub fn region(mut self, name: impl Into<String>, r: Region) -> Self {
        self.regions.insert(name.into(), r);
        self
    }

    /// Construct the runtime.
    pub fn build(self) -> PervasiveGrid {
        let streams = RngStreams::new(self.seed);
        let net = SensorNetwork::new(
            self.topology,
            self.base,
            self.radio,
            self.link,
            self.battery_j,
        );
        PervasiveGrid {
            exec_rng: streams.fork("exec"),
            net,
            grid: GridCluster::campus(),
            field: self.field,
            regions: self.regions,
            decision: DecisionMaker::new(self.policy, self.seed),
            now: SimTime::ZERO,
            log: Vec::new(),
            proxy: None,
        }
    }
}

/// The running Pervasive Grid.
#[derive(Debug)]
pub struct PervasiveGrid {
    /// The sensor substrate (batteries drain as queries run).
    pub net: SensorNetwork,
    /// The wired grid behind the base station.
    pub grid: GridCluster,
    /// Ground-truth physical field.
    pub field: TemperatureField,
    /// Named regions.
    pub regions: BTreeMap<String, Region>,
    /// The adaptive decision maker.
    pub decision: DecisionMaker,
    /// The runtime clock.
    pub now: SimTime,
    /// Query audit log.
    pub log: Vec<QueryRecord>,
    /// Optional Fjords-style sensor proxy: when enabled, Simple queries are
    /// served from the freshest cached reading (zero sensor energy) while
    /// the cache is within its TTL.
    pub proxy: Option<SensorProxy>,
    exec_rng: StdRng,
}

impl PervasiveGrid {
    /// The paper's building: `floors` floors of `side × side` sensors,
    /// 5 m pitch, 4 m between floors, base station at a corner.
    pub fn building(floors: usize, side: usize, seed: u64) -> GridBuilder {
        let topo = Topology::building(floors, side, side, 5.0, 4.0, 8.0);
        GridBuilder::new(topo).seed(seed)
    }

    /// Enable the sensor proxy with the given freshness TTL.
    pub fn enable_proxy(&mut self, ttl: Duration) {
        self.proxy = Some(SensorProxy::new(ttl));
    }

    /// Submit query text: the full Figure-1 pipeline.
    pub fn submit(&mut self, text: &str) -> Result<QueryResponse, PgError> {
        let result = self.submit_inner(text);
        self.log.push(QueryRecord {
            text: text.to_string(),
            at: self.now,
            response: result.clone(),
        });
        result
    }

    fn submit_inner(&mut self, text: &str) -> Result<QueryResponse, PgError> {
        // 1. Query Processor: parse and classify.
        let query = pg_query::parse(text)?;
        let kind = classify(&query);

        // Fast path: Simple one-shot reads through the sensor proxy (the
        // Fjords mediator) when one is enabled — concurrent queries share
        // physical samples instead of each waking the radio.
        if kind == QueryKind::Simple && query.cost.is_empty() {
            if let (Some(target), Some(proxy)) = (query.target_sensor(), self.proxy.as_mut()) {
                let node = pg_net::topology::NodeId(target);
                if (target as usize) < self.net.len() && node != self.net.base() {
                    if let Some(read) = proxy.read(
                        &mut self.net,
                        &self.field,
                        node,
                        self.now,
                        &mut self.exec_rng,
                    ) {
                        return Ok(QueryResponse {
                            value: Some(read.value),
                            kind,
                            model: SolutionModel::BaseStation,
                            cost: CostVector {
                                energy_j: read.energy_j,
                                time_s: read.latency.as_secs_f64(),
                                bytes: if read.cache_hit { 0.0 } else { 12.0 },
                                ops: if read.cache_hit { 1.0 } else { 50.0 },
                            },
                            delivered_frac: 1.0,
                            accuracy_err: None,
                        });
                    }
                }
            }
        }

        // 2. Feature extraction against the live network.
        let features = {
            let ctx = ExecContext {
                net: &mut self.net,
                grid: &self.grid,
                field: &self.field,
                regions: &self.regions,
                now: self.now,
            };
            QueryFeatures::extract(&ctx, &query)
                .ok_or(PgError::Exec(pg_partition::exec::ExecError::NoMembers))?
        };

        // 3. Decision Maker: pick the placement within COST bounds.
        let model = self
            .decision
            .choose(&self.net, &self.grid, &query, &features)
            .map_err(|_| PgError::CostBoundsUnsatisfiable)?;

        // 4. Simulator: execute on the substrates.
        let outcome = {
            let mut ctx = ExecContext {
                net: &mut self.net,
                grid: &self.grid,
                field: &self.field,
                regions: &self.regions,
                now: self.now,
            };
            execute_once(&mut ctx, &query, model, &mut self.exec_rng)?
        };

        // 5. Adaptive feedback: incorporate actuals into the learner.
        self.decision
            .record(&self.net, &self.grid, features, model, outcome.cost);

        Ok(QueryResponse {
            value: outcome.value,
            kind,
            model,
            cost: outcome.cost,
            delivered_frac: outcome.delivered_frac,
            accuracy_err: outcome.accuracy_err,
        })
    }

    /// Advance the runtime clock (e.g. between fire-scenario phases).
    pub fn advance(&mut self, dt: Duration) {
        self.now += dt;
    }

    /// Live sensors (base excluded).
    pub fn alive_sensors(&self) -> usize {
        self.net.alive_sensors()
    }

    /// Total sensor energy consumed so far, joules.
    pub fn energy_consumed(&self) -> f64 {
        self.net.total_consumed()
    }

    /// Convenience for examples: set the fire alight at the runtime's
    /// current position/time.
    pub fn ignite(&mut self, center: Point, peak: f64) {
        self.field = TemperatureField::building_fire(center, self.now, peak);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime() -> PervasiveGrid {
        PervasiveGrid::building(1, 5, 7)
            .region("corner", Region::room(0.0, 0.0, 12.0, 12.0))
            .build()
    }

    #[test]
    fn simple_query_round_trips() {
        let mut pg = runtime();
        let r = pg
            .submit("SELECT temp FROM sensors WHERE sensor_id = 12")
            .unwrap();
        assert_eq!(r.kind, QueryKind::Simple);
        assert!(r.value.is_some());
        assert!(r.cost.energy_j > 0.0);
        assert_eq!(pg.log.len(), 1);
    }

    #[test]
    fn aggregate_query_uses_region() {
        let mut pg = runtime();
        let r = pg
            .submit("SELECT AVG(temp) FROM sensors WHERE region(corner)")
            .unwrap();
        assert_eq!(r.kind, QueryKind::Aggregate);
        let v = r.value.unwrap();
        assert!((v - 21.0).abs() < 3.0, "calm building ≈ ambient: {v}");
    }

    #[test]
    fn parse_errors_are_logged_and_returned() {
        let mut pg = runtime();
        assert!(matches!(pg.submit("GIMME data"), Err(PgError::Parse(_))));
        assert!(pg.log[0].response.is_err());
    }

    #[test]
    fn impossible_cost_bounds_reject() {
        let mut pg = runtime();
        let r = pg.submit("SELECT AVG(temp) FROM sensors COST energy 0.000000001");
        assert_eq!(r, Err(PgError::CostBoundsUnsatisfiable));
    }

    #[test]
    fn queries_drain_energy_and_feed_the_learner() {
        let mut pg = runtime();
        assert_eq!(pg.decision.knn.len(), 0);
        let before = pg.energy_consumed();
        pg.submit("SELECT MAX(temp) FROM sensors").unwrap();
        assert!(pg.energy_consumed() > before);
        assert_eq!(pg.decision.knn.len(), 1);
    }

    #[test]
    fn ignite_heats_subsequent_answers() {
        let mut pg = runtime();
        let cold = pg
            .submit("SELECT MAX(temp) FROM sensors")
            .unwrap()
            .value
            .unwrap();
        pg.ignite(Point::flat(10.0, 10.0), 400.0);
        pg.advance(Duration::from_secs(600));
        let hot = pg
            .submit("SELECT MAX(temp) FROM sensors")
            .unwrap()
            .value
            .unwrap();
        assert!(hot > cold + 100.0, "fire must show: {cold} -> {hot}");
    }

    #[test]
    fn proxy_serves_repeated_simple_reads_for_free() {
        let mut pg = runtime();
        pg.enable_proxy(Duration::from_secs(30));
        let first = pg
            .submit("SELECT temp FROM sensors WHERE sensor_id = 12")
            .unwrap();
        assert!(first.cost.energy_j > 0.0, "first read touches the sensor");
        let after_first = pg.energy_consumed();
        // Nine more reads inside the TTL: all cache hits, zero energy.
        for _ in 0..9 {
            let r = pg
                .submit("SELECT temp FROM sensors WHERE sensor_id = 12")
                .unwrap();
            assert_eq!(r.cost.energy_j, 0.0);
            assert_eq!(r.value, first.value);
        }
        assert_eq!(pg.energy_consumed(), after_first);
        let proxy = pg.proxy.as_ref().unwrap();
        assert_eq!(proxy.misses, 1);
        assert_eq!(proxy.hits, 9);
        // Past the TTL the sensor is touched again.
        pg.advance(Duration::from_secs(60));
        let fresh = pg
            .submit("SELECT temp FROM sensors WHERE sensor_id = 12")
            .unwrap();
        assert!(fresh.cost.energy_j > 0.0);
    }

    #[test]
    fn proxy_does_not_intercept_cost_bounded_or_aggregate_queries() {
        let mut pg = runtime();
        pg.enable_proxy(Duration::from_secs(30));
        // Aggregates always run the full pipeline.
        pg.submit("SELECT AVG(temp) FROM sensors").unwrap();
        assert_eq!(pg.proxy.as_ref().unwrap().misses, 0);
        // COST-bounded simple reads need the decision maker's accounting.
        pg.submit("SELECT temp FROM sensors WHERE sensor_id = 12 COST energy 1.0")
            .unwrap();
        assert_eq!(pg.proxy.as_ref().unwrap().misses, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut pg = PervasiveGrid::building(1, 5, seed).build();
            pg.submit("SELECT AVG(temp) FROM sensors").unwrap().value
        };
        assert_eq!(run(9), run(9));
        // (Different seeds may or may not differ — no assertion.)
    }
}
