//! The paper's Figure-1 scenario, end to end.
//!
//! "Consider a building with temperature sensors embedded at various
//! locations … Suppose the building is on fire. Fire fighters with handheld
//! devices arrive, and want to query the sensor network in the building to
//! plan their response." (§4)
//!
//! [`FireScenario`] assembles the whole stack: a multi-floor sensor
//! deployment over a spreading fire, the grid behind the base station, the
//! service world for composition (sensors, floor plans, PDE solvers,
//! displays — some of them churny proximity services), and the adaptive
//! runtime. [`FireScenario::respond`] then runs the fire-response sequence:
//! compose the `temperature-distribution` service chain, then answer the
//! paper's four query archetypes.

use crate::runtime::{PervasiveGrid, QueryResponse};
use crate::PgError;
use pg_compose::htn::MethodLibrary;
use pg_compose::manager::{execute, ExecutionReport, ManagerKind, ServiceWorld};
use pg_compose::plan::Plan;
use pg_discovery::description::ServiceDescription;
use pg_discovery::ontology::Ontology;
use pg_net::churn::{ChurnProcess, ChurnSchedule};
use pg_net::geom::Point;
use pg_sensornet::region::Region;
use pg_sim::rng::RngStreams;
use pg_sim::SimTime;

/// Everything measured by one scenario run.
#[derive(Debug)]
pub struct ScenarioReport {
    /// The composition phase outcome.
    pub composition: ExecutionReport,
    /// Responses to the four §4 query archetypes, in order:
    /// Simple, Aggregate, Complex, Continuous.
    pub queries: Vec<(String, Result<QueryResponse, PgError>)>,
    /// Sensor energy consumed across the whole response, joules.
    pub energy_j: f64,
    /// Sensors still alive at the end.
    pub alive: usize,
}

/// The assembled burning-building world.
#[derive(Debug)]
pub struct FireScenario {
    /// The query runtime over the sensor network + grid.
    pub runtime: PervasiveGrid,
    /// The shared ontology.
    pub onto: Ontology,
    /// The composition service world.
    pub world: ServiceWorld,
    /// The decomposed temperature-distribution plan.
    pub plan: Plan,
}

impl FireScenario {
    /// Build the scenario: `floors` floors of `side × side` sensors with a
    /// fire that ignited ten minutes ago near the middle of floor 1.
    // Static churn parameters, ontology classes and the library task are
    // all fixed at compile time; failure here is a bug in this file.
    #[allow(clippy::expect_used)]
    pub fn new(floors: usize, side: usize, seed: u64) -> Self {
        let streams = RngStreams::new(seed);
        let mid = (side as f64 - 1.0) * 5.0 / 2.0;
        let mut runtime = PervasiveGrid::building(floors, side, seed)
            .region("room210", Region::room(0.0, 0.0, 20.0, 20.0))
            .region(
                "floor2",
                Region {
                    min: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY, 3.9),
                    max: Point::new(f64::INFINITY, f64::INFINITY, 8.1),
                },
            )
            .build();
        runtime.ignite(Point::new(mid, mid, 0.0), 450.0);
        runtime.advance(pg_sim::Duration::from_secs(600));

        // The service world: fixed grid services are stable; proximity
        // services on responders' devices churn.
        let onto = Ontology::pervasive_grid();
        let mut world = ServiceWorld::new();
        let horizon = SimTime::from_secs(4_000);
        let mut churn_rng = streams.fork("service-churn");
        let flaky = ChurnProcess::new(120.0, 30.0).expect("static churn parameters");
        let class_of = |name: &str| onto.class(name).expect("standard ontology");

        for (i, class) in ["TemperatureSensor", "TemperatureSensor", "MapService"]
            .iter()
            .enumerate()
        {
            world.add_service(
                ServiceDescription::new(format!("{class}-{i}"), class_of(class)),
                ChurnSchedule::always_up(),
            );
        }
        // Two churny proximity services (a responder's handheld display and
        // a van-mounted weather feed).
        world.add_service(
            ServiceDescription::new("van-weather", class_of("WeatherService")),
            flaky.schedule(horizon, &mut churn_rng),
        );
        world.add_service(
            ServiceDescription::new("handheld-display", class_of("DisplayService")),
            flaky.schedule(horizon, &mut churn_rng),
        );
        // A stable backup display at the command post.
        world.add_service(
            ServiceDescription::new("commandpost-display", class_of("DisplayService")),
            ChurnSchedule::always_up(),
        );
        // The grid-side solver.
        world.add_service(
            ServiceDescription::new("campus-pde-solver", class_of("PdeSolverService")),
            ChurnSchedule::always_up(),
        );

        let plan = MethodLibrary::pervasive_grid()
            .decompose("temperature-distribution")
            .expect("standard library task");

        FireScenario {
            runtime,
            onto,
            world,
            plan,
        }
    }

    /// The four §4 query archetypes, instantiated for this building.
    pub fn archetype_queries(&self) -> Vec<String> {
        vec![
            // "Return temperature at Sensor # 10"
            "SELECT temp FROM sensors WHERE sensor_id = 10".to_string(),
            // "Return Average Temperature in room # 210"
            "SELECT AVG(temp) FROM sensors WHERE region(room210)".to_string(),
            // "Find Temperature Distribution in room #210"
            "SELECT temperature_distribution() FROM sensors WHERE region(room210)".to_string(),
            // "Return temperature at Sensor #10 every 10 seconds"
            "SELECT temp FROM sensors WHERE sensor_id = 10 EPOCH DURATION 10 s".to_string(),
        ]
    }

    /// Run the fire response: compose the service chain, then answer the
    /// archetype queries.
    pub fn respond(&mut self) -> ScenarioReport {
        let composition = execute(
            &self.world,
            &self.onto,
            &self.plan,
            ManagerKind::DistributedReactive,
            self.runtime.now,
        );
        let before = self.runtime.energy_consumed();
        let queries = self
            .archetype_queries()
            .into_iter()
            .map(|q| {
                let r = self.runtime.submit(&q);
                (q, r)
            })
            .collect();
        ScenarioReport {
            composition,
            queries,
            energy_j: self.runtime.energy_consumed() - before,
            alive: self.runtime.alive_sensors(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_query::classify::QueryKind;

    #[test]
    fn full_scenario_answers_all_archetypes() {
        let mut s = FireScenario::new(2, 6, 11);
        let report = s.respond();
        assert!(report.composition.success, "composition must complete");
        assert_eq!(report.queries.len(), 4);
        let kinds: Vec<QueryKind> = report
            .queries
            .iter()
            .map(|(_, r)| r.as_ref().expect("query answered").kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                QueryKind::Simple,
                QueryKind::Aggregate,
                QueryKind::Complex,
                QueryKind::Continuous
            ]
        );
        assert!(report.energy_j > 0.0);
        assert!(report.alive > 0);
    }

    #[test]
    fn fire_is_visible_in_the_answers() {
        let mut s = FireScenario::new(2, 6, 12);
        let report = s.respond();
        // The complex query reconstructs the distribution; its peak must be
        // far above ambient after 10 minutes of fire.
        let (_, complex) = &report.queries[2];
        let peak = complex.as_ref().unwrap().value.unwrap();
        assert!(peak > 100.0, "reconstructed peak {peak}");
    }

    #[test]
    fn scenario_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = FireScenario::new(2, 6, seed);
            let r = s.respond();
            r.queries
                .iter()
                .map(|(_, q)| q.as_ref().unwrap().value)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }
}
