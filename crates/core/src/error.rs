//! Unified error type for the runtime.

use pg_partition::exec::ExecError;
use pg_query::parser::ParseError;
use std::fmt;

/// Anything that can go wrong between query text and an answer.
#[derive(Debug, Clone, PartialEq)]
pub enum PgError {
    /// The query text failed to parse.
    Parse(ParseError),
    /// The query referenced unknown sensors/regions or selected nothing.
    Exec(ExecError),
    /// No solution model satisfies the query's COST bounds — the runtime
    /// rejects rather than blowing the budget (experiment T10).
    CostBoundsUnsatisfiable,
    /// A component was (re)configured with invalid parameters — a bad
    /// fault plan, link model, region, or filter.
    Config(String),
}

impl fmt::Display for PgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PgError::Parse(e) => write!(f, "{e}"),
            PgError::Exec(e) => write!(f, "execution error: {e}"),
            PgError::CostBoundsUnsatisfiable => {
                write!(f, "no solution model satisfies the COST bounds")
            }
            PgError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for PgError {}

impl From<ParseError> for PgError {
    fn from(e: ParseError) -> Self {
        PgError::Parse(e)
    }
}

impl From<ExecError> for PgError {
    fn from(e: ExecError) -> Self {
        PgError::Exec(e)
    }
}

impl From<pg_net::InvalidConfig> for PgError {
    fn from(e: pg_net::InvalidConfig) -> Self {
        PgError::Config(e.0)
    }
}

impl From<pg_sim::fault::FaultConfigError> for PgError {
    fn from(e: pg_sim::fault::FaultConfigError) -> Self {
        PgError::Config(e.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e: PgError = pg_query::parse("nonsense").unwrap_err().into();
        assert!(e.to_string().contains("parse"));
        let e: PgError = ExecError::UnknownSensor(9).into();
        assert!(e.to_string().contains("sensor #9"));
        assert!(PgError::CostBoundsUnsatisfiable
            .to_string()
            .contains("COST"));
    }
}
