//! `PervasiveGrid` as a [`QueryEngine`]: the bridge between the generic
//! multi-query scheduler (`pg-runtime`) and the concrete Figure-1 pipeline.
//!
//! The paper's scenario is many handheld users querying one shared fabric
//! at once (§2). This module makes that concrete: a
//! [`MultiQueryRuntime<PervasiveGrid>`](GridRuntime) admits N queries
//! against the batteries' headroom, batches each epoch's slots into one
//! `execute_batch` call, and the engine here runs *overlapping aggregate
//! queries through one shared collection tree* — sampling each sensor once
//! and piggybacking per-query partial state on shared packets — while
//! everything else goes through the ordinary single-query pipeline.
//!
//! Batch execution order: shared aggregate groups first (in batch order),
//! then the remaining entries one by one in batch order. Results are
//! returned in batch order regardless. Queries executed through a batch do
//! not appear in [`PervasiveGrid::log`] — the scheduler's
//! [`QueryOutcome`](pg_runtime::QueryOutcome) list is the audit trail for
//! concurrent workloads.
//!
//! A query rides the shared tree when it parses, classifies as Aggregate
//! (one-shot, no EPOCH), carries no COST bounds (bounds need the decision
//! maker's per-model accounting), resolves at least one member, and the
//! base station is up — and at least one other query in the batch
//! qualifies too. Per-query energy/bytes/ops attribution comes from the
//! shared collection itself and sums to the measured totals.

use crate::error::PgError;
use crate::runtime::{DegradationReport, PervasiveGrid, Provenance, QueryResponse};
use pg_net::topology::NodeId;
use pg_partition::exec::{members_of, rel_err, truth_aggregate, value_filter, ExecContext};
use pg_partition::features::QueryFeatures;
use pg_partition::learn::Reward;
use pg_partition::model::{CostVector, SolutionModel};
use pg_query::ast::Query;
use pg_query::classify::{classify, QueryKind};
use pg_runtime::{Attribution, BatchQuery, EngineOutcome, MultiQueryRuntime, QueryEngine};
use pg_sensornet::aggregate::{AggFn, PARTIAL_WIRE_BYTES};
use pg_sensornet::shared::{SharedQuery, MAX_SHARED_QUERIES, STRATUM_KEY_WIRE_BYTES};
use pg_sim::{Duration, SimTime};

/// The concrete multi-query runtime: a scheduler that owns a grid.
///
/// For borrow-based composition (schedule over a grid you keep), use
/// `MultiQueryRuntime<&mut PervasiveGrid>` instead — the scheduler is
/// generic over both.
pub type GridRuntime = MultiQueryRuntime<PervasiveGrid>;

/// One batch entry that qualified for the shared aggregation tree.
struct Shareable {
    idx: usize,
    query: Query,
    members: Vec<NodeId>,
    /// The scheduler asked for brownout fidelity: `members` is already
    /// the coarser stratum (every other member), and the response will be
    /// annotated via `DegradationReport::brownout`.
    brownout: bool,
}

impl PervasiveGrid {
    /// Batch entries that can ride one shared collection epoch. Empty
    /// unless at least two qualify — a lone aggregate gains nothing from
    /// the stratum machinery and stays on the single-query path.
    fn shareable_entries(&mut self, batch: &[BatchQuery<'_>]) -> Vec<Shareable> {
        if batch.len() < 2 || self.faults.is_base_down(self.now) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (idx, bq) in batch.iter().enumerate() {
            let Ok(query) = pg_query::parse(bq.text) else {
                continue;
            };
            if classify(&query) != QueryKind::Aggregate || !query.cost.is_empty() {
                continue;
            }
            let ctx = ExecContext {
                net: &mut self.net,
                grid: &self.grid,
                field: &self.field,
                regions: &self.regions,
                now: self.now,
            };
            let Ok(members) = members_of(&ctx, &query) else {
                continue;
            };
            // Brownout: answer from a coarser stratum — roughly every
            // other member — while the overload lasts. The cut is keyed on
            // node id parity, not list position, so overlapping queries
            // keep overlapping members and their stratum entries still
            // merge on shared packets. A non-empty member set always keeps
            // at least one node: degraded, never empty.
            let members = if bq.brownout {
                let coarse: Vec<NodeId> =
                    members.iter().copied().filter(|n| n.0 % 2 == 0).collect();
                if coarse.is_empty() {
                    members
                } else {
                    coarse
                }
            } else {
                members
            };
            out.push(Shareable {
                idx,
                query,
                members,
                brownout: bq.brownout,
            });
        }
        if out.len() < 2 {
            out.clear();
        }
        out
    }

    /// Run one shared collection epoch for `chunk` (≤ 64 queries) and fill
    /// the corresponding `slots`.
    fn execute_shared_chunk(
        &mut self,
        chunk: &[Shareable],
        batch: &[BatchQuery<'_>],
        slots: &mut [Option<EngineOutcome<QueryResponse, PgError>>],
    ) {
        // Features are extracted against the pre-collection network, like
        // the single-query pipeline, so the learner sees comparable inputs.
        let features: Vec<Option<QueryFeatures>> = chunk
            .iter()
            .map(|s| {
                let ctx = ExecContext {
                    net: &mut self.net,
                    grid: &self.grid,
                    field: &self.field,
                    regions: &self.regions,
                    now: self.now,
                };
                QueryFeatures::extract(&ctx, &s.query)
            })
            .collect();
        let shared_queries: Vec<SharedQuery> = chunk
            .iter()
            .map(|s| SharedQuery {
                members: s.members.clone(),
                filter: value_filter(&s.query),
                agg: s.query.first_agg().unwrap_or(AggFn::Avg),
            })
            .collect();
        // Joint selection: under the bandit policy the learner also picks
        // the tree-maintenance mode for this chunk (placement × tree
        // lifetime), conditioned on chunk size and live health. Other
        // policies keep the configured mode.
        if let Some(mode) = self.decision.select_tree_mode(chunk.len()) {
            self.tree_session.set_maintenance(mode);
        }
        let tree_mode = self.tree_session.maintenance();
        // The chunk rides the grid's tree session: in the default Free mode
        // this is exactly `shared_tree_collection` (v1 semantics); under
        // PerEpoch/Persistent maintenance the session also charges tree
        // construction beacons, attributed evenly across the chunk below.
        let report = self.tree_session.collect(
            &mut self.net,
            &shared_queries,
            &self.field,
            self.now,
            &mut self.exec_rng,
        );
        let latency_s = report.latency.as_secs_f64();
        let control_bytes_share = report.control_bytes as f64 / chunk.len() as f64;
        let control_energy_share = report.control_energy_j / chunk.len() as f64;
        let mut chunk_scalar_cost = 0.0;

        for ((s, feats), (pq, sq)) in chunk
            .iter()
            .zip(features)
            .zip(report.per_query.iter().zip(&shared_queries))
        {
            let cost = CostVector {
                energy_j: pq.energy_j + control_energy_share,
                time_s: latency_s,
                bytes: pq.bytes + control_bytes_share,
                ops: pq.ops,
            };
            // Shareable queries carry no COST time bound, so the budget is
            // the builder deadline or the scheduler's remaining budget.
            let deadline_s = [
                self.deadline.map(|d| d.as_secs_f64()),
                batch[s.idx].deadline.map(|d| d.as_secs_f64()),
            ]
            .into_iter()
            .flatten()
            .reduce(f64::min);
            // Adaptive feedback: the learner sees each query's attributed
            // share as an InNetworkTree actual, plus the degradation it
            // came with (delivery loss, deadline fate, retries).
            if let Some(f) = feats {
                self.decision.observe(
                    &self.net,
                    &self.grid,
                    f,
                    SolutionModel::InNetworkTree,
                    Reward {
                        cost,
                        loss_frac: (1.0 - pq.delivery_ratio()).clamp(0.0, 1.0),
                        deadline_missed: deadline_s.is_some_and(|d| latency_s > d),
                        retries: pq.retries,
                        dead_letters: 0,
                    },
                );
            }
            chunk_scalar_cost += self.decision.config().weights().scalar(&cost);
            let truth = {
                let ctx = ExecContext {
                    net: &mut self.net,
                    grid: &self.grid,
                    field: &self.field,
                    regions: &self.regions,
                    now: self.now,
                };
                truth_aggregate(&ctx, &s.members, sq.agg, &sq.filter)
            };
            let accuracy_err = match (pq.value, truth) {
                (Some(v), Some(t)) => Some(rel_err(v, t)),
                _ => None,
            };
            let degradation = DegradationReport {
                faults_active: self.faults.is_active(),
                retries: pq.retries,
                base_outage_wait_s: 0.0,
                deadline_s,
                deadline_exceeded: deadline_s.is_some_and(|d| latency_s > d),
                fallback_model: false,
                brownout: s.brownout,
            };
            let response = QueryResponse {
                value: pq.value,
                kind: QueryKind::Aggregate,
                model: SolutionModel::InNetworkTree,
                cost,
                delivered_frac: pq.delivery_ratio(),
                accuracy_err,
                degradation,
                provenance: Provenance::default(),
            };
            let attribution = Attribution {
                energy_j: pq.energy_j + control_energy_share,
                bytes: pq.bytes + control_bytes_share,
                time_s: latency_s,
                retries: pq.retries,
                shared: true,
            };
            slots[s.idx] = Some(Ok((response, attribution)));
        }
        // Close the joint loop: credit the tree mode that ran this chunk
        // with its per-query attributed scalar cost (no-op off-bandit).
        self.decision.observe_tree_mode(
            tree_mode,
            chunk.len(),
            chunk_scalar_cost / chunk.len() as f64,
        );
    }
}

impl QueryEngine for PervasiveGrid {
    type Response = QueryResponse;
    type Error = PgError;

    fn now(&self) -> SimTime {
        self.now
    }

    fn advance(&mut self, dt: Duration) {
        PervasiveGrid::advance(self, dt);
    }

    fn available_energy_j(&self) -> f64 {
        let base = self.net.base();
        self.net
            .topology()
            .nodes()
            .filter(|&n| n != base)
            .map(|n| self.net.remaining_energy(n))
            .sum()
    }

    /// Scheduler pressure flows straight into the decision maker's health
    /// context: the bandit's selections condition on queue depth and
    /// overload level the moment the scheduler observes them.
    fn note_pressure(&mut self, queue_depth: usize, overload_level: f64) {
        self.decision.note_pressure(queue_depth, overload_level);
    }

    /// Deterministic first-order cost model for admission control: every
    /// member ships one stratum entry one hop at nominal range, plus the
    /// matching receive. No rng is touched, so admission decisions never
    /// perturb the execution stream.
    fn estimate_energy_j(&mut self, text: &str) -> Option<f64> {
        let query = pg_query::parse(text).ok()?;
        let members = {
            let ctx = ExecContext {
                net: &mut self.net,
                grid: &self.grid,
                field: &self.field,
                regions: &self.regions,
                now: self.now,
            };
            members_of(&ctx, &query).ok()?
        };
        let bits = 8 * (STRATUM_KEY_WIRE_BYTES + PARTIAL_WIRE_BYTES);
        let range = self.net.topology().range();
        let radio = self.net.radio();
        let per_member = radio.tx_energy(bits, range) + radio.rx_energy(bits);
        Some(per_member * members.len() as f64)
    }

    fn execute_batch(
        &mut self,
        batch: &[BatchQuery<'_>],
    ) -> Vec<EngineOutcome<QueryResponse, PgError>> {
        let mut slots: Vec<Option<EngineOutcome<QueryResponse, PgError>>> = vec![None; batch.len()];

        // Overlapping aggregates ride shared collection epochs, at most 64
        // queries (the stratum-mask width) per epoch.
        let shareable = self.shareable_entries(batch);
        for chunk in shareable.chunks(MAX_SHARED_QUERIES) {
            self.execute_shared_chunk(chunk, batch, &mut slots);
        }

        // Everything else — simple reads, COST-bounded queries, parse
        // errors — goes through the ordinary pipeline, in batch order.
        for (i, bq) in batch.iter().enumerate() {
            if slots[i].is_some() {
                continue;
            }
            let res = self.submit_inner(bq.text, bq.deadline.map(|d| d.as_secs_f64()));
            slots[i] = Some(res.map(|mut r| {
                // Single-path entries can't ride a coarser stratum, but a
                // browned-out round is still annotated so the client (and
                // the report's browned_out counter) see consistent books.
                r.degradation.brownout |= bq.brownout;
                let attribution = Attribution {
                    energy_j: r.cost.energy_j,
                    bytes: r.cost.bytes,
                    time_s: r.cost.time_s,
                    retries: r.degradation.retries,
                    shared: false,
                };
                (r, attribution)
            }));
        }

        slots
            .into_iter()
            .map(|s| s.unwrap_or_else(|| Err(PgError::Config("batch slot not executed".into()))))
            .collect()
    }
}
