//! The broker agent: semantic discovery served over the middleware.
//!
//! §3: "We are investigating the creation of efficient broker agents to
//! discover services at a semantic level." A [`BrokerAgent`] owns an
//! ontology and a registry, carries the framework's `Broker` attribute
//! (the bootstrap hook: any agent can find brokers via
//! [`pg_agent::system::AgentSystem::find_by_attr`]), and answers
//! `disc/query` envelopes with ranked matches.
//!
//! The query wire format is a tiny text encoding of a [`ServiceRequest`]
//! (the ontology identifier in the envelope names the vocabulary, per the
//! Ronin envelope design):
//!
//! ```text
//! class=PrinterService;min=queue_length;le=cost_per_page:0.30
//! ```
//!
//! Replies are `disc/results` with `name:score` pairs, ranked.

use pg_agent::envelope::{Envelope, Payload};
use pg_agent::profile::{AgentAttribute, AgentProfile};
use pg_agent::system::Agent;
use pg_discovery::description::{Constraint, Preference, ServiceDescription, ServiceRequest};
use pg_discovery::ontology::Ontology;
use pg_discovery::registry::Registry;
use pg_sim::SimTime;

/// Content type of a discovery query.
pub const CT_DISC_QUERY: &str = "disc/query";
/// Content type of a ranked result list.
pub const CT_DISC_RESULTS: &str = "disc/results";
/// Content type of a malformed-query error.
pub const CT_DISC_ERROR: &str = "disc/error";

/// Encode a request into the text wire format.
pub fn encode_request(class: &str, req: &ServiceRequest) -> String {
    let mut parts = vec![format!("class={class}")];
    for p in &req.preferences {
        match p {
            Preference::Minimize(k) => parts.push(format!("min={k}")),
            Preference::Maximize(k) => parts.push(format!("max={k}")),
            Preference::Nearest(pt) => parts.push(format!("near={},{}", pt.x, pt.y)),
        }
    }
    for c in &req.constraints {
        match c {
            Constraint::Le(k, v) => parts.push(format!("le={k}:{v}")),
            Constraint::Ge(k, v) => parts.push(format!("ge={k}:{v}")),
            // The remaining constraint forms are not needed on the wire yet.
            _ => {}
        }
    }
    parts.join(";")
}

/// Decode the wire format against an ontology.
pub fn decode_request(onto: &Ontology, s: &str) -> Option<ServiceRequest> {
    let mut class = None;
    let mut req_parts: Vec<(String, String)> = Vec::new();
    for part in s.split(';') {
        let (key, value) = part.split_once('=')?;
        if key == "class" {
            class = onto.class(value);
        } else {
            req_parts.push((key.to_string(), value.to_string()));
        }
    }
    let mut req = ServiceRequest::for_class(class?);
    for (key, value) in req_parts {
        match key.as_str() {
            "min" => req = req.with_preference(Preference::Minimize(value)),
            "max" => req = req.with_preference(Preference::Maximize(value)),
            "near" => {
                let (x, y) = value.split_once(',')?;
                req = req.with_preference(Preference::Nearest(pg_net::geom::Point::flat(
                    x.parse().ok()?,
                    y.parse().ok()?,
                )));
            }
            "le" => {
                let (k, v) = value.split_once(':')?;
                req = req.with_constraint(Constraint::Le(k.to_string(), v.parse().ok()?));
            }
            "ge" => {
                let (k, v) = value.split_once(':')?;
                req = req.with_constraint(Constraint::Ge(k.to_string(), v.parse().ok()?));
            }
            _ => return None,
        }
    }
    Some(req)
}

/// A middleware agent fronting a semantic registry.
pub struct BrokerAgent {
    profile: AgentProfile,
    onto: Ontology,
    /// The registry this broker serves (public: services in the same
    /// process register directly; remote registration would add a
    /// `disc/register` codec).
    pub registry: Registry,
    /// Queries served.
    pub served: u64,
}

impl BrokerAgent {
    /// An empty broker over the standard ontology.
    pub fn new() -> Self {
        BrokerAgent {
            profile: AgentProfile::new()
                .with_attr(AgentAttribute::Broker)
                .with_domain("role", "semantic-broker"),
            onto: Ontology::pervasive_grid(),
            registry: Registry::new(),
            served: 0,
        }
    }

    /// Register a service description directly.
    pub fn register(&mut self, desc: ServiceDescription) {
        self.registry.register(desc);
    }
}

impl Default for BrokerAgent {
    fn default() -> Self {
        Self::new()
    }
}

impl Agent for BrokerAgent {
    fn profile(&self) -> &AgentProfile {
        &self.profile
    }

    // Hit ids come straight out of the registry query, so lookup succeeds.
    #[allow(clippy::expect_used)]
    fn handle(&mut self, _now: SimTime, env: Envelope) -> Vec<Envelope> {
        if env.content_type != CT_DISC_QUERY {
            return Vec::new();
        }
        let Some(req) = env
            .payload
            .as_text()
            .and_then(|s| decode_request(&self.onto, s))
        else {
            return vec![env.reply(CT_DISC_ERROR, Payload::Text("malformed query".into()))];
        };
        self.served += 1;
        let hits = self.registry.query(&self.onto, &req);
        let body = hits
            .iter()
            .map(|h| {
                let name = &self.registry.get(h.id).expect("hit id valid").name;
                format!("{name}:{:.3}", h.m.score)
            })
            .collect::<Vec<_>>()
            .join(",");
        vec![env.reply(CT_DISC_RESULTS, Payload::Text(body))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_agent::deputy::DirectDeputy;
    use pg_agent::envelope::AgentId;
    use pg_agent::system::AgentSystem;
    use pg_discovery::description::Value;
    use pg_net::link::LinkModel;

    /// Collects discovery replies.
    struct Client {
        profile: AgentProfile,
        results: Vec<String>,
        errors: u32,
    }

    impl Client {
        fn new() -> Self {
            Client {
                profile: AgentProfile::new().with_attr(AgentAttribute::Client),
                results: Vec::new(),
                errors: 0,
            }
        }
    }

    impl Agent for Client {
        fn profile(&self) -> &AgentProfile {
            &self.profile
        }
        fn handle(&mut self, _now: SimTime, env: Envelope) -> Vec<Envelope> {
            match env.content_type.as_str() {
                CT_DISC_RESULTS => {
                    if let Some(s) = env.payload.as_text() {
                        self.results.push(s.to_string());
                    }
                }
                CT_DISC_ERROR => self.errors += 1,
                _ => {}
            }
            Vec::new()
        }
    }

    fn setup() -> (AgentSystem, AgentId, AgentId) {
        let onto = Ontology::pervasive_grid();
        let mut broker = BrokerAgent::new();
        broker.register(
            ServiceDescription::new("fast-printer", onto.class("LaserPrinterService").unwrap())
                .with_prop("queue_length", Value::Num(0.0))
                .with_prop("cost_per_page", Value::Num(0.10)),
        );
        broker.register(
            ServiceDescription::new("busy-printer", onto.class("ColorPrinterService").unwrap())
                .with_prop("queue_length", Value::Num(9.0))
                .with_prop("cost_per_page", Value::Num(0.05)),
        );
        let mut sys = AgentSystem::new();
        let client = sys.register(
            Box::new(Client::new()),
            Box::new(DirectDeputy::new(LinkModel::wifi())),
        );
        let broker_id = sys.register(
            Box::new(broker),
            Box::new(DirectDeputy::new(LinkModel::wifi())),
        );
        (sys, client, broker_id)
    }

    #[test]
    fn clients_find_brokers_by_attribute() {
        let (sys, _, broker_id) = setup();
        assert_eq!(sys.find_by_attr(AgentAttribute::Broker), vec![broker_id]);
    }

    #[test]
    fn query_round_trip_returns_ranked_names() {
        let (mut sys, client, broker_id) = setup();
        sys.send(Envelope::new(
            client,
            broker_id,
            CT_DISC_QUERY,
            "pg:services",
            Payload::Text("class=PrinterService;min=queue_length".into()),
        ));
        sys.run_to_quiescence();
        let c: &Client = sys.agent(client).unwrap().downcast_ref().unwrap();
        assert_eq!(c.results.len(), 1);
        // The shortest-queue printer ranks first.
        assert!(
            c.results[0].starts_with("fast-printer:"),
            "got {}",
            c.results[0]
        );
        assert!(c.results[0].contains("busy-printer:"));
    }

    #[test]
    fn constraints_travel_over_the_wire() {
        let (mut sys, client, broker_id) = setup();
        sys.send(Envelope::new(
            client,
            broker_id,
            CT_DISC_QUERY,
            "pg:services",
            Payload::Text("class=PrinterService;le=cost_per_page:0.08".into()),
        ));
        sys.run_to_quiescence();
        let c: &Client = sys.agent(client).unwrap().downcast_ref().unwrap();
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].contains("busy-printer"));
        assert!(!c.results[0].contains("fast-printer"));
    }

    #[test]
    fn malformed_queries_get_error_envelopes() {
        let (mut sys, client, broker_id) = setup();
        sys.send(Envelope::new(
            client,
            broker_id,
            CT_DISC_QUERY,
            "pg:services",
            Payload::Text("not-a-query".into()),
        ));
        sys.run_to_quiescence();
        let c: &Client = sys.agent(client).unwrap().downcast_ref().unwrap();
        assert_eq!(c.errors, 1);
    }

    #[test]
    fn codec_roundtrips() {
        let onto = Ontology::pervasive_grid();
        let class = onto.class("PrinterService").unwrap();
        let req = ServiceRequest::for_class(class)
            .with_constraint(Constraint::Le("cost_per_page".into(), 0.3))
            .with_preference(Preference::Minimize("queue_length".into()))
            .with_preference(Preference::Nearest(pg_net::geom::Point::flat(3.0, 4.0)));
        let wire = encode_request("PrinterService", &req);
        let back = decode_request(&onto, &wire).expect("valid wire form");
        assert_eq!(back.class, class);
        assert_eq!(back.constraints.len(), 1);
        assert_eq!(back.preferences.len(), 2);
    }
}
