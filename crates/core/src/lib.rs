//! `pg-core` — the Pervasive Grid runtime environment.
//!
//! "We propose a runtime environment for the Pervasive Grid that utilizes a
//! multi agent framework, and provides for discovery of services being
//! offered by sensors, embedded and mobile devices, and their composition.
//! The computation in this environment needs to be dynamically partitioned
//! between the traditional Grid and elements that constitute the pervasive
//! environment." (Abstract)
//!
//! [`runtime::PervasiveGrid`] is that runtime: it owns the sensor network,
//! the wired grid, the named regions, and the adaptive decision maker, and
//! drives the full Figure-1 pipeline for each submitted query string —
//! parse → classify → extract features → choose a solution model (COST
//! bounds enforced) → execute on the substrates → feed actuals back to the
//! learner.
//!
//! [`agents`] exposes the runtime through the Ronin-style middleware (a
//! handheld client agent talks to a query-processor agent over envelopes),
//! and [`scenario`] builds the paper's burning-building scenario end to
//! end, including the service-composition front half.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod agents;
pub mod broker_agent;
pub mod error;
pub mod multiquery;
pub mod runtime;
pub mod scenario;

pub use error::PgError;
pub use multiquery::GridRuntime;
pub use pg_partition::decide::{DecisionConfig, DecisionMaker, Policy};
pub use pg_partition::learn::{Learner, NetHealth, Reward, RewardWeights};
pub use pg_sensornet::shared::{SharedTreeSession, TreeMaintenance};
pub use runtime::{
    CrossCellHandoff, DegradationReport, GridBuilder, PervasiveGrid, Provenance, QueryRecord,
    QueryResponse,
};
pub use scenario::FireScenario;
