//! Property-based tests for the partition layer: estimator sanity, k-NN
//! envelope bounds, bound filtering, and executor conservation.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_grid::sched::GridCluster;
use pg_net::energy::RadioModel;
use pg_net::link::LinkModel;
use pg_net::topology::{NodeId, Topology};
use pg_partition::estimate::estimate;
use pg_partition::exec::{execute_once, ExecContext};
use pg_partition::features::QueryFeatures;
use pg_partition::knn::KnnRegressor;
use pg_partition::model::{within_bounds, CostVector, SolutionModel};
use pg_query::classify::QueryKind;
use pg_sensornet::field::TemperatureField;
use pg_sensornet::network::SensorNetwork;
use pg_sim::{Duration, SimTime};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

fn features(kind: QueryKind, members: usize, hops: f64, n: usize) -> QueryFeatures {
    QueryFeatures {
        kind,
        continuous: false,
        members,
        mean_hops: hops,
        network_size: n,
        epoch_s: 0.0,
    }
}

proptest! {
    /// Analytic estimates are finite and positive for every model over a
    /// wide feature range, and monotone in member count for transport-bound
    /// placements.
    #[test]
    fn estimates_sane(members in 1usize..500, hops in 1.0f64..15.0,
                      kind in prop_oneof![Just(QueryKind::Simple),
                                          Just(QueryKind::Aggregate),
                                          Just(QueryKind::Complex)]) {
        let net = SensorNetwork::new(
            Topology::grid(10, 10, 10.0, 11.0),
            NodeId(0),
            RadioModel::mote(),
            LinkModel::sensor_radio(),
            50.0,
        );
        let grid = GridCluster::campus();
        for model in SolutionModel::candidates(members) {
            let c = estimate(&net, &grid, &features(kind, members, hops, 500), &model);
            prop_assert!(c.energy_j.is_finite() && c.energy_j > 0.0);
            prop_assert!(c.time_s.is_finite() && c.time_s > 0.0);
            prop_assert!(c.bytes > 0.0 && c.ops > 0.0);
            // Doubling members never reduces transport cost.
            let c2 = estimate(&net, &grid, &features(kind, members * 2, hops, 500), &model);
            prop_assert!(c2.bytes >= c.bytes);
        }
    }

    /// k-NN predictions stay within the envelope of recorded costs for the
    /// same family (interpolation, never extrapolation beyond data).
    #[test]
    fn knn_prediction_within_envelope(
        costs in prop::collection::vec(0.001f64..10.0, 1..20),
        members in 1usize..200,
    ) {
        let mut knn = KnnRegressor::new();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (i, &e) in costs.iter().enumerate() {
            lo = lo.min(e);
            hi = hi.max(e);
            knn.record(
                features(QueryKind::Aggregate, 10 + i * 3, 3.0, 100),
                SolutionModel::BaseStation,
                CostVector { energy_j: e, time_s: e, bytes: e, ops: e },
            );
        }
        let p = knn
            .predict(&features(QueryKind::Aggregate, members, 3.0, 100), &SolutionModel::BaseStation)
            .expect("history exists");
        prop_assert!(p.energy_j >= lo - 1e-9 && p.energy_j <= hi + 1e-9,
                     "{} outside [{lo}, {hi}]", p.energy_j);
    }

    /// `within_bounds` is monotone: relaxing any bound never turns an
    /// accepted cost into a rejected one.
    #[test]
    fn bounds_monotone(e in 0.0f64..10.0, t in 0.0f64..100.0,
                       be in 0.001f64..10.0, bt in 0.001f64..100.0,
                       slack in 0.0f64..5.0) {
        let q_tight = pg_query::parse(&format!(
            "SELECT AVG(temp) FROM sensors COST energy {be}, time {bt}"
        )).unwrap();
        let q_loose = pg_query::parse(&format!(
            "SELECT AVG(temp) FROM sensors COST energy {}, time {}",
            be + slack, bt + slack
        )).unwrap();
        let c = CostVector { energy_j: e, time_s: t, bytes: 0.0, ops: 0.0 };
        if within_bounds(&q_tight, &c, None) {
            prop_assert!(within_bounds(&q_loose, &c, None));
        }
    }

    /// Executor conservation across random small worlds: reported energy
    /// equals battery drain; delivery fraction bounded; value present when
    /// delivery is non-zero (aggregate queries).
    #[test]
    fn executor_conservation(side in 3usize..6, loss in 0.0f64..0.4, seed in any::<u64>()) {
        let topo = Topology::grid(side, side, 10.0, 11.0);
        let mut net = SensorNetwork::new(
            topo,
            NodeId(0),
            RadioModel::mote(),
            LinkModel::new(250e3, Duration::from_millis(5), loss).unwrap(),
            100.0,
        );
        net.noise_sd = 0.0;
        let grid = GridCluster::campus();
        let field = TemperatureField::calm(20.0);
        let regions = BTreeMap::new();
        let query = pg_query::parse("SELECT AVG(temp) FROM sensors").unwrap();
        for model in SolutionModel::candidates(side * side - 1) {
            let before = net.total_consumed();
            let mut ctx = ExecContext {
                net: &mut net,
                grid: &grid,
                field: &field,
                regions: &regions,
                now: SimTime::ZERO,
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let out = execute_once(&mut ctx, &query, model, &mut rng).expect("valid query");
            prop_assert!((out.cost.energy_j - (net.total_consumed() - before)).abs() < 1e-9);
            prop_assert!((0.0..=1.0).contains(&out.delivered_frac));
            if out.delivered_frac > 0.0 {
                prop_assert!(out.value.is_some());
                let v = out.value.unwrap();
                prop_assert!((v - 20.0).abs() < 1e-6, "noise-free calm avg must be 20: {v}");
            }
        }
    }
}
