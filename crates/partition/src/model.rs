//! Solution models and the four-dimensional cost vector.

use pg_query::ast::Query;

/// Where the computation for a query is placed (§4's solution models).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolutionModel {
    /// In-network: TAG-style aggregation up the routing tree.
    InNetworkTree,
    /// In-network: LEACH-style cluster heads aggregate, `heads` of them.
    InNetworkCluster {
        /// Number of cluster heads.
        heads: usize,
    },
    /// Raw readings to the base station/PDA; it computes.
    BaseStation,
    /// Readings (optionally region-averaged) shipped over the backhaul to
    /// the grid; the grid computes.
    GridOffload {
        /// Region-averaging cell size in metres (0 = no reduction) — the
        /// paper's accuracy/data trade-off knob.
        reduction_cell_m: f64,
    },
    /// §4's "combination of the approaches above": clusters summarize
    /// in-network (centroid + mean per cluster), only the summaries cross
    /// the backhaul, and the grid computes on them.
    Hybrid {
        /// Number of cluster heads performing the in-network reduction.
        heads: usize,
    },
}

impl SolutionModel {
    /// The candidate set the decision maker considers for any query.
    pub fn candidates(members: usize) -> Vec<SolutionModel> {
        let heads = pg_sensornet::cluster::default_head_count(members);
        vec![
            SolutionModel::InNetworkTree,
            SolutionModel::InNetworkCluster { heads },
            SolutionModel::BaseStation,
            SolutionModel::GridOffload {
                reduction_cell_m: 0.0,
            },
            SolutionModel::Hybrid {
                heads: heads.max(4),
            },
        ]
    }

    /// Table-friendly name.
    pub fn name(&self) -> String {
        match self {
            SolutionModel::InNetworkTree => "in-network/tree".into(),
            SolutionModel::InNetworkCluster { heads } => format!("in-network/cluster(k={heads})"),
            SolutionModel::BaseStation => "base-station".into(),
            SolutionModel::GridOffload { reduction_cell_m } if *reduction_cell_m > 0.0 => {
                format!("grid(reduce={reduction_cell_m}m)")
            }
            SolutionModel::GridOffload { .. } => "grid".into(),
            SolutionModel::Hybrid { heads } => format!("hybrid(k={heads})"),
        }
    }

    /// Coarse family index (used as part of the k-NN key so histories of
    /// different placements never mix).
    pub fn family(&self) -> usize {
        match self {
            SolutionModel::InNetworkTree => 0,
            SolutionModel::InNetworkCluster { .. } => 1,
            SolutionModel::BaseStation => 2,
            SolutionModel::GridOffload { .. } => 3,
            SolutionModel::Hybrid { .. } => 4,
        }
    }
}

/// The four quantities §4 says must be estimated per (query, model):
/// "the amount of computation … the amount of data transfer … estimates of
/// energy consumption … estimate of the response time".
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostVector {
    /// Sensor-network energy, joules.
    pub energy_j: f64,
    /// Response time, seconds.
    pub time_s: f64,
    /// Data transferred (all links), bytes.
    pub bytes: f64,
    /// Computation, operations.
    pub ops: f64,
}

impl CostVector {
    /// Component-wise sum.
    pub fn add(&self, other: &CostVector) -> CostVector {
        CostVector {
            energy_j: self.energy_j + other.energy_j,
            time_s: self.time_s + other.time_s,
            bytes: self.bytes + other.bytes,
            ops: self.ops + other.ops,
        }
    }

    /// Component-wise scale.
    pub fn scale(&self, k: f64) -> CostVector {
        CostVector {
            energy_j: self.energy_j * k,
            time_s: self.time_s * k,
            bytes: self.bytes * k,
            ops: self.ops * k,
        }
    }
}

/// Scalarization weights for comparing cost vectors. Normalization scales
/// put one "typical" unit of each dimension on a comparable footing.
#[derive(Debug, Clone, Copy)]
pub struct CostWeights {
    /// Weight on energy (per 0.1 J).
    pub energy: f64,
    /// Weight on response time (per 10 s).
    pub time: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        // Energy-first, as §4 insists ("preserving the energy of the
        // sensors is of prime importance"), with time a strong second for
        // real-time queries.
        CostWeights {
            energy: 1.0,
            time: 0.5,
        }
    }
}

impl CostWeights {
    /// Scalar badness of a cost vector (lower is better).
    pub fn scalar(&self, c: &CostVector) -> f64 {
        self.energy * (c.energy_j / 0.1) + self.time * (c.time_s / 10.0)
    }
}

/// Does `cost` respect every COST bound of `query`? (Accuracy bounds are
/// checked against `accuracy_err` when the executor measured one.)
pub fn within_bounds(query: &Query, cost: &CostVector, accuracy_err: Option<f64>) -> bool {
    if let Some(e) = query.energy_bound() {
        if cost.energy_j > e {
            return false;
        }
    }
    if let Some(t) = query.time_bound() {
        if cost.time_s > t {
            return false;
        }
    }
    if let (Some(bound), Some(err)) = (query.accuracy_bound(), accuracy_err) {
        if err > bound {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_query::parse;

    #[test]
    fn candidate_set_covers_all_families() {
        let c = SolutionModel::candidates(100);
        let fams: Vec<usize> = c.iter().map(SolutionModel::family).collect();
        assert_eq!(fams, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn hybrid_names_and_family() {
        let h = SolutionModel::Hybrid { heads: 6 };
        assert_eq!(h.name(), "hybrid(k=6)");
        assert_eq!(h.family(), 4);
    }

    #[test]
    fn cost_vector_algebra() {
        let a = CostVector {
            energy_j: 1.0,
            time_s: 2.0,
            bytes: 3.0,
            ops: 4.0,
        };
        let b = a.scale(2.0);
        assert_eq!(b.energy_j, 2.0);
        assert_eq!(a.add(&b).ops, 12.0);
    }

    #[test]
    fn scalarization_prefers_cheap_energy() {
        let w = CostWeights::default();
        let cheap = CostVector {
            energy_j: 0.01,
            time_s: 5.0,
            ..Default::default()
        };
        let dear = CostVector {
            energy_j: 1.0,
            time_s: 1.0,
            ..Default::default()
        };
        assert!(w.scalar(&cheap) < w.scalar(&dear));
    }

    #[test]
    fn bounds_filter() {
        let q = parse("SELECT AVG(temp) FROM sensors COST energy <= 0.5, time <= 2").unwrap();
        let ok = CostVector {
            energy_j: 0.4,
            time_s: 1.0,
            ..Default::default()
        };
        let too_hot = CostVector {
            energy_j: 0.6,
            time_s: 1.0,
            ..Default::default()
        };
        let too_slow = CostVector {
            energy_j: 0.1,
            time_s: 3.0,
            ..Default::default()
        };
        assert!(within_bounds(&q, &ok, None));
        assert!(!within_bounds(&q, &too_hot, None));
        assert!(!within_bounds(&q, &too_slow, None));
    }

    #[test]
    fn accuracy_bound_checked_when_measured() {
        let q = parse("SELECT AVG(temp) FROM sensors COST accuracy 0.05").unwrap();
        let c = CostVector::default();
        assert!(within_bounds(&q, &c, None)); // unmeasured: not enforceable
        assert!(within_bounds(&q, &c, Some(0.04)));
        assert!(!within_bounds(&q, &c, Some(0.06)));
    }
}
