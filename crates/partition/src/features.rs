//! Query/network feature extraction for the decision maker.
//!
//! §4: "A lot of factors would affect the estimates required above. All
//! networks may not be of the same size … Different networks would have
//! different network topology … Different sensors may generate data with
//! different rates." The feature vector captures the query class, the
//! selected population, and the topology shape.

use crate::exec::{members_of, ExecContext};
use crate::model::SolutionModel;
use pg_query::ast::Query;
use pg_query::classify::{classify, inner_kind, QueryKind};

/// Dimensionality of the numeric feature vector.
pub const FEATURE_DIM: usize = 8;

/// Extracted features of one (query, network) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryFeatures {
    /// The query class after Continuous unwrapping.
    pub kind: QueryKind,
    /// Is the query continuous?
    pub continuous: bool,
    /// Number of selected sensors.
    pub members: usize,
    /// Mean hop distance from members to the base station.
    pub mean_hops: f64,
    /// Network size.
    pub network_size: usize,
    /// Epoch duration in seconds (0 for one-shot queries).
    pub epoch_s: f64,
}

impl QueryFeatures {
    /// Extract features for `query` against the context's network.
    pub fn extract(ctx: &ExecContext<'_>, query: &Query) -> Option<QueryFeatures> {
        let members = members_of(ctx, query).ok()?;
        let hops = ctx.net.topology().hops_from(ctx.net.base());
        let mut total = 0u64;
        let mut counted = 0u64;
        for &m in &members {
            if let Some(h) = hops[m.idx()] {
                total += h as u64;
                counted += 1;
            }
        }
        let kind = classify(query);
        Some(QueryFeatures {
            kind: if kind == QueryKind::Continuous {
                inner_kind(query)
            } else {
                kind
            },
            continuous: kind == QueryKind::Continuous,
            members: members.len(),
            mean_hops: if counted == 0 {
                0.0
            } else {
                total as f64 / counted as f64
            },
            network_size: ctx.net.len(),
            epoch_s: query.epoch.map_or(0.0, |e| e.as_secs_f64()),
        })
    }

    /// The numeric vector used for k-NN distance (scaled to comparable
    /// magnitudes; logs for the long-tailed counts).
    pub fn vector(&self) -> [f64; FEATURE_DIM] {
        let one_hot = |k| if self.kind == k { 1.0 } else { 0.0 };
        [
            one_hot(QueryKind::Simple),
            one_hot(QueryKind::Aggregate),
            one_hot(QueryKind::Complex),
            if self.continuous { 1.0 } else { 0.0 },
            ((self.members as f64) + 1.0).ln(),
            self.mean_hops / 4.0,
            ((self.network_size as f64) + 1.0).ln(),
            (self.epoch_s + 1.0).ln(),
        ]
    }

    /// Euclidean distance between two feature vectors.
    pub fn distance(&self, other: &QueryFeatures) -> f64 {
        let a = self.vector();
        let b = other.vector();
        a.iter()
            .zip(&b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }
}

/// A (features, model) pairing — the k-NN conditioning key uses the model
/// family so histories of different placements never mix.
#[derive(Debug, Clone, Copy)]
pub struct Situation {
    /// The query/network features.
    pub features: QueryFeatures,
    /// The placement executed.
    pub model: SolutionModel,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_grid::sched::GridCluster;
    use pg_net::energy::RadioModel;
    use pg_net::geom::Point;
    use pg_net::link::LinkModel;
    use pg_net::topology::{NodeId, Topology};
    use pg_query::parse;
    use pg_sensornet::field::TemperatureField;
    use pg_sensornet::network::SensorNetwork;
    use pg_sensornet::region::Region;
    use pg_sim::{Duration, SimTime};
    use std::collections::BTreeMap;

    fn harness() -> (
        SensorNetwork,
        GridCluster,
        TemperatureField,
        BTreeMap<String, Region>,
    ) {
        let topo = Topology::grid(5, 5, 10.0, 11.0);
        let net = SensorNetwork::new(
            topo,
            NodeId(0),
            RadioModel::mote(),
            LinkModel::sensor_radio(),
            50.0,
        );
        let mut regions = BTreeMap::new();
        regions.insert("corner".into(), Region::room(0.0, 0.0, 15.0, 15.0));
        (
            net,
            GridCluster::campus(),
            TemperatureField::calm(21.0),
            regions,
        )
    }

    #[test]
    fn extraction_reads_query_and_topology() {
        let (mut net, grid, field, regions) = harness();
        let ctx = ExecContext {
            net: &mut net,
            grid: &grid,
            field: &field,
            regions: &regions,
            now: SimTime::ZERO,
        };
        let q =
            parse("SELECT AVG(temp) FROM sensors WHERE region(corner) EPOCH DURATION 10").unwrap();
        let f = QueryFeatures::extract(&ctx, &q).unwrap();
        assert_eq!(f.kind, QueryKind::Aggregate);
        assert!(f.continuous);
        assert_eq!(f.members, 3); // 2x2 corner minus the base at (0,0)
        assert!(f.mean_hops >= 1.0);
        assert_eq!(f.epoch_s, 10.0);
        assert_eq!(f.network_size, 25);
    }

    #[test]
    fn distance_is_zero_for_identical_and_positive_for_different() {
        let (mut net, grid, field, regions) = harness();
        let ctx = ExecContext {
            net: &mut net,
            grid: &grid,
            field: &field,
            regions: &regions,
            now: SimTime::ZERO,
        };
        let q1 = parse("SELECT AVG(temp) FROM sensors").unwrap();
        let q2 = parse("SELECT temp FROM sensors WHERE sensor_id = 3").unwrap();
        let f1 = QueryFeatures::extract(&ctx, &q1).unwrap();
        let f1b = QueryFeatures::extract(&ctx, &q1).unwrap();
        let f2 = QueryFeatures::extract(&ctx, &q2).unwrap();
        assert_eq!(f1.distance(&f1b), 0.0);
        assert!(f1.distance(&f2) > 0.5);
        let _ = Duration::from_secs(1);
        let _ = Point::flat(0.0, 0.0);
    }
}
