//! Online learning behind the decision maker: the [`Learner`] trait and
//! its two implementations — the k-NN case memory ([`KnnLearner`], the
//! Pythia-style regressor the repo started with) and a contextual LinUCB
//! bandit ([`LinUcbLearner`]) that closes §4's adaptive loop on the *full*
//! outcome signal, not cost actuals alone.
//!
//! §4: "standard machine learning techniques would be used on the data to
//! select the right approach", made adaptive "by comparing the estimates
//! with the actual values during the execution". The bandit takes that
//! literally as an online decision problem: each query is a context (query
//! features + live network health + scheduler pressure), each solution
//! model is an arm, and the composite [`Reward`] blends the scalar cost
//! actual with observed degradation — loss fraction, deadline misses,
//! retries, dead letters — so the learner steers by what the runtime
//! *experienced*, not just what the radio billed.
//!
//! The LinUCB estimator is per-arm ridge regression maintained via
//! Sherman–Morrison rank-one updates, with a per-observation discount
//! (`gamma < 1`) that ages out stale evidence — the mechanism that lets it
//! track a mid-run environment shift (faults ramping, load ramping) that
//! the k-NN memory is structurally slow to follow (its distance-0
//! neighbours are the oldest cases, which never age).

use crate::features::QueryFeatures;
use crate::knn::KnnRegressor;
use crate::model::{CostVector, CostWeights, SolutionModel};
use pg_query::classify::QueryKind;
use pg_sensornet::shared::TreeMaintenance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Live network-health telemetry: EWMA of per-query degradation signals
/// plus the scheduler's queue pressure, maintained by the decision maker
/// and fed to the bandit as context.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetHealth {
    /// EWMA of the per-query loss fraction (`1 - delivered_frac`).
    pub loss_ewma: f64,
    /// EWMA of deadline misses (0/1 per query).
    pub miss_ewma: f64,
    /// EWMA of link-layer retransmissions per query.
    pub retry_ewma: f64,
    /// EWMA of agent-bus dead letters attributed per query.
    pub dead_letter_ewma: f64,
    /// Waiting-queue depth last published by the scheduler.
    pub queue_depth: usize,
    /// Overload level last published by the scheduler: 0 normal,
    /// 0.5 brownout, 1 shed.
    pub overload_level: f64,
}

/// EWMA smoothing factor for the health tracker.
const HEALTH_ALPHA: f64 = 0.2;

impl NetHealth {
    /// Fold one observed outcome into the EWMAs.
    pub fn absorb(&mut self, reward: &Reward) {
        let ewma = |prev: f64, x: f64| (1.0 - HEALTH_ALPHA) * prev + HEALTH_ALPHA * x;
        self.loss_ewma = ewma(self.loss_ewma, reward.loss_frac.clamp(0.0, 1.0));
        self.miss_ewma = ewma(self.miss_ewma, f64::from(reward.deadline_missed));
        self.retry_ewma = ewma(self.retry_ewma, reward.retries as f64);
        self.dead_letter_ewma = ewma(self.dead_letter_ewma, reward.dead_letters as f64);
    }

    /// Record the scheduler's queue pressure (depth + overload level).
    pub fn set_pressure(&mut self, queue_depth: usize, overload_level: f64) {
        self.queue_depth = queue_depth;
        self.overload_level = overload_level.clamp(0.0, 1.0);
    }
}

/// The full outcome signal of one executed query, as seen by the learner.
///
/// [`KnnLearner`] consumes only `cost` (exactly the pre-existing k-NN
/// feedback path); [`LinUcbLearner`] collapses everything into a composite
/// scalar via [`RewardWeights`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reward {
    /// Measured execution cost (excludes queue wait and outage wait).
    pub cost: CostVector,
    /// Fraction of requested readings that did *not* arrive.
    pub loss_frac: f64,
    /// The response missed its effective deadline budget.
    pub deadline_missed: bool,
    /// Link-layer retransmissions spent on this answer.
    pub retries: u64,
    /// Agent-bus dead letters attributed to this query's window.
    pub dead_letters: u64,
}

impl Reward {
    /// A pure-cost reward: no degradation observed (the legacy feedback
    /// path, and the fault-free common case).
    pub fn from_cost(cost: CostVector) -> Reward {
        Reward {
            cost,
            loss_frac: 0.0,
            deadline_missed: false,
            retries: 0,
            dead_letters: 0,
        }
    }
}

/// How the composite bandit reward blends cost with degradation.
///
/// The scalar cost is squashed to `(0, 1)` by `s / (s + cost_scale)` so a
/// single catastrophic pull cannot blow up the ridge estimate; degradation
/// terms are already bounded. The composite reward is the *negative*
/// weighted sum — higher is better, and everything lives in a bounded
/// range, which keeps the linear model well-conditioned.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RewardWeights {
    /// Weight on the squashed scalar cost.
    pub cost: f64,
    /// Weight on the loss fraction.
    pub loss: f64,
    /// Weight on a deadline miss.
    pub deadline: f64,
    /// Weight on dead letters (saturating at 4 per query).
    pub dead_letter: f64,
    /// Scalar-cost squash midpoint: a cost of `cost_scale` maps to 0.5.
    pub cost_scale: f64,
}

impl Default for RewardWeights {
    fn default() -> Self {
        RewardWeights {
            cost: 1.0,
            loss: 0.5,
            deadline: 1.0,
            dead_letter: 0.25,
            cost_scale: 5.0,
        }
    }
}

impl RewardWeights {
    /// Collapse an outcome into the composite scalar reward (≤ 0; higher
    /// is better). `scalar_cost` is the cost vector under the decision
    /// maker's scalarization weights.
    pub fn composite(&self, scalar_cost: f64, r: &Reward) -> f64 {
        let s = scalar_cost.max(0.0);
        -(self.cost * (s / (s + self.cost_scale.max(1e-9)))
            + self.loss * r.loss_frac.clamp(0.0, 1.0)
            + self.deadline * f64::from(r.deadline_missed)
            + self.dead_letter * (r.dead_letters.min(4) as f64 / 4.0))
    }
}

/// The context of one selection: what the learner may condition on.
#[derive(Debug, Clone, Copy)]
pub struct LearnContext {
    /// Query/network features.
    pub features: QueryFeatures,
    /// Live health telemetry.
    pub health: NetHealth,
    /// The query's COST energy bound, if any.
    pub energy_bound: Option<f64>,
    /// The query's COST time bound, if any.
    pub time_bound: Option<f64>,
}

/// One candidate placement as presented to the learner: the arm, its
/// analytic prior, and the learner's own prediction (filled by the
/// decision maker via [`Learner::predict_cost`]) with its scalar score.
#[derive(Debug, Clone, Copy)]
pub struct CandidateArm {
    /// Stable arm index within the full (unfiltered) candidate set — the
    /// bandit's per-arm model key, invariant under feasibility filtering.
    pub key: usize,
    /// The placement.
    pub model: SolutionModel,
    /// Analytic cost estimate (the prior the paper's estimator provides).
    pub analytic: CostVector,
    /// The learner's cost prediction for this arm.
    pub predicted: CostVector,
    /// Scalarized `predicted` under the weights in force.
    pub score: f64,
}

/// An online placement learner: `select` an arm for a context, `observe`
/// the outcome of an executed arm. Implemented by the k-NN case memory
/// (the pre-existing `Policy::Adaptive` path, bit-identical through this
/// trait) and the LinUCB contextual bandit (`Policy::Bandit`).
pub trait Learner: std::fmt::Debug {
    /// Pick an arm: the returned value indexes into `arms` (which the
    /// decision maker has already filtered to COST-feasible candidates).
    /// `None` only when `arms` is empty.
    fn select(&mut self, ctx: &LearnContext, arms: &[CandidateArm]) -> Option<usize>;

    /// Feed back the measured outcome of executing `arm` under `ctx`.
    fn observe(&mut self, ctx: &LearnContext, arm: &CandidateArm, reward: &Reward);

    /// Predicted cost of running `model` given the analytic prior. The
    /// default trusts the prior; the k-NN learner blends in its history.
    fn predict_cost(
        &self,
        _features: &QueryFeatures,
        _model: &SolutionModel,
        analytic: CostVector,
    ) -> CostVector {
        analytic
    }

    /// Number of outcomes absorbed so far.
    fn observations(&self) -> usize;

    /// The underlying case memory, when the learner keeps one.
    fn knn(&self) -> Option<&KnnRegressor> {
        None
    }
}

/// The k-NN case-memory learner: the original `Policy::Adaptive` logic
/// (distance-blended prediction, decayed safe ε-greedy exploration) moved
/// behind the [`Learner`] trait, bit-identical to the pre-trait code — the
/// RNG draw order and every floating-point expression are unchanged.
#[derive(Debug)]
pub struct KnnLearner {
    knn: KnnRegressor,
    epsilon: f64,
    blend: bool,
    safe_explore: bool,
    rng: StdRng,
}

impl KnnLearner {
    /// A learner over an empty case memory.
    pub fn new(k: usize, epsilon: f64, blend: bool, safe_explore: bool, seed: u64) -> Self {
        let mut knn = KnnRegressor::new();
        knn.k = k;
        KnnLearner {
            knn,
            epsilon,
            blend,
            safe_explore,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Learner for KnnLearner {
    // Scalar scores are weighted sums of finite predictions (never NaN)
    // and the arm set is checked non-empty before taking the min.
    #[allow(clippy::expect_used)]
    fn select(&mut self, _ctx: &LearnContext, arms: &[CandidateArm]) -> Option<usize> {
        if arms.is_empty() {
            return None;
        }
        let best = arms
            .iter()
            .enumerate()
            .min_by(|a, b| {
                a.1.score
                    .partial_cmp(&b.1.score)
                    .expect("scores are never NaN")
            })
            .expect("arm set is non-empty");
        // Safe ε-greedy: explore only among candidates predicted within 5×
        // of the best (a placement already predicted to be 100× dearer —
        // e.g. an in-network PDE solve — teaches nothing worth its price),
        // and decay exploration as history accumulates.
        let eps = self.epsilon / (1.0 + self.knn.len() as f64 / 25.0);
        if self.rng.gen::<f64>() < eps {
            let near: Vec<usize> = if self.safe_explore {
                arms.iter()
                    .enumerate()
                    .filter(|(_, a)| a.score <= 5.0 * best.1.score + 1e-12)
                    .map(|(i, _)| i)
                    .collect()
            } else {
                (0..arms.len()).collect()
            };
            return Some(near[self.rng.gen_range(0..near.len())]);
        }
        Some(best.0)
    }

    fn observe(&mut self, ctx: &LearnContext, arm: &CandidateArm, reward: &Reward) {
        self.knn.record(ctx.features, arm.model, reward.cost);
    }

    fn predict_cost(
        &self,
        features: &QueryFeatures,
        model: &SolutionModel,
        analytic: CostVector,
    ) -> CostVector {
        match self.knn.predict_detailed(features, model) {
            None => analytic,
            Some((learned, _)) if !self.blend => learned,
            Some((learned, nearest)) => {
                let w = 1.0 / (1.0 + nearest * nearest * 4.0);
                learned.scale(w).add(&analytic.scale(1.0 - w))
            }
        }
    }

    fn observations(&self) -> usize {
        self.knn.len()
    }

    fn knn(&self) -> Option<&KnnRegressor> {
        Some(&self.knn)
    }
}

/// LinUCB hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BanditConfig {
    /// UCB exploration width (0 disables optimism beyond the one free
    /// pull every unseen arm gets).
    pub alpha: f64,
    /// Per-observation evidence discount (`< 1` tracks nonstationary
    /// environments; `1` is the stationary textbook update).
    pub gamma: f64,
    /// Composite-reward blend.
    pub reward: RewardWeights,
}

impl Default for BanditConfig {
    fn default() -> Self {
        BanditConfig {
            alpha: 0.8,
            gamma: 0.98,
            reward: RewardWeights::default(),
        }
    }
}

/// Context dimensionality of the placement bandit.
pub const BANDIT_DIM: usize = 10;

/// Evidence-decayed exploration width: `alpha / (1 + n/64)`.
fn decayed_alpha(alpha: f64, observations: usize) -> f64 {
    alpha / (1.0 + observations as f64 / 64.0)
}

/// One arm's discounted ridge regression, maintained as `A⁻¹` directly
/// via Sherman–Morrison rank-one updates (no matrix inversion on the hot
/// path — `select` is O(arms · D²), `observe` is O(D²)).
#[derive(Debug, Clone)]
struct LinArm<const D: usize> {
    a_inv: [[f64; D]; D],
    b: [f64; D],
    pulls: u64,
}

impl<const D: usize> LinArm<D> {
    fn new() -> Self {
        let mut a_inv = [[0.0; D]; D];
        for (i, row) in a_inv.iter_mut().enumerate() {
            row[i] = 1.0; // ridge prior A = I
        }
        LinArm {
            a_inv,
            b: [0.0; D],
            pulls: 0,
        }
    }

    /// `θᵀx + alpha·sqrt(xᵀA⁻¹x)` — the UCB index.
    fn ucb(&self, x: &[f64; D], alpha: f64) -> f64 {
        let mut mean = 0.0;
        let mut width2 = 0.0;
        for (i, row) in self.a_inv.iter().enumerate() {
            let ainv_x_i: f64 = row.iter().zip(x.iter()).map(|(a, xj)| a * xj).sum();
            // θ_i = (A⁻¹ b)_i; θᵀx accumulated as bᵀ(A⁻¹x) since A⁻¹ is
            // symmetric.
            mean += self.b[i] * ainv_x_i;
            width2 += x[i] * ainv_x_i;
        }
        mean + alpha * width2.max(0.0).sqrt()
    }

    /// Discounted rank-one update: `A ← γA + xxᵀ`, `b ← γb + r·x`,
    /// maintaining `A⁻¹` by Sherman–Morrison on `(γA)⁻¹ = A⁻¹/γ`.
    fn update(&mut self, x: &[f64; D], r: f64, gamma: f64) {
        let g = gamma.clamp(1e-3, 1.0);
        for row in self.a_inv.iter_mut() {
            for v in row.iter_mut() {
                *v /= g;
            }
        }
        // u = A⁻¹x; denom = 1 + xᵀA⁻¹x; A⁻¹ ← A⁻¹ − u uᵀ / denom.
        let mut u = [0.0; D];
        for (ui, row) in u.iter_mut().zip(self.a_inv.iter()) {
            *ui = row.iter().zip(x.iter()).map(|(a, xj)| a * xj).sum();
        }
        let denom = 1.0 + x.iter().zip(u.iter()).map(|(xi, ui)| xi * ui).sum::<f64>();
        for i in 0..D {
            for j in 0..D {
                self.a_inv[i][j] -= u[i] * u[j] / denom;
            }
        }
        for (bi, xi) in self.b.iter_mut().zip(x.iter()) {
            *bi = g * *bi + r * xi;
        }
        self.pulls += 1;
    }
}

/// The contextual LinUCB placement bandit (`Policy::Bandit`).
///
/// Per-arm disjoint linear models over a small hand-crafted context:
/// the analytic cost prior (squashed), the query class, the member count,
/// and the live health/pressure telemetry. Unseen arms predict reward 0 —
/// above every seen arm's (negative) reward — so each arm is explored
/// once before optimism takes over; ties break toward the lowest arm
/// index, keeping selection fully deterministic.
#[derive(Debug)]
pub struct LinUcbLearner {
    cfg: BanditConfig,
    weights: CostWeights,
    arms: BTreeMap<usize, LinArm<BANDIT_DIM>>,
    observations: usize,
}

impl LinUcbLearner {
    /// A fresh bandit. `_seed` is accepted for interface symmetry with the
    /// other learners; selection is deterministic and draws no randomness.
    pub fn new(cfg: BanditConfig, weights: CostWeights, _seed: u64) -> Self {
        LinUcbLearner {
            cfg,
            weights,
            arms: BTreeMap::new(),
            observations: 0,
        }
    }

    /// The context vector for one (context, arm) pair.
    fn context_vector(
        ctx: &LearnContext,
        arm: &CandidateArm,
        cost_scale: f64,
    ) -> [f64; BANDIT_DIM] {
        let one_hot = |k| if ctx.features.kind == k { 1.0 } else { 0.0 };
        let s = arm.score.max(0.0);
        [
            1.0,
            s / (s + cost_scale.max(1e-9)),
            one_hot(QueryKind::Simple),
            one_hot(QueryKind::Aggregate),
            one_hot(QueryKind::Complex),
            ((ctx.features.members as f64) + 1.0).ln() / 5.0,
            ctx.health.loss_ewma,
            ctx.health.miss_ewma,
            ctx.health.overload_level,
            ((ctx.health.queue_depth as f64) + 1.0).ln() / 5.0,
        ]
    }
}

impl Learner for LinUcbLearner {
    fn select(&mut self, ctx: &LearnContext, arms: &[CandidateArm]) -> Option<usize> {
        // The discount (`A ← γA + xxᵀ`) regrows uncertainty in *every*
        // direction each update, so a fixed alpha keeps re-exploring arms
        // whose ruin is already established in rarely-seen directions.
        // Decay the optimism with evidence instead: mid-run flips are
        // driven by the pulled arm's reward collapsing (fresh bad rewards
        // tank its discounted estimate), not by optimism, so a shrinking
        // alpha still tracks nonstationarity while letting windowed regret
        // actually converge.
        let alpha = decayed_alpha(self.cfg.alpha, self.observations);
        let mut best: Option<(usize, f64)> = None;
        for (i, arm) in arms.iter().enumerate() {
            let x = Self::context_vector(ctx, arm, self.cfg.reward.cost_scale);
            let p = match self.arms.get(&arm.key) {
                Some(state) => state.ucb(&x, alpha),
                // Unseen arm: θ = 0, A = I.
                None => {
                    let norm2: f64 = x.iter().map(|v| v * v).sum();
                    alpha * norm2.sqrt()
                }
            };
            if best.is_none_or(|(_, bp)| p > bp) {
                best = Some((i, p));
            }
        }
        best.map(|(i, _)| i)
    }

    fn observe(&mut self, ctx: &LearnContext, arm: &CandidateArm, reward: &Reward) {
        let x = Self::context_vector(ctx, arm, self.cfg.reward.cost_scale);
        let scalar = self.weights.scalar(&reward.cost);
        let r = self.cfg.reward.composite(scalar, reward);
        self.arms
            .entry(arm.key)
            .or_insert_with(LinArm::new)
            .update(&x, r, self.cfg.gamma);
        self.observations += 1;
    }

    fn observations(&self) -> usize {
        self.observations
    }
}

/// The bandit policy's extended arm space: the five standard candidates
/// plus two knob variants — a region-reducing grid offload (the paper's
/// accuracy/data trade-off) and a denser cluster split — so the bandit
/// selects jointly over placement *and* its scheduling-relevant knobs.
pub fn bandit_candidates(members: usize) -> Vec<SolutionModel> {
    let mut v = SolutionModel::candidates(members);
    v.push(SolutionModel::GridOffload {
        reduction_cell_m: 4.0,
    });
    let heads = pg_sensornet::cluster::default_head_count(members);
    v.push(SolutionModel::InNetworkCluster {
        heads: (heads * 2).max(2),
    });
    v
}

/// Context dimensionality of the tree-mode bandit.
const TREE_DIM: usize = 4;

/// The [`TreeMaintenance`] modes the tree bandit arbitrates between.
pub const TREE_MODES: [TreeMaintenance; 4] = [
    TreeMaintenance::Free,
    TreeMaintenance::PerEpoch,
    TreeMaintenance::Persistent,
    TreeMaintenance::Incremental,
];

/// The joint half of the adaptive loop: a small LinUCB bandit over
/// [`TreeMaintenance`] modes for shared-collection chunks, conditioned on
/// chunk size and live health. Placement is selected per query by
/// [`LinUcbLearner`]; the chunk's tree-lifetime mode is selected here, so
/// `Policy::Bandit` decides *jointly* over placement and tree maintenance.
#[derive(Debug)]
pub struct TreeModeBandit {
    alpha: f64,
    gamma: f64,
    arms: [LinArm<TREE_DIM>; 4],
    seen: [bool; 4],
    /// Chunks observed so far.
    pub observations: usize,
}

impl TreeModeBandit {
    /// A fresh tree-mode bandit sharing the placement bandit's optimism
    /// and discount parameters.
    pub fn new(cfg: &BanditConfig) -> Self {
        TreeModeBandit {
            alpha: cfg.alpha,
            gamma: cfg.gamma,
            arms: [LinArm::new(), LinArm::new(), LinArm::new(), LinArm::new()],
            seen: [false; 4],
            observations: 0,
        }
    }

    fn context(group: usize, health: &NetHealth) -> [f64; TREE_DIM] {
        [
            1.0,
            ((group as f64) + 1.0).ln() / 4.0,
            health.loss_ewma,
            health.overload_level,
        ]
    }

    /// Pick the maintenance mode for a chunk of `group` queries.
    pub fn select(&mut self, group: usize, health: &NetHealth) -> TreeMaintenance {
        let alpha = decayed_alpha(self.alpha, self.observations);
        let x = Self::context(group, health);
        let mut best = 0usize;
        let mut best_p = f64::NEG_INFINITY;
        for (i, arm) in self.arms.iter().enumerate() {
            let p = if self.seen[i] {
                arm.ucb(&x, alpha)
            } else {
                let norm2: f64 = x.iter().map(|v| v * v).sum();
                alpha * norm2.sqrt()
            };
            if p > best_p {
                best_p = p;
                best = i;
            }
        }
        TREE_MODES[best]
    }

    /// Feed back a chunk's per-query attributed scalar cost (data +
    /// control share) for the mode that ran it.
    pub fn observe(
        &mut self,
        mode: TreeMaintenance,
        group: usize,
        health: &NetHealth,
        per_query_scalar_cost: f64,
    ) {
        let idx = TREE_MODES
            .iter()
            .position(|m| *m == mode)
            .unwrap_or_default();
        let x = Self::context(group, health);
        let s = per_query_scalar_cost.max(0.0);
        let r = -(s / (s + 1.0));
        self.arms[idx].update(&x, r, self.gamma);
        self.seen[idx] = true;
        self.observations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feats(members: usize, kind: QueryKind) -> QueryFeatures {
        QueryFeatures {
            kind,
            continuous: false,
            members,
            mean_hops: 2.0,
            network_size: 100,
            epoch_s: 0.0,
        }
    }

    fn ctx(members: usize) -> LearnContext {
        LearnContext {
            features: feats(members, QueryKind::Aggregate),
            health: NetHealth::default(),
            energy_bound: None,
            time_bound: None,
        }
    }

    fn arm(key: usize, scalar: f64) -> CandidateArm {
        let c = CostVector {
            energy_j: scalar * 0.1,
            time_s: 0.0,
            bytes: 0.0,
            ops: 0.0,
        };
        CandidateArm {
            key,
            model: SolutionModel::candidates(20)[key % 5],
            analytic: c,
            predicted: c,
            score: scalar,
        }
    }

    #[test]
    fn composite_reward_is_bounded_and_monotone() {
        let w = RewardWeights::default();
        let cheap = Reward::from_cost(CostVector {
            energy_j: 0.01,
            ..Default::default()
        });
        let dear = Reward::from_cost(CostVector {
            energy_j: 100.0,
            ..Default::default()
        });
        let r_cheap = w.composite(0.1, &cheap);
        let r_dear = w.composite(1000.0, &dear);
        assert!(r_cheap > r_dear, "{r_cheap} vs {r_dear}");
        assert!(r_dear >= -(w.cost + w.loss + w.deadline + w.dead_letter));
        let missed = Reward {
            deadline_missed: true,
            ..cheap
        };
        assert!(w.composite(0.1, &missed) < r_cheap);
    }

    #[test]
    fn unseen_arms_are_each_tried_once() {
        let mut bandit = LinUcbLearner::new(BanditConfig::default(), CostWeights::default(), 0);
        let arms: Vec<CandidateArm> = (0..5).map(|k| arm(k, 1.0 + k as f64)).collect();
        let c = ctx(20);
        let mut seen = Vec::new();
        for _ in 0..5 {
            let i = bandit.select(&c, &arms).unwrap();
            seen.push(arms[i].key);
            bandit.observe(&c, &arms[i], &Reward::from_cost(arms[i].analytic));
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4], "every arm explored once");
    }

    #[test]
    fn bandit_converges_to_the_cheap_arm_under_stationary_rewards() {
        let mut bandit = LinUcbLearner::new(
            BanditConfig {
                alpha: 0.0,
                gamma: 1.0,
                ..BanditConfig::default()
            },
            CostWeights::default(),
            0,
        );
        let arms: Vec<CandidateArm> = vec![arm(0, 8.0), arm(1, 0.5), arm(2, 8.0)];
        let c = ctx(20);
        for _ in 0..40 {
            let i = bandit.select(&c, &arms).unwrap();
            bandit.observe(&c, &arms[i], &Reward::from_cost(arms[i].analytic));
        }
        for _ in 0..10 {
            let i = bandit.select(&c, &arms).unwrap();
            assert_eq!(arms[i].key, 1, "exploitation must lock onto the cheap arm");
            bandit.observe(&c, &arms[i], &Reward::from_cost(arms[i].analytic));
        }
    }

    #[test]
    fn discounted_bandit_tracks_a_reward_flip() {
        // Arm 0 is cheap for 60 rounds, then becomes terrible; arm 1 is
        // steady. The discounted bandit must switch to arm 1.
        let mut bandit = LinUcbLearner::new(
            BanditConfig {
                alpha: 0.4,
                gamma: 0.9,
                ..BanditConfig::default()
            },
            CostWeights::default(),
            0,
        );
        let arms: Vec<CandidateArm> = vec![arm(0, 0.5), arm(1, 2.0)];
        let c = ctx(20);
        let cost_of = |k: usize, t: usize| -> CostVector {
            let scalar = match (k, t < 60) {
                (0, true) => 0.5,
                (0, false) => 50.0,
                _ => 2.0,
            };
            CostVector {
                energy_j: scalar * 0.1,
                ..Default::default()
            }
        };
        let mut late_picks = [0u32; 2];
        for t in 0..160 {
            let i = bandit.select(&c, &arms).unwrap();
            if t >= 120 {
                late_picks[arms[i].key] += 1;
            }
            bandit.observe(&c, &arms[i], &Reward::from_cost(cost_of(arms[i].key, t)));
        }
        assert!(
            late_picks[1] > late_picks[0],
            "bandit must follow the flip: {late_picks:?}"
        );
    }

    #[test]
    fn bandit_selection_is_deterministic() {
        let run = || {
            let mut bandit = LinUcbLearner::new(BanditConfig::default(), CostWeights::default(), 7);
            let arms: Vec<CandidateArm> = (0..7).map(|k| arm(k, 1.0 + (k % 3) as f64)).collect();
            let c = ctx(20);
            (0..50)
                .map(|_| {
                    let i = bandit.select(&c, &arms).unwrap();
                    bandit.observe(&c, &arms[i], &Reward::from_cost(arms[i].analytic));
                    i
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn health_ewma_decays_toward_observations() {
        let mut h = NetHealth::default();
        let degraded = Reward {
            cost: CostVector::default(),
            loss_frac: 1.0,
            deadline_missed: true,
            retries: 5,
            dead_letters: 1,
        };
        for _ in 0..30 {
            h.absorb(&degraded);
        }
        assert!(h.loss_ewma > 0.95);
        assert!(h.miss_ewma > 0.95);
        assert!(h.retry_ewma > 4.5);
        let clean = Reward::from_cost(CostVector::default());
        for _ in 0..30 {
            h.absorb(&clean);
        }
        assert!(h.loss_ewma < 0.05, "EWMA must forget: {}", h.loss_ewma);
    }

    #[test]
    fn extended_candidates_add_knob_arms() {
        let v = bandit_candidates(40);
        assert_eq!(v.len(), 7);
        assert!(matches!(
            v[5],
            SolutionModel::GridOffload {
                reduction_cell_m
            } if reduction_cell_m > 0.0
        ));
        assert!(matches!(v[6], SolutionModel::InNetworkCluster { .. }));
    }

    #[test]
    fn tree_mode_bandit_prefers_the_cheap_mode() {
        let mut tb = TreeModeBandit::new(&BanditConfig {
            alpha: 0.0,
            gamma: 1.0,
            ..BanditConfig::default()
        });
        let h = NetHealth::default();
        // Persistent is cheap, everything else dear.
        let cost_of = |m: TreeMaintenance| {
            if m == TreeMaintenance::Persistent {
                0.2
            } else {
                4.0
            }
        };
        for _ in 0..40 {
            let m = tb.select(8, &h);
            tb.observe(m, 8, &h, cost_of(m));
        }
        assert_eq!(tb.select(8, &h), TreeMaintenance::Persistent);
        assert_eq!(tb.observations, 40);
    }
}
