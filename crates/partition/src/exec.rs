//! Execute a query under a chosen solution model, measuring actual costs.
//!
//! This is §4's "Simulator" component: "The simulator simulates the
//! solution model for the query and returns the results." Every execution
//! returns the measured [`CostVector`] (computation, data transfer, energy,
//! response time) plus result accuracy, which the decision maker compares
//! against its estimates.

use crate::model::{CostVector, SolutionModel};
use pg_grid::pde::{Problem, Solver};
use pg_grid::reduction::{self, Reading};
use pg_grid::sched::{GridCluster, Job};
use pg_net::geom::Point;
use pg_net::topology::NodeId;
use pg_query::ast::Query;
use pg_query::classify::{classify, inner_kind, QueryKind};
use pg_sensornet::aggregate::{AggFn, Partial, ValueFilter, ValueOp, READING_WIRE_BYTES};
use pg_sensornet::cluster::{cluster_collection_filtered, cluster_summaries};
use pg_sensornet::collect::{
    direct_collection_filtered, direct_collection_raw, tree_aggregation_filtered, CollectionReport,
};
use pg_sensornet::field::TemperatureField;
use pg_sensornet::network::SensorNetwork;
use pg_sensornet::region::Region;
use pg_sim::SimTime;
use rand::Rng;
use std::collections::BTreeMap;

/// Sustained FLOP rate of the base station / PDA. A 2003-era handheld
/// (StrongARM/XScale, software floating point) sustains ~10 MFLOPS on
/// double-precision stencil code — the gap that makes §4's "it is simply
/// not feasible" argument for grid offload real.
pub const BASE_FLOPS: f64 = 1e7;
/// Effective FLOP rate of one sensor mote.
pub const SENSOR_FLOPS: f64 = 4e6;
/// Wire size of the final answer returned to the client, bytes.
pub const RESULT_BYTES: u64 = 8;

/// The world a query executes against.
#[derive(Debug)]
pub struct ExecContext<'a> {
    /// The sensor network (mutated: batteries drain).
    pub net: &'a mut SensorNetwork,
    /// The wired grid behind the base station.
    pub grid: &'a GridCluster,
    /// Ground-truth physical field.
    pub field: &'a TemperatureField,
    /// Named regions resolvable from `WHERE region(name)`.
    pub regions: &'a BTreeMap<String, Region>,
    /// Simulated submission instant.
    pub now: SimTime,
}

/// Why an execution could not proceed.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// `WHERE region(name)` names an unregistered region.
    UnknownRegion(String),
    /// `WHERE sensor_id = n` is out of range or is the base station.
    UnknownSensor(u32),
    /// The WHERE clause selects no live sensors.
    NoMembers,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownRegion(r) => write!(f, "unknown region '{r}'"),
            ExecError::UnknownSensor(s) => write!(f, "unknown sensor #{s}"),
            ExecError::NoMembers => write!(f, "query selects no sensors"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Measured outcome of one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// The scalar answer (reading, aggregate, or peak reconstructed
    /// temperature for Complex queries). `None` when nothing arrived.
    pub value: Option<f64>,
    /// Measured costs.
    pub cost: CostVector,
    /// Fraction of requested readings represented in the answer.
    pub delivered_frac: f64,
    /// Relative error vs. ground truth, when measurable.
    pub accuracy_err: Option<f64>,
    /// Link-layer retransmissions the collection spent getting here
    /// (continuous queries report the total across epochs).
    pub retries: u64,
}

/// Resolve the member set of a query.
pub fn members_of(ctx: &ExecContext<'_>, query: &Query) -> Result<Vec<NodeId>, ExecError> {
    let base = ctx.net.base();
    if let Some(id) = query.target_sensor() {
        let node = NodeId(id);
        if id as usize >= ctx.net.len() || node == base {
            return Err(ExecError::UnknownSensor(id));
        }
        return Ok(vec![node]);
    }
    let mut members: Vec<NodeId> = if let Some(rname) = query.region() {
        let region = ctx
            .regions
            .get(rname)
            .ok_or_else(|| ExecError::UnknownRegion(rname.to_string()))?;
        region.members(ctx.net.topology())
    } else {
        ctx.net.topology().nodes().collect()
    };
    members.retain(|&m| m != base);
    if members.is_empty() {
        return Err(ExecError::NoMembers);
    }
    Ok(members)
}

/// Execute `query` once under `model`.
pub fn execute_once<R: Rng>(
    ctx: &mut ExecContext<'_>,
    query: &Query,
    model: SolutionModel,
    rng: &mut R,
) -> Result<Outcome, ExecError> {
    let kind = classify(query);
    match kind {
        QueryKind::Simple => exec_simple(ctx, query, model, rng),
        QueryKind::Aggregate => exec_aggregate(ctx, query, model, rng),
        QueryKind::Complex => exec_complex(ctx, query, model, rng),
        QueryKind::Continuous => exec_continuous(ctx, query, model, rng),
    }
}

/// Build the source-side value filter from the query's WHERE comparisons
/// on the reading attribute (`temp`/`value`). Other attribute names are
/// metadata predicates the membership resolution already handled.
/// The source-side value predicate a query pushes down to the sensing
/// site (TAG-style): WHERE comparisons on the reading itself. Public so
/// the multi-query batch path can reuse the exact single-query semantics.
pub fn value_filter(query: &Query) -> ValueFilter {
    use pg_query::ast::{CmpOp, Pred};
    let mut f = ValueFilter::all();
    for p in &query.wher {
        if let Pred::Cmp(attr, op, bound) = p {
            if attr.eq_ignore_ascii_case("temp") || attr.eq_ignore_ascii_case("value") {
                let op = match op {
                    CmpOp::Eq => ValueOp::Eq,
                    CmpOp::Lt => ValueOp::Lt,
                    CmpOp::Le => ValueOp::Le,
                    CmpOp::Gt => ValueOp::Gt,
                    CmpOp::Ge => ValueOp::Ge,
                };
                f = f.and(op, *bound);
            }
        }
    }
    f
}

fn report_cost(r: &CollectionReport) -> CostVector {
    CostVector {
        energy_j: r.energy_j,
        time_s: r.latency.as_secs_f64(),
        bytes: r.total_bytes as f64,
        ops: r.cpu_ops as f64,
    }
}

/// Ground-truth aggregate over the members, noise-free, honouring the same
/// source-side value filter the execution applied.
pub fn truth_aggregate(
    ctx: &ExecContext<'_>,
    members: &[NodeId],
    agg: AggFn,
    filter: &ValueFilter,
) -> Option<f64> {
    let mut p = Partial::empty();
    for &m in members {
        let v = ctx.net.ground_truth(m, ctx.field, ctx.now);
        if filter.matches(v) {
            p.add(v);
        }
    }
    p.finalize(agg)
}

/// Relative error of a measured value against ground truth, with a unit
/// floor on the denominator so near-zero truths don't explode the metric.
pub fn rel_err(measured: f64, truth: f64) -> f64 {
    (measured - truth).abs() / truth.abs().max(1.0)
}

fn exec_simple<R: Rng>(
    ctx: &mut ExecContext<'_>,
    query: &Query,
    model: SolutionModel,
    rng: &mut R,
) -> Result<Outcome, ExecError> {
    let members = members_of(ctx, query)?;
    // One reading to the base station; the transport is identical for
    // every placement — only GridOffload adds a pointless backhaul bounce.
    let (report, raw) =
        direct_collection_raw(ctx.net, &members, ctx.field, ctx.now, AggFn::Avg, rng);
    let mut cost = report_cost(&report);
    if matches!(
        model,
        SolutionModel::GridOffload { .. } | SolutionModel::Hybrid { .. }
    ) {
        // For a single reading there is nothing to summarize in-network:
        // Hybrid degenerates to grid offload with one record.
        let bh = ctx.grid.backhaul();
        cost.time_s += (bh.tx_time(READING_WIRE_BYTES) + bh.tx_time(RESULT_BYTES)).as_secs_f64();
        cost.bytes += (READING_WIRE_BYTES + RESULT_BYTES) as f64;
    }
    let value = raw.first().map(|&(_, v)| v);
    let accuracy_err =
        value.map(|v| rel_err(v, ctx.net.ground_truth(members[0], ctx.field, ctx.now)));
    Ok(Outcome {
        value,
        cost,
        delivered_frac: report.delivery_ratio(),
        accuracy_err,
        retries: report.retries,
    })
}

fn exec_aggregate<R: Rng>(
    ctx: &mut ExecContext<'_>,
    query: &Query,
    model: SolutionModel,
    rng: &mut R,
) -> Result<Outcome, ExecError> {
    let members = members_of(ctx, query)?;
    let agg = query.first_agg().unwrap_or(AggFn::Avg);
    // WHERE comparisons on the reading push down to the sensing site
    // (TAG-style): failing readings never transmit.
    let filter = value_filter(query);
    let report = match model {
        SolutionModel::InNetworkTree => {
            tree_aggregation_filtered(ctx.net, &members, ctx.field, ctx.now, agg, &filter, rng)
        }
        // For decomposable aggregates the Hybrid's in-network half already
        // produces the answer: it IS cluster collection.
        SolutionModel::InNetworkCluster { heads } | SolutionModel::Hybrid { heads } => {
            cluster_collection_filtered(
                ctx.net, &members, ctx.field, ctx.now, agg, heads, &filter, rng,
            )
        }
        SolutionModel::BaseStation | SolutionModel::GridOffload { .. } => {
            direct_collection_filtered(ctx.net, &members, ctx.field, ctx.now, agg, &filter, rng).0
        }
    };
    let mut cost = report_cost(&report);
    if let SolutionModel::GridOffload { .. } = model {
        // Ship the delivered readings up the backhaul, aggregate there,
        // return the scalar. (Pointless for aggregates — the experiment
        // shows exactly that.)
        let ship = report.delivered as u64 * READING_WIRE_BYTES;
        let job = Job {
            name: "aggregate".into(),
            ops: report.delivered as u64 * 20,
            input_bytes: ship,
            output_bytes: RESULT_BYTES,
        };
        cost.time_s += ctx
            .grid
            .single_job_time_at(&job, ctx.now)
            .map_or(0.0, |d| d.as_secs_f64());
        cost.bytes += (ship + RESULT_BYTES) as f64;
        cost.ops += job.ops as f64;
    }
    let truth = truth_aggregate(ctx, &members, agg, &filter);
    let accuracy_err = match (report.value, truth) {
        (Some(v), Some(t)) => Some(rel_err(v, t)),
        _ => None,
    };
    Ok(Outcome {
        value: report.value,
        cost,
        delivered_frac: report.delivery_ratio(),
        accuracy_err,
        retries: report.retries,
    })
}

/// Grid resolution for the reconstruction problem: 1-metre cells up to 40
/// per axis, with the spacing stretched beyond that so the box always
/// covers the whole region (truncating the region would park hot sensors on
/// the fixed ambient boundary and wreck the reconstruction). Computation
/// therefore grows with region size until the 40-cell cap, then plateaus —
/// the knob behind the T8 base-vs-grid crossover.
fn problem_dims(extent: (f64, f64, f64)) -> (usize, usize, usize, f64) {
    const MAX_CELLS: f64 = 39.0;
    let max_ext = extent.0.max(extent.1).max(extent.2).max(1.0);
    let spacing = (max_ext / MAX_CELLS).max(1.0);
    let dim = |e: f64| (((e / spacing).ceil() as usize) + 1).clamp(3, MAX_CELLS as usize + 1);
    (
        dim(extent.0),
        dim(extent.1),
        dim(extent.2.max(1.0)),
        spacing,
    )
}

fn exec_complex<R: Rng>(
    ctx: &mut ExecContext<'_>,
    query: &Query,
    model: SolutionModel,
    rng: &mut R,
) -> Result<Outcome, ExecError> {
    let members = members_of(ctx, query)?;
    // The reconstruction region: the named region, else the hull of the
    // whole deployment.
    let region = if let Some(rname) = query.region() {
        *ctx.regions
            .get(rname)
            .ok_or_else(|| ExecError::UnknownRegion(rname.to_string()))?
    } else {
        deployment_hull(ctx.net)
    };

    // Collection phase. The solver needs (position, value) pairs, so
    // aggregation trees (which lose identity) cannot carry the data:
    // most placements start with a direct raw collection. The Hybrid
    // placement instead reduces in-network — cluster heads ship one
    // (centroid, mean) summary each — §4's "combination of the approaches".
    let (report, readings): (_, Vec<Reading>) = if let SolutionModel::Hybrid { heads } = model {
        let (report, summaries) =
            cluster_summaries(ctx.net, &members, ctx.field, ctx.now, heads, rng);
        (report, summaries)
    } else {
        let (report, raw) =
            direct_collection_raw(ctx.net, &members, ctx.field, ctx.now, AggFn::Avg, rng);
        let readings = raw
            .iter()
            .map(|&(n, v)| (ctx.net.topology().position(n), v))
            .collect();
        (report, readings)
    };
    let mut cost = report_cost(&report);

    // Build the PDE problem. The box boundary is pinned at the mean of the
    // delivered readings rather than building ambient: a room interior to a
    // burning building has hot "walls", and the mean reading is the best
    // boundary guess the compute site actually possesses.
    let (ext_x, ext_y, ext_z) = region_extent(&region, ctx.net);
    let (nx, ny, nz, spacing) = problem_dims((ext_x, ext_y, ext_z));
    let mut origin = region_origin(&region, ctx.net);
    if ext_z < spacing {
        // Flat deployment: lift sensors onto the middle z-plane so their
        // constraints land in the interior, not on the fixed shell.
        origin.z -= spacing;
    }
    let ambient = ctx.field.ambient;
    let build_problem = |constraints: &[Reading]| {
        let boundary = if constraints.is_empty() {
            ambient
        } else {
            constraints.iter().map(|r| r.1).sum::<f64>() / constraints.len() as f64
        };
        let mut p = Problem::new(nx, ny, nz, origin, spacing, boundary);
        for (pos, v) in constraints {
            p.add_constraint(pos, *v);
        }
        p
    };

    let (field3, stats, shipped_bytes) = match model {
        SolutionModel::Hybrid { .. } => {
            // The summaries are already reduced; ship them and solve on
            // the grid.
            let p = build_problem(&readings);
            let (f, stats) = p.solve(Solver::ConjugateGradient, 1e-4, 4_000);
            let ship = reduction::wire_bytes(readings.len());
            let job = Job {
                name: "pde-solve".into(),
                ops: stats.ops,
                input_bytes: ship,
                output_bytes: RESULT_BYTES,
            };
            cost.time_s += ctx
                .grid
                .single_job_time_at(&job, ctx.now)
                .map_or(0.0, |d| d.as_secs_f64());
            (f, stats, ship)
        }
        SolutionModel::GridOffload { reduction_cell_m } => {
            let reduced = reduction::reduce_readings(&readings, reduction_cell_m);
            let p = build_problem(&reduced);
            let (f, stats) = p.solve(Solver::ConjugateGradient, 1e-4, 4_000);
            let ship = reduction::wire_bytes(reduced.len());
            let job = Job {
                name: "pde-solve".into(),
                ops: stats.ops,
                input_bytes: ship,
                output_bytes: RESULT_BYTES,
            };
            cost.time_s += ctx
                .grid
                .single_job_time_at(&job, ctx.now)
                .map_or(0.0, |d| d.as_secs_f64());
            (f, stats, ship)
        }
        SolutionModel::BaseStation => {
            let p = build_problem(&readings);
            let (f, stats) = p.solve(Solver::ConjugateGradient, 1e-4, 4_000);
            cost.time_s += stats.ops as f64 / BASE_FLOPS;
            (f, stats, 0)
        }
        SolutionModel::InNetworkTree | SolutionModel::InNetworkCluster { .. } => {
            // Distributed in-network solve: one Jacobi sweep per radio
            // round, every member exchanging one value with each
            // neighbour per sweep — §4's "simply not feasible" placement,
            // priced honestly rather than forbidden.
            let p = build_problem(&readings);
            let (f, stats) = p.solve(Solver::ConjugateGradient, 1e-4, 4_000);
            // Approximate Jacobi sweep count for the same residual: CG
            // iterations squared is the classic gap; cap for sanity.
            let sweeps = ((stats.iterations as u64).pow(2)).clamp(100, 20_000);
            let slot = ctx.net.link().expected_tx_time(READING_WIRE_BYTES);
            let per_sweep_bytes = members.len() as u64 * READING_WIRE_BYTES * 4; // ~4 neighbours
            let radio = *ctx.net.radio();
            let range = ctx.net.topology().range();
            let exchange_energy = sweeps as f64
                * members.len() as f64
                * (radio.tx_energy(READING_WIRE_BYTES * 8, range)
                    + 4.0 * radio.rx_energy(READING_WIRE_BYTES * 8));
            let compute_energy = radio.cpu_energy((stats.ops / members.len().max(1) as u64).max(1));
            // Drain the network proportionally (spread over members).
            let per_member = (exchange_energy + compute_energy) / members.len() as f64;
            for &m in &members {
                ctx.net.drain(m, per_member);
            }
            cost.energy_j += exchange_energy + compute_energy;
            cost.time_s += sweeps as f64 * slot.as_secs_f64()
                + stats.ops as f64 / (SENSOR_FLOPS * members.len() as f64);
            cost.bytes += (sweeps * per_sweep_bytes) as f64;
            (f, stats, 0)
        }
    };
    cost.ops += stats.ops as f64;
    cost.bytes += shipped_bytes as f64 + RESULT_BYTES as f64;

    // Accuracy: RMSE of the reconstruction against the analytic field over
    // the *interior* cells (the fixed shell holds assumed wall values, not
    // reconstructions), relative to the field's dynamic range in the box.
    let mut truth_min = f64::INFINITY;
    let mut truth_max = f64::NEG_INFINITY;
    let mut sq_sum = 0.0;
    let mut count = 0usize;
    let probe = Problem::new(nx, ny, nz, origin, spacing, ctx.field.ambient);
    for z in 1..nz - 1 {
        for y in 1..ny - 1 {
            for x in 1..nx - 1 {
                let pos = probe.position_of(x, y, z);
                let truth = ctx.field.temperature(&pos, ctx.now);
                truth_min = truth_min.min(truth);
                truth_max = truth_max.max(truth);
                let got = field3.get(x, y, z);
                sq_sum += (got - truth) * (got - truth);
                count += 1;
            }
        }
    }
    let rmse = (sq_sum / count as f64).sqrt();
    let range = (truth_max - truth_min).max(1.0);
    let peak = field3
        .raw()
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);

    Ok(Outcome {
        value: Some(peak),
        cost,
        delivered_frac: report.delivery_ratio(),
        accuracy_err: Some(rmse / range),
        retries: report.retries,
    })
}

// Only called from `execute_once` behind a `query.epoch.is_some()` check.
#[allow(clippy::expect_used)]
fn exec_continuous<R: Rng>(
    ctx: &mut ExecContext<'_>,
    query: &Query,
    model: SolutionModel,
    rng: &mut R,
) -> Result<Outcome, ExecError> {
    let epoch = query.epoch.expect("continuous queries carry an epoch");
    // Execute a handful of epochs and report per-epoch mean cost — the
    // decision maker optimizes steady-state drain for continuous queries.
    const EPOCHS: usize = 5;
    let mut inner = query.clone();
    inner.epoch = None;
    debug_assert_ne!(classify(&inner), QueryKind::Continuous);
    debug_assert_eq!(classify(&inner), inner_kind(query));

    let mut total = CostVector::default();
    let mut last = None;
    let mut delivered = 0.0;
    let mut acc = None;
    let mut retries = 0u64;
    let start = ctx.now;
    for e in 0..EPOCHS {
        ctx.now = start + epoch.mul(e as u64);
        let out = execute_once(ctx, &inner, model, rng)?;
        total = total.add(&out.cost);
        last = out.value;
        delivered += out.delivered_frac;
        acc = out.accuracy_err;
        retries += out.retries;
        // Idle listening between results.
        let idle = ctx.net.radio().idle_energy(epoch.as_secs_f64());
        let base = ctx.net.base();
        let nodes: Vec<NodeId> = ctx.net.topology().nodes().collect();
        for n in nodes {
            if n != base && ctx.net.is_alive(n) {
                ctx.net.drain(n, idle);
            }
        }
        total.energy_j += idle * (ctx.net.len() - 1) as f64;
    }
    ctx.now = start;
    Ok(Outcome {
        value: last,
        cost: total.scale(1.0 / EPOCHS as f64),
        delivered_frac: delivered / EPOCHS as f64,
        accuracy_err: acc,
        retries,
    })
}

/// Bounding box of the whole deployment.
fn deployment_hull(net: &SensorNetwork) -> Region {
    let mut min = Point::new(f64::INFINITY, f64::INFINITY, f64::INFINITY);
    let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
    for n in net.topology().nodes() {
        let p = net.topology().position(n);
        min.x = min.x.min(p.x);
        min.y = min.y.min(p.y);
        min.z = min.z.min(p.z);
        max.x = max.x.max(p.x);
        max.y = max.y.max(p.y);
        max.z = max.z.max(p.z);
    }
    Region { min, max }
}

fn region_extent(region: &Region, net: &SensorNetwork) -> (f64, f64, f64) {
    let r = clamp_region(region, net);
    r.extent()
}

fn region_origin(region: &Region, net: &SensorNetwork) -> Point {
    clamp_region(region, net).min
}

/// Clamp an (possibly half-infinite) region to the deployment hull.
fn clamp_region(region: &Region, net: &SensorNetwork) -> Region {
    let hull = deployment_hull(net);
    // Built as a literal: a region disjoint from the hull clamps to an
    // inverted (empty) box, which `contains` correctly rejects everywhere.
    Region {
        min: Point::new(
            region.min.x.max(hull.min.x),
            region.min.y.max(hull.min.y),
            region.min.z.max(hull.min.z),
        ),
        max: Point::new(
            region.max.x.min(hull.max.x),
            region.max.y.min(hull.max.y),
            region.max.z.min(hull.max.z),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_net::energy::RadioModel;
    use pg_net::link::LinkModel;
    use pg_net::topology::Topology;
    use pg_query::parse;
    use pg_sim::Duration;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> (
        SensorNetwork,
        GridCluster,
        TemperatureField,
        BTreeMap<String, Region>,
    ) {
        let topo = Topology::grid(6, 6, 10.0, 11.0);
        let mut net = SensorNetwork::new(
            topo,
            NodeId(0),
            RadioModel::mote(),
            LinkModel::new(250e3, Duration::from_millis(5), 0.0).unwrap(),
            100.0,
        );
        net.noise_sd = 0.0;
        let grid = GridCluster::campus();
        let field = TemperatureField::building_fire(Point::flat(25.0, 25.0), SimTime::ZERO, 300.0);
        let mut regions = BTreeMap::new();
        regions.insert("room210".to_string(), Region::room(0.0, 0.0, 30.0, 30.0));
        (net, grid, field, regions)
    }

    fn ctx<'a>(
        net: &'a mut SensorNetwork,
        grid: &'a GridCluster,
        field: &'a TemperatureField,
        regions: &'a BTreeMap<String, Region>,
    ) -> ExecContext<'a> {
        ExecContext {
            net,
            grid,
            field,
            regions,
            now: SimTime::from_secs(600),
        }
    }

    #[test]
    fn simple_query_returns_the_sensor_reading() {
        let (mut net, grid, field, regions) = world();
        let mut c = ctx(&mut net, &grid, &field, &regions);
        let q = parse("SELECT temp FROM sensors WHERE sensor_id = 14").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let out = execute_once(&mut c, &q, SolutionModel::BaseStation, &mut rng).unwrap();
        let expect = c
            .net
            .ground_truth(NodeId(14), &field, SimTime::from_secs(600));
        assert_eq!(out.value, Some(expect));
        assert_eq!(out.delivered_frac, 1.0);
        assert!(out.cost.energy_j > 0.0 && out.cost.time_s > 0.0);
    }

    #[test]
    fn simple_query_grid_offload_just_adds_latency() {
        let (mut net, grid, field, regions) = world();
        let q = parse("SELECT temp FROM sensors WHERE sensor_id = 14").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let base = {
            let mut c = ctx(&mut net, &grid, &field, &regions);
            execute_once(&mut c, &q, SolutionModel::BaseStation, &mut rng).unwrap()
        };
        let (mut net2, grid2, field2, regions2) = world();
        let mut rng2 = StdRng::seed_from_u64(1);
        let offl = {
            let mut c = ctx(&mut net2, &grid2, &field2, &regions2);
            execute_once(
                &mut c,
                &q,
                SolutionModel::GridOffload {
                    reduction_cell_m: 0.0,
                },
                &mut rng2,
            )
            .unwrap()
        };
        assert!(offl.cost.time_s > base.cost.time_s);
        assert_eq!(offl.value, base.value);
    }

    #[test]
    fn aggregate_models_agree_on_value_but_differ_in_cost() {
        let q = parse("SELECT AVG(temp) FROM sensors WHERE region(room210)").unwrap();
        let mut outcomes = Vec::new();
        for model in [
            SolutionModel::InNetworkTree,
            SolutionModel::InNetworkCluster { heads: 2 },
            SolutionModel::BaseStation,
            SolutionModel::GridOffload {
                reduction_cell_m: 0.0,
            },
        ] {
            let (mut net, grid, field, regions) = world();
            let mut c = ctx(&mut net, &grid, &field, &regions);
            let mut rng = StdRng::seed_from_u64(9);
            outcomes.push(execute_once(&mut c, &q, model, &mut rng).unwrap());
        }
        let v0 = outcomes[0].value.unwrap();
        for o in &outcomes {
            assert!((o.value.unwrap() - v0).abs() < 1e-9, "values must agree");
            assert!(o.accuracy_err.unwrap() < 1e-9, "noise-free => exact");
        }
        // Grid offload strictly slower than base station for an aggregate.
        assert!(outcomes[3].cost.time_s > outcomes[2].cost.time_s);
    }

    #[test]
    fn tree_ships_fewer_bytes_at_network_scale() {
        // Network-wide aggregate: past the partial-vs-reading crossover
        // (a small room query sits below it — that is experiment T2).
        let q = parse("SELECT AVG(temp) FROM sensors").unwrap();
        let run = |model| {
            let (mut net, grid, field, regions) = world();
            let mut c = ctx(&mut net, &grid, &field, &regions);
            let mut rng = StdRng::seed_from_u64(9);
            execute_once(&mut c, &q, model, &mut rng).unwrap()
        };
        let tree = run(SolutionModel::InNetworkTree);
        let direct = run(SolutionModel::BaseStation);
        assert!(
            tree.cost.bytes < direct.cost.bytes,
            "{} !< {}",
            tree.cost.bytes,
            direct.cost.bytes
        );
        assert!(tree.cost.energy_j < direct.cost.energy_j);
    }

    #[test]
    fn complex_query_reconstructs_the_hot_spot() {
        let (mut net, grid, field, regions) = world();
        let mut c = ctx(&mut net, &grid, &field, &regions);
        let q =
            parse("SELECT temperature_distribution() FROM sensors WHERE region(room210)").unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let out = execute_once(
            &mut c,
            &q,
            SolutionModel::GridOffload {
                reduction_cell_m: 0.0,
            },
            &mut rng,
        )
        .unwrap();
        let peak = out.value.unwrap();
        assert!(peak > 100.0, "reconstruction must see the fire: {peak}");
        let err = out.accuracy_err.unwrap();
        assert!(err < 0.5, "relative RMSE should be sane: {err}");
        assert!(out.cost.ops > 1e4, "a PDE solve is real work");
    }

    #[test]
    fn complex_in_network_is_feasible_but_prohibitive() {
        let q =
            parse("SELECT temperature_distribution() FROM sensors WHERE region(room210)").unwrap();
        let run = |model| {
            let (mut net, grid, field, regions) = world();
            let mut c = ctx(&mut net, &grid, &field, &regions);
            let mut rng = StdRng::seed_from_u64(4);
            execute_once(&mut c, &q, model, &mut rng).unwrap()
        };
        let grid_out = run(SolutionModel::GridOffload {
            reduction_cell_m: 0.0,
        });
        let innet = run(SolutionModel::InNetworkTree);
        assert!(
            innet.cost.energy_j > 10.0 * grid_out.cost.energy_j,
            "in-network solve should drain far more energy: {} vs {}",
            innet.cost.energy_j,
            grid_out.cost.energy_j
        );
        assert!(innet.cost.time_s > grid_out.cost.time_s);
    }

    #[test]
    fn reduction_trades_accuracy_for_bytes() {
        let q = parse("SELECT temperature_distribution() FROM sensors").unwrap();
        let run = |cell| {
            let (mut net, grid, field, regions) = world();
            let mut c = ctx(&mut net, &grid, &field, &regions);
            let mut rng = StdRng::seed_from_u64(5);
            execute_once(
                &mut c,
                &q,
                SolutionModel::GridOffload {
                    reduction_cell_m: cell,
                },
                &mut rng,
            )
            .unwrap()
        };
        let full = run(0.0);
        let reduced = run(25.0);
        assert!(reduced.cost.bytes < full.cost.bytes);
        assert!(
            reduced.accuracy_err.unwrap() >= full.accuracy_err.unwrap(),
            "coarser data cannot be more accurate: {} vs {}",
            reduced.accuracy_err.unwrap(),
            full.accuracy_err.unwrap()
        );
    }

    #[test]
    fn hybrid_ships_fewest_backhaul_bytes_for_complex() {
        let q = parse("SELECT temperature_distribution() FROM sensors").unwrap();
        let run = |model| {
            let (mut net, grid, field, regions) = world();
            let mut c = ctx(&mut net, &grid, &field, &regions);
            let mut rng = StdRng::seed_from_u64(8);
            execute_once(&mut c, &q, model, &mut rng).unwrap()
        };
        let grid_out = run(SolutionModel::GridOffload {
            reduction_cell_m: 0.0,
        });
        let hybrid = run(SolutionModel::Hybrid { heads: 4 });
        // Hybrid moves far fewer bytes overall: members reach heads in one
        // hop and only 4 summaries travel onward.
        assert!(
            hybrid.cost.bytes < grid_out.cost.bytes,
            "{} !< {}",
            hybrid.cost.bytes,
            grid_out.cost.bytes
        );
        // The reconstruction still sees the fire and stays in the same
        // accuracy regime. (It is NOT necessarily worse than raw readings:
        // cluster centroids average out sensor noise, and on this world the
        // 4-summary reconstruction slightly beats the 35-point one.)
        assert!(hybrid.value.unwrap() > 100.0);
        assert!(hybrid.accuracy_err.unwrap() < 0.6);
        let _ = grid_out.accuracy_err;
    }

    #[test]
    fn hybrid_equals_cluster_for_aggregates() {
        let q = parse("SELECT AVG(temp) FROM sensors").unwrap();
        let run = |model| {
            let (mut net, grid, field, regions) = world();
            let mut c = ctx(&mut net, &grid, &field, &regions);
            let mut rng = StdRng::seed_from_u64(9);
            execute_once(&mut c, &q, model, &mut rng).unwrap()
        };
        let cluster = run(SolutionModel::InNetworkCluster { heads: 3 });
        let hybrid = run(SolutionModel::Hybrid { heads: 3 });
        assert_eq!(cluster.value, hybrid.value);
        assert!((cluster.cost.energy_j - hybrid.cost.energy_j).abs() < 1e-12);
    }

    #[test]
    fn continuous_reports_per_epoch_cost() {
        let (mut net, grid, field, regions) = world();
        let q_once = parse("SELECT AVG(temp) FROM sensors WHERE region(room210)").unwrap();
        let q_cont =
            parse("SELECT AVG(temp) FROM sensors WHERE region(room210) EPOCH DURATION 10").unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let once = {
            let mut c = ctx(&mut net, &grid, &field, &regions);
            execute_once(&mut c, &q_once, SolutionModel::InNetworkTree, &mut rng).unwrap()
        };
        let (mut net2, grid2, field2, regions2) = world();
        let mut rng2 = StdRng::seed_from_u64(6);
        let cont = {
            let mut c = ctx(&mut net2, &grid2, &field2, &regions2);
            execute_once(&mut c, &q_cont, SolutionModel::InNetworkTree, &mut rng2).unwrap()
        };
        // Per-epoch cost ≈ one-shot cost + idle share.
        assert!(cont.cost.energy_j > once.cost.energy_j);
        assert!(cont.cost.energy_j < 10.0 * once.cost.energy_j + 1.0);
        assert!(cont.value.is_some());
    }

    #[test]
    fn value_predicates_push_down_to_the_source() {
        // The fire at (25,25) at t=600 puts sensors between ~180 and
        // ~320 C: "WHERE temp > 250" selects only the core, and the cooler
        // sensors must not transmit (fewer bytes than unfiltered).
        let hot = parse("SELECT AVG(temp) FROM sensors WHERE temp > 250").unwrap();
        let all = parse("SELECT AVG(temp) FROM sensors").unwrap();
        let run = |q: &pg_query::ast::Query, model| {
            let (mut net, grid, field, regions) = world();
            net.noise_sd = 0.0;
            let mut c = ctx(&mut net, &grid, &field, &regions);
            let mut rng = StdRng::seed_from_u64(11);
            execute_once(&mut c, q, model, &mut rng).unwrap()
        };
        for model in [SolutionModel::BaseStation, SolutionModel::InNetworkTree] {
            let filtered = run(&hot, model);
            let unfiltered = run(&all, model);
            let vf = filtered.value.unwrap();
            let vu = unfiltered.value.unwrap();
            assert!(vf > 250.0, "filtered average must exceed the bound: {vf}");
            assert!(vf > vu, "hot-only average beats overall: {vf} vs {vu}");
            assert!(
                filtered.cost.bytes < unfiltered.cost.bytes,
                "{}: push-down must save bytes: {} vs {}",
                model.name(),
                filtered.cost.bytes,
                unfiltered.cost.bytes
            );
            // Accuracy is judged against the *filtered* ground truth.
            assert!(filtered.accuracy_err.unwrap() < 1e-9);
        }
    }

    #[test]
    fn errors_for_bad_targets() {
        let (mut net, grid, field, regions) = world();
        let mut c = ctx(&mut net, &grid, &field, &regions);
        let mut rng = StdRng::seed_from_u64(7);
        let q = parse("SELECT temp FROM sensors WHERE sensor_id = 999").unwrap();
        assert_eq!(
            execute_once(&mut c, &q, SolutionModel::BaseStation, &mut rng),
            Err(ExecError::UnknownSensor(999))
        );
        let q = parse("SELECT temp FROM sensors WHERE region(nowhere)").unwrap();
        assert!(matches!(
            execute_once(&mut c, &q, SolutionModel::BaseStation, &mut rng),
            Err(ExecError::UnknownRegion(_))
        ));
    }
}
