//! The Decision Maker.
//!
//! §4: "Decision maker would decide the solution model to use based on type
//! of query, historic data and known features of the network at hand. …
//! The system will be made adaptive by comparing the estimates of energy
//! consumption and response time with the actual values … during the
//! execution of the query and the results would be incorporated into the
//! learning technique."
//!
//! [`Policy::Adaptive`] predicts each candidate's cost from k-NN history
//! (falling back to the analytic estimator while history is thin), applies
//! the query's COST bounds as a hard filter, picks the cheapest under the
//! scalarization weights, and explores ε-greedily. [`Policy::Bandit`]
//! replaces the case memory with a contextual LinUCB learner over an
//! extended arm space, steering by the composite outcome reward (cost +
//! observed degradation) and the live health context — see [`crate::learn`].
//! Static policies and a clairvoyant [`oracle_choice`] bound both from
//! below and above.
//!
//! Construction goes through [`DecisionConfig::builder`] (mirroring
//! `RuntimeConfig::builder()`); [`DecisionMaker::new`] is the thin
//! defaults shim, pinned bit-identical to `with_config(…, default)` by a
//! proptest below.

use crate::estimate::estimate;
use crate::exec::{execute_once, ExecContext};
use crate::features::QueryFeatures;
use crate::knn::KnnRegressor;
use crate::learn::{
    bandit_candidates, BanditConfig, CandidateArm, KnnLearner, LearnContext, Learner,
    LinUcbLearner, NetHealth, Reward, RewardWeights, TreeModeBandit,
};
use crate::model::{within_bounds, CostVector, CostWeights, SolutionModel};
use pg_grid::sched::GridCluster;
use pg_query::ast::Query;
use pg_sensornet::field::TemperatureField;
use pg_sensornet::network::SensorNetwork;
use pg_sensornet::region::Region;
use pg_sensornet::shared::TreeMaintenance;
use pg_sim::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Strategy-selection policies for experiment T3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Always the given placement (the static baselines).
    Static(SolutionModel),
    /// Uniform-random placement (the floor).
    Random,
    /// k-NN history + analytic fallback + ε-greedy exploration.
    Adaptive,
    /// Contextual LinUCB bandit over the extended arm space, learning from
    /// the composite outcome reward (T22).
    Bandit,
}

/// Why no model could be chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoFeasibleModel;

/// Immutable configuration of a [`DecisionMaker`], built via
/// [`DecisionConfig::builder`].
#[derive(Debug, Clone, Copy)]
pub struct DecisionConfig {
    weights: CostWeights,
    epsilon: f64,
    blend: bool,
    safe_explore: bool,
    knn_k: usize,
    calibration_cap: usize,
    reward: RewardWeights,
    bandit: BanditConfig,
}

impl Default for DecisionConfig {
    fn default() -> Self {
        DecisionConfig {
            weights: CostWeights::default(),
            epsilon: 0.1,
            blend: true,
            safe_explore: true,
            knn_k: 5,
            calibration_cap: 1024,
            reward: RewardWeights::default(),
            bandit: BanditConfig::default(),
        }
    }
}

impl DecisionConfig {
    /// Start a chainable builder from the defaults.
    pub fn builder() -> DecisionConfigBuilder {
        DecisionConfigBuilder {
            cfg: DecisionConfig::default(),
        }
    }

    /// Scalarization weights in force.
    pub fn weights(&self) -> CostWeights {
        self.weights
    }

    /// ε-greedy exploration rate of the adaptive (k-NN) policy.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Distance-blend k-NN predictions with the analytic estimate?
    pub fn blend(&self) -> bool {
        self.blend
    }

    /// Restrict ε-exploration to candidates within 5× of the best?
    pub fn safe_explore(&self) -> bool {
        self.safe_explore
    }

    /// k-NN neighbourhood size.
    pub fn knn_k(&self) -> usize {
        self.knn_k
    }

    /// Capacity of the calibration ring.
    pub fn calibration_cap(&self) -> usize {
        self.calibration_cap
    }

    /// Composite-reward blend for the bandit.
    pub fn reward(&self) -> RewardWeights {
        self.reward
    }

    /// Bandit hyper-parameters.
    pub fn bandit(&self) -> BanditConfig {
        self.bandit
    }
}

/// Chainable constructor for [`DecisionConfig`], mirroring
/// `RuntimeConfig::builder()`.
#[derive(Debug, Clone)]
pub struct DecisionConfigBuilder {
    cfg: DecisionConfig,
}

impl DecisionConfigBuilder {
    /// Scalarization weights for comparing cost vectors.
    pub fn weights(mut self, weights: CostWeights) -> Self {
        self.cfg.weights = weights;
        self
    }

    /// ε-greedy exploration rate for the adaptive (k-NN) policy.
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.cfg.epsilon = epsilon;
        self
    }

    /// Blend k-NN predictions with the analytic estimate by neighbour
    /// distance (ablation A1 switches this off: pure k-NN once any history
    /// exists).
    pub fn blend(mut self, blend: bool) -> Self {
        self.cfg.blend = blend;
        self
    }

    /// Restrict exploration to candidates predicted within 5× of the best
    /// (ablation A1 switches this off: uniform ε-greedy).
    pub fn safe_explore(mut self, safe: bool) -> Self {
        self.cfg.safe_explore = safe;
        self
    }

    /// k-NN neighbourhood size.
    pub fn knn_k(mut self, k: usize) -> Self {
        self.cfg.knn_k = k.max(1);
        self
    }

    /// Capacity of the `(predicted, actual)` calibration ring — long
    /// streaming runs keep a bounded window instead of growing per query.
    pub fn calibration_cap(mut self, cap: usize) -> Self {
        self.cfg.calibration_cap = cap.max(1);
        self
    }

    /// Composite-reward blend for the bandit policy.
    pub fn reward(mut self, reward: RewardWeights) -> Self {
        self.cfg.reward = reward;
        self
    }

    /// Bandit hyper-parameters (α optimism, γ discount).
    pub fn bandit(mut self, bandit: BanditConfig) -> Self {
        self.cfg.bandit = bandit;
        self
    }

    /// Finish the configuration.
    pub fn build(self) -> DecisionConfig {
        self.cfg
    }
}

/// Fixed-capacity ring of `(predicted, actual)` scalar-cost pairs.
#[derive(Debug, Clone)]
struct CalibrationRing {
    buf: Vec<(f64, f64)>,
    head: usize,
    cap: usize,
}

impl CalibrationRing {
    fn new(cap: usize) -> Self {
        CalibrationRing {
            buf: Vec::new(),
            head: 0,
            cap: cap.max(1),
        }
    }

    fn push(&mut self, v: (f64, f64)) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.head] = v;
            self.head = (self.head + 1) % self.cap;
        }
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    /// Entries most-recent-first.
    fn iter_recent(&self) -> impl Iterator<Item = &(f64, f64)> {
        let n = self.buf.len();
        (0..n).map(move |i| {
            // head is the *oldest* entry once the ring is full; newest is
            // head-1. While filling, newest is the last element.
            let idx = (self.head + n - 1 - i) % n.max(1);
            &self.buf[idx]
        })
    }
}

/// The adaptive decision maker: policy + learner + health telemetry.
///
/// All former loose public fields (`knn`, `weights`, `epsilon`, `blend`,
/// `safe_explore`, `calibration`) are now configured through
/// [`DecisionConfig::builder`] and read through accessors; the learning
/// state lives behind the [`Learner`] trait.
#[derive(Debug)]
pub struct DecisionMaker {
    cfg: DecisionConfig,
    policy: Policy,
    learner: Box<dyn Learner>,
    /// Joint tree-maintenance bandit, present under [`Policy::Bandit`].
    tree_bandit: Option<TreeModeBandit>,
    rng: StdRng,
    calibration: CalibrationRing,
    health: NetHealth,
}

impl DecisionMaker {
    /// A decision maker with the given policy, RNG seed, and the default
    /// configuration — the thin back-compat shim over
    /// [`DecisionMaker::with_config`], bit-identical to the pre-builder
    /// defaults (pinned by proptest).
    pub fn new(policy: Policy, seed: u64) -> Self {
        Self::with_config(policy, seed, DecisionConfig::default())
    }

    /// A decision maker with an explicit configuration.
    pub fn with_config(policy: Policy, seed: u64, cfg: DecisionConfig) -> Self {
        let learner: Box<dyn Learner> = match policy {
            Policy::Bandit => Box::new(LinUcbLearner::new(cfg.bandit, cfg.weights, seed)),
            _ => Box::new(KnnLearner::new(
                cfg.knn_k,
                cfg.epsilon,
                cfg.blend,
                cfg.safe_explore,
                seed,
            )),
        };
        DecisionMaker {
            cfg,
            policy,
            learner,
            tree_bandit: matches!(policy, Policy::Bandit).then(|| TreeModeBandit::new(&cfg.bandit)),
            rng: StdRng::seed_from_u64(seed),
            calibration: CalibrationRing::new(cfg.calibration_cap),
            health: NetHealth::default(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// The configuration in force.
    pub fn config(&self) -> &DecisionConfig {
        &self.cfg
    }

    /// The learner behind the policy.
    pub fn learner(&self) -> &dyn Learner {
        self.learner.as_ref()
    }

    /// Number of outcomes the learner has absorbed.
    pub fn history_len(&self) -> usize {
        self.learner.observations()
    }

    /// The k-NN case memory, when the active learner keeps one.
    pub fn knn(&self) -> Option<&KnnRegressor> {
        self.learner.knn()
    }

    /// Live health telemetry (EWMAs of observed degradation + scheduler
    /// pressure).
    pub fn health(&self) -> NetHealth {
        self.health
    }

    /// Publish the scheduler's queue pressure: waiting-queue depth and
    /// overload level (0 normal, 0.5 brownout, 1 shed). Context for the
    /// bandit; a no-op for every other policy's choices.
    pub fn note_pressure(&mut self, queue_depth: usize, overload_level: f64) {
        self.health.set_pressure(queue_depth, overload_level);
    }

    /// Attribute agent-bus dead letters observed since the last query to
    /// the health tracker (they feed the composite reward's EWMA context).
    pub fn note_dead_letters(&mut self, count: u64) {
        let r = Reward {
            cost: CostVector::default(),
            loss_frac: 0.0,
            deadline_missed: false,
            retries: 0,
            dead_letters: count,
        };
        self.health.absorb(&r);
    }

    /// Predicted cost of one candidate, by the active learner: for k-NN, a
    /// confidence-weighted blend of history and the analytic estimate; for
    /// the bandit, the analytic prior (its own value model is scalar).
    pub fn predict(
        &self,
        net: &SensorNetwork,
        grid: &GridCluster,
        features: &QueryFeatures,
        model: &SolutionModel,
    ) -> CostVector {
        let analytic = estimate(net, grid, features, model);
        self.learner.predict_cost(features, model, analytic)
    }

    fn learn_context(&self, features: &QueryFeatures, query: Option<&Query>) -> LearnContext {
        LearnContext {
            features: *features,
            health: self.health,
            energy_bound: query.and_then(Query::energy_bound),
            time_bound: query.and_then(Query::time_bound),
        }
    }

    /// Build the scored arm list for the learner policies: every candidate
    /// with its analytic prior, learner prediction, and scalar score.
    fn score_arms(
        &self,
        net: &SensorNetwork,
        grid: &GridCluster,
        features: &QueryFeatures,
        candidates: &[SolutionModel],
    ) -> Vec<CandidateArm> {
        candidates
            .iter()
            .enumerate()
            .map(|(key, m)| {
                let analytic = estimate(net, grid, features, m);
                let predicted = self.learner.predict_cost(features, m, analytic);
                CandidateArm {
                    key,
                    model: *m,
                    analytic,
                    predicted,
                    score: self.cfg.weights.scalar(&predicted),
                }
            })
            .collect()
    }

    /// Choose a placement for `query`. Returns `Err(NoFeasibleModel)` when
    /// every candidate's *predicted* cost violates the query's COST bounds
    /// — the cost-bounded rejection of experiment T10.
    pub fn choose(
        &mut self,
        net: &SensorNetwork,
        grid: &GridCluster,
        query: &Query,
        features: &QueryFeatures,
    ) -> Result<SolutionModel, NoFeasibleModel> {
        match self.policy {
            Policy::Static(m) => {
                let predicted = self.predict(net, grid, features, &m);
                if within_bounds(query, &predicted, None) {
                    Ok(m)
                } else {
                    Err(NoFeasibleModel)
                }
            }
            Policy::Random => {
                let candidates = SolutionModel::candidates(features.members);
                let feasible: Vec<SolutionModel> = candidates
                    .into_iter()
                    .filter(|m| within_bounds(query, &self.predict(net, grid, features, m), None))
                    .collect();
                if feasible.is_empty() {
                    return Err(NoFeasibleModel);
                }
                Ok(feasible[self.rng.gen_range(0..feasible.len())])
            }
            Policy::Adaptive | Policy::Bandit => {
                let candidates = if self.policy == Policy::Bandit {
                    bandit_candidates(features.members)
                } else {
                    SolutionModel::candidates(features.members)
                };
                let arms = self.score_arms(net, grid, features, &candidates);
                let feasible: Vec<CandidateArm> = arms
                    .into_iter()
                    .filter(|a| within_bounds(query, &a.predicted, None))
                    .collect();
                if feasible.is_empty() {
                    return Err(NoFeasibleModel);
                }
                let ctx = self.learn_context(features, Some(query));
                match self.learner.select(&ctx, &feasible) {
                    Some(i) => Ok(feasible[i].model),
                    None => Err(NoFeasibleModel),
                }
            }
        }
    }

    /// Feed back the measured cost of an execution ("comparing the
    /// estimates … with the actual values" — §4). The legacy pure-cost
    /// path: no degradation observed. See [`DecisionMaker::observe`] for
    /// the full outcome signal.
    pub fn record(
        &mut self,
        net: &SensorNetwork,
        grid: &GridCluster,
        features: QueryFeatures,
        model: SolutionModel,
        actual: CostVector,
    ) {
        self.observe(net, grid, features, model, Reward::from_cost(actual));
    }

    /// Feed back the full outcome of an execution: cost actuals *and*
    /// observed degradation (loss fraction, deadline miss, retries, dead
    /// letters). The k-NN learner consumes the cost exactly as `record`
    /// always did; the bandit consumes the composite reward; the health
    /// EWMAs absorb the degradation either way.
    pub fn observe(
        &mut self,
        net: &SensorNetwork,
        grid: &GridCluster,
        features: QueryFeatures,
        model: SolutionModel,
        reward: Reward,
    ) {
        let predicted = self.predict(net, grid, &features, &model);
        self.calibration.push((
            self.cfg.weights.scalar(&predicted),
            self.cfg.weights.scalar(&reward.cost),
        ));
        let ctx = self.learn_context(&features, None);
        let analytic = estimate(net, grid, &features, &model);
        // Recover the arm key within the policy's candidate space so the
        // bandit updates the right per-arm model. A model outside the
        // space (e.g. a forced fallback placement) maps onto its family
        // representative.
        let candidates = if self.policy == Policy::Bandit {
            bandit_candidates(features.members)
        } else {
            SolutionModel::candidates(features.members)
        };
        let key = candidates
            .iter()
            .position(|m| *m == model)
            .or_else(|| candidates.iter().position(|m| m.family() == model.family()))
            .unwrap_or(0);
        let arm = CandidateArm {
            key,
            model,
            analytic,
            predicted,
            score: self.cfg.weights.scalar(&predicted),
        };
        self.learner.observe(&ctx, &arm, &reward);
        self.health.absorb(&reward);
    }

    /// Mean relative calibration error over the last `window` recordings —
    /// drops as the learner absorbs actuals.
    pub fn calibration_error(&self, window: usize) -> f64 {
        let tail: Vec<&(f64, f64)> = self.calibration.iter_recent().take(window.max(1)).collect();
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter()
            .map(|(p, a)| (p - a).abs() / a.abs().max(1e-9))
            .sum::<f64>()
            / tail.len() as f64
    }

    /// Number of calibration pairs currently held (bounded by
    /// [`DecisionConfig::calibration_cap`]).
    pub fn calibration_len(&self) -> usize {
        self.calibration.len()
    }

    /// Under [`Policy::Bandit`], pick the tree-maintenance mode for a
    /// shared-collection chunk of `group` queries (the joint placement ×
    /// tree-lifetime selection). `None` for every other policy — callers
    /// keep their configured mode.
    pub fn select_tree_mode(&mut self, group: usize) -> Option<TreeMaintenance> {
        let health = self.health;
        self.tree_bandit
            .as_mut()
            .map(|tb| tb.select(group, &health))
    }

    /// Feed back a shared chunk's per-query attributed scalar cost for the
    /// tree mode that ran it (no-op unless [`Policy::Bandit`]).
    pub fn observe_tree_mode(
        &mut self,
        mode: TreeMaintenance,
        group: usize,
        per_query_scalar_cost: f64,
    ) {
        let health = self.health;
        if let Some(tb) = self.tree_bandit.as_mut() {
            tb.observe(mode, group, &health, per_query_scalar_cost);
        }
    }
}

/// Clairvoyant baseline: execute every candidate on a clone of the world
/// and return the truly cheapest placement with its measured cost.
#[allow(clippy::too_many_arguments)]
pub fn oracle_choice(
    net: &SensorNetwork,
    grid: &GridCluster,
    field: &TemperatureField,
    regions: &BTreeMap<String, Region>,
    now: SimTime,
    query: &Query,
    weights: &CostWeights,
    seed: u64,
) -> Option<(SolutionModel, CostVector)> {
    let members = crate::exec::members_of(
        &ExecContext {
            net: &mut net.clone(),
            grid,
            field,
            regions,
            now,
        },
        query,
    )
    .ok()?;
    let mut best: Option<(SolutionModel, CostVector, f64)> = None;
    for model in SolutionModel::candidates(members.len()) {
        let mut trial = net.clone();
        let mut ctx = ExecContext {
            net: &mut trial,
            grid,
            field,
            regions,
            now,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let Ok(out) = execute_once(&mut ctx, query, model, &mut rng) else {
            continue;
        };
        if !within_bounds(query, &out.cost, out.accuracy_err) {
            continue;
        }
        let s = weights.scalar(&out.cost);
        if best.as_ref().is_none_or(|(_, _, bs)| s < *bs) {
            best = Some((model, out.cost, s));
        }
    }
    best.map(|(m, c, _)| (m, c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_net::energy::RadioModel;
    use pg_net::geom::Point;
    use pg_net::link::LinkModel;
    use pg_net::topology::{NodeId, Topology};
    use pg_query::parse;
    use pg_sim::Duration;

    pub(super) fn world() -> (
        SensorNetwork,
        GridCluster,
        TemperatureField,
        BTreeMap<String, Region>,
    ) {
        let topo = Topology::grid(6, 6, 10.0, 11.0);
        let mut net = SensorNetwork::new(
            topo,
            NodeId(0),
            RadioModel::mote(),
            LinkModel::new(250e3, Duration::from_millis(5), 0.0).unwrap(),
            100.0,
        );
        net.noise_sd = 0.0;
        let mut regions = BTreeMap::new();
        regions.insert("room210".into(), Region::room(0.0, 0.0, 30.0, 30.0));
        (
            net,
            GridCluster::campus(),
            TemperatureField::building_fire(Point::flat(25.0, 25.0), SimTime::ZERO, 300.0),
            regions,
        )
    }

    fn features(
        net: &mut SensorNetwork,
        grid: &GridCluster,
        field: &TemperatureField,
        regions: &BTreeMap<String, Region>,
        q: &Query,
    ) -> QueryFeatures {
        let ctx = ExecContext {
            net,
            grid,
            field,
            regions,
            now: SimTime::from_secs(600),
        };
        QueryFeatures::extract(&ctx, q).unwrap()
    }

    #[test]
    fn static_policy_returns_its_model() {
        let (mut net, grid, field, regions) = world();
        let q = parse("SELECT AVG(temp) FROM sensors").unwrap();
        let f = features(&mut net, &grid, &field, &regions, &q);
        let mut dm = DecisionMaker::new(Policy::Static(SolutionModel::BaseStation), 1);
        assert_eq!(
            dm.choose(&net, &grid, &q, &f),
            Ok(SolutionModel::BaseStation)
        );
    }

    #[test]
    fn adaptive_learns_to_avoid_a_bad_model() {
        let (mut net, grid, field, regions) = world();
        let q = parse("SELECT AVG(temp) FROM sensors").unwrap();
        let f = features(&mut net, &grid, &field, &regions, &q);
        let mut dm = DecisionMaker::with_config(
            Policy::Adaptive,
            2,
            DecisionConfig::builder().epsilon(0.0).build(), // pure exploitation for determinism
        );
        // Teach it that BaseStation is catastrophically expensive here.
        let awful = CostVector {
            energy_j: 100.0,
            time_s: 1_000.0,
            bytes: 1e9,
            ops: 1e12,
        };
        let nice = CostVector {
            energy_j: 1e-4,
            time_s: 0.1,
            bytes: 100.0,
            ops: 100.0,
        };
        dm.record(&net, &grid, f, SolutionModel::BaseStation, awful);
        dm.record(&net, &grid, f, SolutionModel::InNetworkTree, nice);
        let choice = dm.choose(&net, &grid, &q, &f).unwrap();
        assert_eq!(choice, SolutionModel::InNetworkTree);
    }

    #[test]
    fn cost_bounds_reject_when_nothing_fits() {
        let (mut net, grid, field, regions) = world();
        // 1 nanojoule energy budget: nothing can run.
        let q = parse("SELECT AVG(temp) FROM sensors COST energy 0.000000001").unwrap();
        let f = features(&mut net, &grid, &field, &regions, &q);
        let mut dm = DecisionMaker::new(Policy::Adaptive, 3);
        assert_eq!(dm.choose(&net, &grid, &q, &f), Err(NoFeasibleModel));
        let mut bandit = DecisionMaker::new(Policy::Bandit, 3);
        assert_eq!(bandit.choose(&net, &grid, &q, &f), Err(NoFeasibleModel));
    }

    #[test]
    fn calibration_error_shrinks_with_history() {
        let (mut net, grid, field, regions) = world();
        let q = parse("SELECT AVG(temp) FROM sensors").unwrap();
        let f = features(&mut net, &grid, &field, &regions, &q);
        let mut dm = DecisionMaker::new(Policy::Adaptive, 4);
        let actual = CostVector {
            energy_j: 0.02,
            time_s: 1.0,
            bytes: 5_000.0,
            ops: 3_000.0,
        };
        // First recording: prediction comes from the coarse estimator.
        dm.record(&net, &grid, f, SolutionModel::BaseStation, actual);
        let early = dm.calibration_error(1);
        // Subsequent recordings: k-NN replays the actual, error collapses.
        for _ in 0..5 {
            dm.record(&net, &grid, f, SolutionModel::BaseStation, actual);
        }
        let late = dm.calibration_error(1);
        assert!(
            late < early.max(1e-12),
            "calibration must improve: {early} -> {late}"
        );
        assert!(late < 1e-6);
    }

    #[test]
    fn calibration_ring_is_bounded() {
        let (mut net, grid, field, regions) = world();
        let q = parse("SELECT AVG(temp) FROM sensors").unwrap();
        let f = features(&mut net, &grid, &field, &regions, &q);
        let mut dm = DecisionMaker::with_config(
            Policy::Adaptive,
            4,
            DecisionConfig::builder().calibration_cap(8).build(),
        );
        let actual = CostVector {
            energy_j: 0.02,
            time_s: 1.0,
            bytes: 5_000.0,
            ops: 3_000.0,
        };
        for _ in 0..50 {
            dm.record(&net, &grid, f, SolutionModel::BaseStation, actual);
        }
        assert_eq!(dm.calibration_len(), 8);
        assert_eq!(dm.history_len(), 50, "the case memory itself still grows");
        // The error over the retained window still reflects recent history.
        assert!(dm.calibration_error(8) < 1e-6);
    }

    #[test]
    fn oracle_picks_the_truly_cheapest() {
        let (net, grid, field, regions) = world();
        let q = parse("SELECT AVG(temp) FROM sensors WHERE region(room210)").unwrap();
        let (model, cost) = oracle_choice(
            &net,
            &grid,
            &field,
            &regions,
            SimTime::from_secs(600),
            &q,
            &CostWeights::default(),
            7,
        )
        .unwrap();
        // Verify optimality by re-running every candidate.
        let w = CostWeights::default();
        for cand in SolutionModel::candidates(20) {
            let mut trial = net.clone();
            let mut ctx = ExecContext {
                net: &mut trial,
                grid: &grid,
                field: &field,
                regions: &regions,
                now: SimTime::from_secs(600),
            };
            let mut rng = StdRng::seed_from_u64(7);
            let out = execute_once(&mut ctx, &q, cand, &mut rng).unwrap();
            assert!(
                w.scalar(&cost) <= w.scalar(&out.cost) + 1e-12,
                "oracle ({}) beaten by {}",
                model.name(),
                cand.name()
            );
        }
    }

    #[test]
    fn random_policy_is_seeded_deterministic() {
        let (mut net, grid, field, regions) = world();
        let q = parse("SELECT AVG(temp) FROM sensors").unwrap();
        let f = features(&mut net, &grid, &field, &regions, &q);
        let run = |seed| {
            let mut dm = DecisionMaker::new(Policy::Random, seed);
            (0..10)
                .map(|_| dm.choose(&net, &grid, &q, &f).unwrap().name())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn bandit_choices_are_seeded_deterministic() {
        let (mut net, grid, field, regions) = world();
        let q = parse("SELECT AVG(temp) FROM sensors").unwrap();
        let f = features(&mut net, &grid, &field, &regions, &q);
        let run = |seed| {
            let mut dm = DecisionMaker::new(Policy::Bandit, seed);
            let mut names = Vec::new();
            for i in 0..30 {
                let m = dm.choose(&net, &grid, &q, &f).unwrap();
                names.push(m.name());
                let actual = CostVector {
                    energy_j: 0.001 * (1 + m.family()) as f64,
                    time_s: 0.2 * (1 + i % 3) as f64,
                    bytes: 100.0,
                    ops: 100.0,
                };
                dm.record(&net, &grid, f, m, actual);
            }
            names
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn bandit_exploits_the_consistently_cheap_arm() {
        let (mut net, grid, field, regions) = world();
        let q = parse("SELECT AVG(temp) FROM sensors").unwrap();
        let f = features(&mut net, &grid, &field, &regions, &q);
        let mut dm = DecisionMaker::new(Policy::Bandit, 6);
        // Tree is cheap, everything else dear.
        let cost_of = |m: &SolutionModel| {
            let s = if m.family() == 0 { 0.05 } else { 3.0 };
            CostVector {
                energy_j: s * 0.1,
                time_s: 0.1,
                bytes: 100.0,
                ops: 100.0,
            }
        };
        for _ in 0..60 {
            let m = dm.choose(&net, &grid, &q, &f).unwrap();
            dm.record(&net, &grid, f, m, cost_of(&m));
        }
        let mut tree_picks = 0;
        for _ in 0..10 {
            let m = dm.choose(&net, &grid, &q, &f).unwrap();
            if m.family() == 0 {
                tree_picks += 1;
            }
            dm.record(&net, &grid, f, m, cost_of(&m));
        }
        assert!(tree_picks >= 8, "bandit must exploit: {tree_picks}/10");
    }

    #[test]
    fn health_tracks_degradation_and_pressure() {
        let (net, grid, field, regions) = world();
        let q = parse("SELECT AVG(temp) FROM sensors").unwrap();
        let mut n = net;
        let f = features(&mut n, &grid, &field, &regions, &q);
        let mut dm = DecisionMaker::new(Policy::Bandit, 9);
        dm.note_pressure(32, 1.0);
        assert_eq!(dm.health().queue_depth, 32);
        assert_eq!(dm.health().overload_level, 1.0);
        dm.observe(
            &n,
            &grid,
            f,
            SolutionModel::BaseStation,
            Reward {
                cost: CostVector::default(),
                loss_frac: 0.8,
                deadline_missed: true,
                retries: 3,
                dead_letters: 1,
            },
        );
        assert!(dm.health().loss_ewma > 0.0);
        assert!(dm.health().miss_ewma > 0.0);
        dm.note_dead_letters(2);
        assert!(dm.health().dead_letter_ewma > 0.0);
    }

    #[test]
    fn tree_mode_selection_is_bandit_only() {
        let mut knn = DecisionMaker::new(Policy::Adaptive, 1);
        assert_eq!(knn.select_tree_mode(8), None);
        let mut bandit = DecisionMaker::new(Policy::Bandit, 1);
        let mode = bandit.select_tree_mode(8).unwrap();
        bandit.observe_tree_mode(mode, 8, 0.5);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use pg_query::classify::QueryKind;
    use proptest::prelude::*;

    fn synthetic_features(members: usize, kind_idx: usize) -> QueryFeatures {
        QueryFeatures {
            kind: [QueryKind::Simple, QueryKind::Aggregate, QueryKind::Complex][kind_idx % 3],
            continuous: false,
            members,
            mean_hops: 1.0 + (members % 7) as f64 / 2.0,
            network_size: 100,
            epoch_s: 0.0,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// `DecisionMaker::new(policy, seed)` is a thin shim: its choice
        /// sequence is bit-identical to `with_config` under the default
        /// configuration, for every policy, across interleaved choose/
        /// record streams.
        #[test]
        fn new_is_bit_identical_to_default_config(
            seed in 0u64..1_000,
            picks in proptest::collection::vec((5usize..60, 0usize..3, 0u8..4), 1..40),
            policy_idx in 0usize..4,
        ) {
            let policy = [
                Policy::Adaptive,
                Policy::Random,
                Policy::Static(SolutionModel::BaseStation),
                Policy::Bandit,
            ][policy_idx];
            let (mut net, grid, field, regions) = super::tests::world();
            let q = pg_query::parse("SELECT AVG(temp) FROM sensors").unwrap();
            let base = {
                let ctx = ExecContext {
                    net: &mut net,
                    grid: &grid,
                    field: &field,
                    regions: &regions,
                    now: SimTime::from_secs(600),
                };
                QueryFeatures::extract(&ctx, &q).unwrap()
            };
            let run = |mk: &dyn Fn() -> DecisionMaker| {
                let mut dm = mk();
                let mut out = Vec::new();
                for (members, kind_idx, cost_mult) in &picks {
                    let mut f = synthetic_features(*members, *kind_idx);
                    f.mean_hops = base.mean_hops;
                    let choice = dm.choose(&net, &grid, &q, &f).ok();
                    out.push(choice.map(|m| m.name()));
                    if let Some(m) = choice {
                        let actual = CostVector {
                            energy_j: 0.001 * f64::from(*cost_mult + 1),
                            time_s: 0.1,
                            bytes: 100.0,
                            ops: 100.0,
                        };
                        dm.record(&net, &grid, f, m, actual);
                    }
                }
                (out, dm.calibration_error(8))
            };
            let shim = run(&|| DecisionMaker::new(policy, seed));
            let explicit = run(&|| {
                DecisionMaker::with_config(policy, seed, DecisionConfig::default())
            });
            let built = run(&|| {
                DecisionMaker::with_config(policy, seed, DecisionConfig::builder().build())
            });
            prop_assert_eq!(&shim, &explicit);
            prop_assert_eq!(&shim, &built);
        }

        /// With exploration disabled (α = 0) under stationary per-arm
        /// rewards, the bandit converges to the static-best arm and stays
        /// there, for every seed.
        #[test]
        fn bandit_converges_to_static_best_per_seed(
            seed in 0u64..1_000,
            best_family in 0usize..5,
        ) {
            let (mut net, grid, field, regions) = super::tests::world();
            let q = pg_query::parse("SELECT AVG(temp) FROM sensors").unwrap();
            let f = {
                let ctx = ExecContext {
                    net: &mut net,
                    grid: &grid,
                    field: &field,
                    regions: &regions,
                    now: SimTime::from_secs(600),
                };
                QueryFeatures::extract(&ctx, &q).unwrap()
            };
            let mut dm = DecisionMaker::with_config(
                Policy::Bandit,
                seed,
                DecisionConfig::builder()
                    .bandit(BanditConfig { alpha: 0.0, gamma: 1.0, ..BanditConfig::default() })
                    .build(),
            );
            let cost_of = |m: &SolutionModel| {
                let s = if m.family() == best_family { 0.05 } else { 4.0 };
                CostVector { energy_j: s * 0.1, time_s: 0.1, bytes: 0.0, ops: 0.0 }
            };
            for _ in 0..60 {
                let m = dm.choose(&net, &grid, &q, &f).unwrap();
                dm.record(&net, &grid, f, m, cost_of(&m));
            }
            for _ in 0..10 {
                let m = dm.choose(&net, &grid, &q, &f).unwrap();
                prop_assert_eq!(m.family(), best_family);
                dm.record(&net, &grid, f, m, cost_of(&m));
            }
        }
    }
}
