//! The Decision Maker.
//!
//! §4: "Decision maker would decide the solution model to use based on type
//! of query, historic data and known features of the network at hand. …
//! The system will be made adaptive by comparing the estimates of energy
//! consumption and response time with the actual values … during the
//! execution of the query and the results would be incorporated into the
//! learning technique."
//!
//! [`Policy::Adaptive`] predicts each candidate's cost from k-NN history
//! (falling back to the analytic estimator while history is thin), applies
//! the query's COST bounds as a hard filter, picks the cheapest under the
//! scalarization weights, and explores ε-greedily. Static policies and a
//! clairvoyant [`oracle_choice`] bound it from below and above.

use crate::estimate::estimate;
use crate::exec::{execute_once, ExecContext};
use crate::features::QueryFeatures;
use crate::knn::KnnRegressor;
use crate::model::{within_bounds, CostVector, CostWeights, SolutionModel};
use pg_grid::sched::GridCluster;
use pg_query::ast::Query;
use pg_sensornet::field::TemperatureField;
use pg_sensornet::network::SensorNetwork;
use pg_sensornet::region::Region;
use pg_sim::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Strategy-selection policies for experiment T3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Always the given placement (the static baselines).
    Static(SolutionModel),
    /// Uniform-random placement (the floor).
    Random,
    /// k-NN history + analytic fallback + ε-greedy exploration.
    Adaptive,
}

/// Why no model could be chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoFeasibleModel;

/// The adaptive decision maker.
#[derive(Debug)]
pub struct DecisionMaker {
    /// The case memory.
    pub knn: KnnRegressor,
    /// Scalarization weights.
    pub weights: CostWeights,
    /// Exploration rate for the adaptive policy.
    pub epsilon: f64,
    /// Blend k-NN predictions with the analytic estimate by neighbour
    /// distance (ablation A1 switches this off: pure k-NN once any history
    /// exists).
    pub blend: bool,
    /// Restrict exploration to candidates predicted within 5× of the best
    /// (ablation A1 switches this off: uniform ε-greedy).
    pub safe_explore: bool,
    policy: Policy,
    rng: StdRng,
    /// `(predicted, actual)` scalar-cost pairs, for calibration reporting.
    pub calibration: Vec<(f64, f64)>,
}

impl DecisionMaker {
    /// A decision maker with the given policy and RNG seed.
    pub fn new(policy: Policy, seed: u64) -> Self {
        DecisionMaker {
            knn: KnnRegressor::new(),
            weights: CostWeights::default(),
            epsilon: 0.1,
            blend: true,
            safe_explore: true,
            policy,
            rng: StdRng::seed_from_u64(seed),
            calibration: Vec::new(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Predicted cost of one candidate: a confidence-weighted blend of the
    /// k-NN history and the analytic estimate. A replayed situation
    /// (nearest case at distance ~0) trusts history fully; a novel
    /// situation (e.g. the first Complex query after only Aggregates)
    /// leans on the estimator, which already knows an in-network PDE solve
    /// is ruinous.
    pub fn predict(
        &self,
        net: &SensorNetwork,
        grid: &GridCluster,
        features: &QueryFeatures,
        model: &SolutionModel,
    ) -> CostVector {
        let analytic = estimate(net, grid, features, model);
        match self.knn.predict_detailed(features, model) {
            None => analytic,
            Some((learned, _)) if !self.blend => learned,
            Some((learned, nearest)) => {
                let w = 1.0 / (1.0 + nearest * nearest * 4.0);
                learned.scale(w).add(&analytic.scale(1.0 - w))
            }
        }
    }

    /// Choose a placement for `query`. Returns `Err(NoFeasibleModel)` when
    /// every candidate's *predicted* cost violates the query's COST bounds
    /// — the cost-bounded rejection of experiment T10.
    // Scalarized costs are weighted sums of finite predictions (never NaN)
    // and the feasible set is checked non-empty before taking the min.
    #[allow(clippy::expect_used)]
    pub fn choose(
        &mut self,
        net: &SensorNetwork,
        grid: &GridCluster,
        query: &Query,
        features: &QueryFeatures,
    ) -> Result<SolutionModel, NoFeasibleModel> {
        let candidates = SolutionModel::candidates(features.members);
        match self.policy {
            Policy::Static(m) => {
                let predicted = self.predict(net, grid, features, &m);
                if within_bounds(query, &predicted, None) {
                    Ok(m)
                } else {
                    Err(NoFeasibleModel)
                }
            }
            Policy::Random => {
                let feasible: Vec<SolutionModel> = candidates
                    .into_iter()
                    .filter(|m| within_bounds(query, &self.predict(net, grid, features, m), None))
                    .collect();
                if feasible.is_empty() {
                    return Err(NoFeasibleModel);
                }
                Ok(feasible[self.rng.gen_range(0..feasible.len())])
            }
            Policy::Adaptive => {
                let scored: Vec<(SolutionModel, CostVector, f64)> = candidates
                    .iter()
                    .map(|m| {
                        let c = self.predict(net, grid, features, m);
                        let s = self.weights.scalar(&c);
                        (*m, c, s)
                    })
                    .collect();
                let feasible: Vec<&(SolutionModel, CostVector, f64)> = scored
                    .iter()
                    .filter(|(_, c, _)| within_bounds(query, c, None))
                    .collect();
                if feasible.is_empty() {
                    return Err(NoFeasibleModel);
                }
                let best = feasible
                    .iter()
                    .min_by(|a, b| a.2.partial_cmp(&b.2).expect("scores are never NaN"))
                    .expect("feasible set is non-empty");
                // Safe ε-greedy: explore only among candidates predicted
                // within 5× of the best (a placement already predicted to
                // be 100× dearer — e.g. an in-network PDE solve — teaches
                // nothing worth its price), and decay exploration as
                // history accumulates.
                let eps = self.epsilon / (1.0 + self.knn.len() as f64 / 25.0);
                if self.rng.gen::<f64>() < eps {
                    let near: Vec<_> = if self.safe_explore {
                        feasible
                            .iter()
                            .filter(|(_, _, s)| *s <= 5.0 * best.2 + 1e-12)
                            .collect()
                    } else {
                        feasible.iter().collect()
                    };
                    let pick = near[self.rng.gen_range(0..near.len())];
                    return Ok(pick.0);
                }
                Ok(best.0)
            }
        }
    }

    /// Feed back the measured cost of an execution ("comparing the
    /// estimates … with the actual values" — §4).
    pub fn record(
        &mut self,
        net: &SensorNetwork,
        grid: &GridCluster,
        features: QueryFeatures,
        model: SolutionModel,
        actual: CostVector,
    ) {
        let predicted = self.predict(net, grid, &features, &model);
        self.calibration.push((
            self.weights.scalar(&predicted),
            self.weights.scalar(&actual),
        ));
        self.knn.record(features, model, actual);
    }

    /// Mean relative calibration error over the last `window` recordings —
    /// drops as the learner absorbs actuals.
    pub fn calibration_error(&self, window: usize) -> f64 {
        let tail: Vec<&(f64, f64)> = self.calibration.iter().rev().take(window.max(1)).collect();
        if tail.is_empty() {
            return 0.0;
        }
        tail.iter()
            .map(|(p, a)| (p - a).abs() / a.abs().max(1e-9))
            .sum::<f64>()
            / tail.len() as f64
    }
}

/// Clairvoyant baseline: execute every candidate on a clone of the world
/// and return the truly cheapest placement with its measured cost.
#[allow(clippy::too_many_arguments)]
pub fn oracle_choice(
    net: &SensorNetwork,
    grid: &GridCluster,
    field: &TemperatureField,
    regions: &BTreeMap<String, Region>,
    now: SimTime,
    query: &Query,
    weights: &CostWeights,
    seed: u64,
) -> Option<(SolutionModel, CostVector)> {
    let members = crate::exec::members_of(
        &ExecContext {
            net: &mut net.clone(),
            grid,
            field,
            regions,
            now,
        },
        query,
    )
    .ok()?;
    let mut best: Option<(SolutionModel, CostVector, f64)> = None;
    for model in SolutionModel::candidates(members.len()) {
        let mut trial = net.clone();
        let mut ctx = ExecContext {
            net: &mut trial,
            grid,
            field,
            regions,
            now,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let Ok(out) = execute_once(&mut ctx, query, model, &mut rng) else {
            continue;
        };
        if !within_bounds(query, &out.cost, out.accuracy_err) {
            continue;
        }
        let s = weights.scalar(&out.cost);
        if best.as_ref().is_none_or(|(_, _, bs)| s < *bs) {
            best = Some((model, out.cost, s));
        }
    }
    best.map(|(m, c, _)| (m, c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_net::energy::RadioModel;
    use pg_net::geom::Point;
    use pg_net::link::LinkModel;
    use pg_net::topology::{NodeId, Topology};
    use pg_query::parse;
    use pg_sim::Duration;

    fn world() -> (
        SensorNetwork,
        GridCluster,
        TemperatureField,
        BTreeMap<String, Region>,
    ) {
        let topo = Topology::grid(6, 6, 10.0, 11.0);
        let mut net = SensorNetwork::new(
            topo,
            NodeId(0),
            RadioModel::mote(),
            LinkModel::new(250e3, Duration::from_millis(5), 0.0).unwrap(),
            100.0,
        );
        net.noise_sd = 0.0;
        let mut regions = BTreeMap::new();
        regions.insert("room210".into(), Region::room(0.0, 0.0, 30.0, 30.0));
        (
            net,
            GridCluster::campus(),
            TemperatureField::building_fire(Point::flat(25.0, 25.0), SimTime::ZERO, 300.0),
            regions,
        )
    }

    fn features(
        net: &mut SensorNetwork,
        grid: &GridCluster,
        field: &TemperatureField,
        regions: &BTreeMap<String, Region>,
        q: &Query,
    ) -> QueryFeatures {
        let ctx = ExecContext {
            net,
            grid,
            field,
            regions,
            now: SimTime::from_secs(600),
        };
        QueryFeatures::extract(&ctx, q).unwrap()
    }

    #[test]
    fn static_policy_returns_its_model() {
        let (mut net, grid, field, regions) = world();
        let q = parse("SELECT AVG(temp) FROM sensors").unwrap();
        let f = features(&mut net, &grid, &field, &regions, &q);
        let mut dm = DecisionMaker::new(Policy::Static(SolutionModel::BaseStation), 1);
        assert_eq!(
            dm.choose(&net, &grid, &q, &f),
            Ok(SolutionModel::BaseStation)
        );
    }

    #[test]
    fn adaptive_learns_to_avoid_a_bad_model() {
        let (mut net, grid, field, regions) = world();
        let q = parse("SELECT AVG(temp) FROM sensors").unwrap();
        let f = features(&mut net, &grid, &field, &regions, &q);
        let mut dm = DecisionMaker::new(Policy::Adaptive, 2);
        dm.epsilon = 0.0; // pure exploitation for determinism
                          // Teach it that BaseStation is catastrophically expensive here.
        let awful = CostVector {
            energy_j: 100.0,
            time_s: 1_000.0,
            bytes: 1e9,
            ops: 1e12,
        };
        let nice = CostVector {
            energy_j: 1e-4,
            time_s: 0.1,
            bytes: 100.0,
            ops: 100.0,
        };
        dm.record(&net, &grid, f, SolutionModel::BaseStation, awful);
        dm.record(&net, &grid, f, SolutionModel::InNetworkTree, nice);
        let choice = dm.choose(&net, &grid, &q, &f).unwrap();
        assert_eq!(choice, SolutionModel::InNetworkTree);
    }

    #[test]
    fn cost_bounds_reject_when_nothing_fits() {
        let (mut net, grid, field, regions) = world();
        // 1 nanojoule energy budget: nothing can run.
        let q = parse("SELECT AVG(temp) FROM sensors COST energy 0.000000001").unwrap();
        let f = features(&mut net, &grid, &field, &regions, &q);
        let mut dm = DecisionMaker::new(Policy::Adaptive, 3);
        assert_eq!(dm.choose(&net, &grid, &q, &f), Err(NoFeasibleModel));
    }

    #[test]
    fn calibration_error_shrinks_with_history() {
        let (mut net, grid, field, regions) = world();
        let q = parse("SELECT AVG(temp) FROM sensors").unwrap();
        let f = features(&mut net, &grid, &field, &regions, &q);
        let mut dm = DecisionMaker::new(Policy::Adaptive, 4);
        let actual = CostVector {
            energy_j: 0.02,
            time_s: 1.0,
            bytes: 5_000.0,
            ops: 3_000.0,
        };
        // First recording: prediction comes from the coarse estimator.
        dm.record(&net, &grid, f, SolutionModel::BaseStation, actual);
        let early = dm.calibration_error(1);
        // Subsequent recordings: k-NN replays the actual, error collapses.
        for _ in 0..5 {
            dm.record(&net, &grid, f, SolutionModel::BaseStation, actual);
        }
        let late = dm.calibration_error(1);
        assert!(
            late < early.max(1e-12),
            "calibration must improve: {early} -> {late}"
        );
        assert!(late < 1e-6);
    }

    #[test]
    fn oracle_picks_the_truly_cheapest() {
        let (net, grid, field, regions) = world();
        let q = parse("SELECT AVG(temp) FROM sensors WHERE region(room210)").unwrap();
        let (model, cost) = oracle_choice(
            &net,
            &grid,
            &field,
            &regions,
            SimTime::from_secs(600),
            &q,
            &CostWeights::default(),
            7,
        )
        .unwrap();
        // Verify optimality by re-running every candidate.
        let w = CostWeights::default();
        for cand in SolutionModel::candidates(20) {
            let mut trial = net.clone();
            let mut ctx = ExecContext {
                net: &mut trial,
                grid: &grid,
                field: &field,
                regions: &regions,
                now: SimTime::from_secs(600),
            };
            let mut rng = StdRng::seed_from_u64(7);
            let out = execute_once(&mut ctx, &q, cand, &mut rng).unwrap();
            assert!(
                w.scalar(&cost) <= w.scalar(&out.cost) + 1e-12,
                "oracle ({}) beaten by {}",
                model.name(),
                cand.name()
            );
        }
    }

    #[test]
    fn random_policy_is_seeded_deterministic() {
        let (mut net, grid, field, regions) = world();
        let q = parse("SELECT AVG(temp) FROM sensors").unwrap();
        let f = features(&mut net, &grid, &field, &regions, &q);
        let run = |seed| {
            let mut dm = DecisionMaker::new(Policy::Random, seed);
            (0..10)
                .map(|_| dm.choose(&net, &grid, &q, &f).unwrap().name())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
    }
}
