//! `pg-partition` — dynamic partition of computation between the sensor
//! network, the base station/handheld, and the wired Grid.
//!
//! §4 is the paper's concrete technical proposal: "The problem that we
//! intend to solve is to dynamically partition the computation needed for
//! the execution of the query", with three placements —
//!
//! 1. "The data is moved to the resources on the grid, which do the
//!    computation" ([`model::SolutionModel::GridOffload`]),
//! 2. "The computation is done in the sensor network"
//!    ([`model::SolutionModel::InNetworkTree`] /
//!    [`model::SolutionModel::InNetworkCluster`]),
//! 3. "The data is delivered to the base station/PDA, which perform the
//!    computation" ([`model::SolutionModel::BaseStation`]),
//!
//! — selected per query by a decision maker fed with *estimates* of
//! computation, data transfer, energy, and response time, and made
//! *adaptive* "by comparing the estimates … with the actual values …
//! during the execution of the query" using "standard machine learning
//! techniques" (a k-NN cost regressor here, after Pythia [14]).
//!
//! The three components the paper names map to: Query Processor =
//! `pg-query`, Decision Maker = [`decide`], Simulator = [`exec`] over
//! `pg-sensornet`/`pg-grid`.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod decide;
pub mod estimate;
pub mod exec;
pub mod features;
pub mod knn;
pub mod learn;
pub mod model;

pub use decide::{DecisionConfig, DecisionConfigBuilder, DecisionMaker, Policy};
pub use exec::{execute_once, ExecContext, ExecError, Outcome};
pub use features::QueryFeatures;
pub use learn::{
    bandit_candidates, BanditConfig, CandidateArm, KnnLearner, LearnContext, Learner,
    LinUcbLearner, NetHealth, Reward, RewardWeights, TreeModeBandit,
};
pub use model::{CostVector, CostWeights, SolutionModel};
