//! Analytic a-priori cost estimates.
//!
//! Before any execution history exists, the decision maker needs the
//! estimates §4 enumerates ("It is essential to know the amount of
//! computation required … the amount of data transfer … energy consumption
//! … response time"). These closed-form models are deliberately coarse —
//! the adaptive loop's whole job is to correct them with measured actuals.

use crate::exec::{BASE_FLOPS, RESULT_BYTES, SENSOR_FLOPS};
use crate::features::QueryFeatures;
use crate::model::{CostVector, SolutionModel};
use pg_grid::sched::GridCluster;
use pg_query::classify::QueryKind;
use pg_sensornet::aggregate::{PARTIAL_WIRE_BYTES, READING_WIRE_BYTES};
use pg_sensornet::network::SensorNetwork;

/// Estimated CG iterations for the Complex-query PDE at the default
/// resolution (used only until real history accumulates).
const PDE_ITERS_EST: u64 = 60;
/// Interior cells of the default reconstruction box.
const PDE_CELLS_EST: u64 = 22 * 22 * 3;

/// Estimate the cost of `model` for a query with `features`.
pub fn estimate(
    net: &SensorNetwork,
    grid: &GridCluster,
    features: &QueryFeatures,
    model: &SolutionModel,
) -> CostVector {
    let m = features.members as f64;
    let hops = features.mean_hops.max(1.0);
    let range = net.topology().range();
    let radio = net.radio();
    let link = net.link();
    let slot_r = link.expected_tx_time(READING_WIRE_BYTES).as_secs_f64();
    let slot_p = link.expected_tx_time(PARTIAL_WIRE_BYTES).as_secs_f64();
    let hop_energy = |bytes: u64| {
        let bits = bytes * 8;
        radio.tx_energy(bits, range * 0.8) + radio.rx_energy(bits)
    };

    // Transport phase per placement family.
    let mut c = match model {
        SolutionModel::BaseStation | SolutionModel::GridOffload { .. } => CostVector {
            energy_j: m * hops * hop_energy(READING_WIRE_BYTES),
            time_s: hops * slot_r + m * slot_r,
            bytes: m * hops * READING_WIRE_BYTES as f64,
            ops: m * 70.0,
        },
        SolutionModel::InNetworkTree => {
            // Steiner overhead: forwarding non-members join the tree.
            let participants = (m * 1.3).min(features.network_size as f64);
            CostVector {
                energy_j: participants * hop_energy(PARTIAL_WIRE_BYTES),
                time_s: (hops + 1.0) * slot_p,
                bytes: participants * PARTIAL_WIRE_BYTES as f64,
                ops: m * 70.0 + participants * 20.0,
            }
        }
        SolutionModel::InNetworkCluster { heads } | SolutionModel::Hybrid { heads } => {
            let k = (*heads).max(1) as f64;
            let to_base = hops * range * 0.7;
            let bits_p = PARTIAL_WIRE_BYTES * 8;
            let head_tx = radio.tx_energy(bits_p, to_base);
            CostVector {
                energy_j: m * hop_energy(READING_WIRE_BYTES) + k * head_tx,
                time_s: (m / k) * slot_r + k * slot_p,
                bytes: m * READING_WIRE_BYTES as f64 + k * PARTIAL_WIRE_BYTES as f64,
                ops: m * 70.0 + k * 20.0,
            }
        }
    };

    // Compute phase by query class.
    match features.kind {
        QueryKind::Simple | QueryKind::Aggregate | QueryKind::Continuous => {
            if let SolutionModel::GridOffload { .. } = model {
                let bh = grid.backhaul();
                let ship = (m as u64) * READING_WIRE_BYTES;
                c.time_s += (bh.tx_time(ship) + bh.tx_time(RESULT_BYTES)).as_secs_f64();
                c.bytes += (ship + RESULT_BYTES) as f64;
            }
        }
        QueryKind::Complex => {
            let pde_ops = (PDE_CELLS_EST * 22 * PDE_ITERS_EST) as f64;
            c.ops += pde_ops;
            match model {
                SolutionModel::GridOffload { .. } => {
                    let bh = grid.backhaul();
                    let ship = (m as u64) * 32;
                    c.time_s += (bh.tx_time(ship) + bh.tx_time(RESULT_BYTES)).as_secs_f64()
                        + pde_ops / grid.nodes()[0].flops;
                    c.bytes += (ship + RESULT_BYTES) as f64;
                }
                SolutionModel::Hybrid { heads } => {
                    // Only k cluster summaries cross the backhaul; the grid
                    // solves on them (same problem size, fewer constraints).
                    let bh = grid.backhaul();
                    let ship = (*heads).max(1) as u64 * 32;
                    c.time_s += (bh.tx_time(ship) + bh.tx_time(RESULT_BYTES)).as_secs_f64()
                        + pde_ops / grid.nodes()[0].flops;
                    c.bytes += (ship + RESULT_BYTES) as f64;
                }
                SolutionModel::BaseStation => {
                    c.time_s += pde_ops / BASE_FLOPS;
                }
                SolutionModel::InNetworkTree | SolutionModel::InNetworkCluster { .. } => {
                    // Distributed sweeps: quadratic iteration blow-up plus
                    // per-sweep radio exchange.
                    let sweeps = (PDE_ITERS_EST * PDE_ITERS_EST) as f64;
                    c.time_s += sweeps * slot_r + pde_ops / (SENSOR_FLOPS * m.max(1.0));
                    c.energy_j += sweeps * m * hop_energy(READING_WIRE_BYTES);
                    c.bytes += sweeps * m * 4.0 * READING_WIRE_BYTES as f64;
                }
            }
        }
    }

    // Continuous queries pay idle listening per epoch.
    if features.continuous && features.epoch_s > 0.0 {
        c.energy_j += radio.idle_energy(features.epoch_s) * (features.network_size as f64 - 1.0);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_net::energy::RadioModel;
    use pg_net::link::LinkModel;
    use pg_net::topology::{NodeId, Topology};

    fn net() -> SensorNetwork {
        SensorNetwork::new(
            Topology::grid(10, 10, 10.0, 11.0),
            NodeId(0),
            RadioModel::mote(),
            LinkModel::sensor_radio(),
            50.0,
        )
    }

    fn feats(kind: QueryKind, members: usize) -> QueryFeatures {
        QueryFeatures {
            kind,
            continuous: false,
            members,
            mean_hops: 6.0,
            network_size: 100,
            epoch_s: 0.0,
        }
    }

    #[test]
    fn tree_cheaper_than_direct_for_large_aggregates() {
        let n = net();
        let g = GridCluster::campus();
        let f = feats(QueryKind::Aggregate, 99);
        let tree = estimate(&n, &g, &f, &SolutionModel::InNetworkTree);
        let direct = estimate(&n, &g, &f, &SolutionModel::BaseStation);
        assert!(tree.energy_j < direct.energy_j);
        assert!(tree.bytes < direct.bytes);
    }

    #[test]
    fn grid_wins_complex_queries_on_time() {
        let n = net();
        let g = GridCluster::campus();
        let f = feats(QueryKind::Complex, 99);
        let grid = estimate(
            &n,
            &g,
            &f,
            &SolutionModel::GridOffload {
                reduction_cell_m: 0.0,
            },
        );
        let base = estimate(&n, &g, &f, &SolutionModel::BaseStation);
        let innet = estimate(&n, &g, &f, &SolutionModel::InNetworkTree);
        assert!(
            grid.time_s < base.time_s,
            "{} !< {}",
            grid.time_s,
            base.time_s
        );
        assert!(base.time_s < innet.time_s);
        assert!(grid.energy_j < innet.energy_j);
    }

    #[test]
    fn continuous_adds_idle_energy() {
        let n = net();
        let g = GridCluster::campus();
        let mut f = feats(QueryKind::Aggregate, 50);
        let one_shot = estimate(&n, &g, &f, &SolutionModel::InNetworkTree);
        f.continuous = true;
        f.epoch_s = 10.0;
        let cont = estimate(&n, &g, &f, &SolutionModel::InNetworkTree);
        assert!(cont.energy_j > one_shot.energy_j);
    }

    #[test]
    fn estimates_are_finite_and_positive() {
        let n = net();
        let g = GridCluster::campus();
        for kind in [QueryKind::Simple, QueryKind::Aggregate, QueryKind::Complex] {
            for model in SolutionModel::candidates(50) {
                let c = estimate(&n, &g, &feats(kind, 50), &model);
                assert!(c.energy_j.is_finite() && c.energy_j > 0.0);
                assert!(c.time_s.is_finite() && c.time_s > 0.0);
                assert!(c.bytes > 0.0 && c.ops > 0.0);
            }
        }
    }
}
