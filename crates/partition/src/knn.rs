//! A k-nearest-neighbour cost regressor over execution history.
//!
//! §4 commits to "standard machine learning techniques … on the data to
//! select the right approach for a given query", with the estimate-vs-
//! actual feedback loop making the system adaptive. Case-based regression
//! (the Pythia approach [14]) fits exactly: each executed query deposits a
//! `(features, model, actual cost)` case; predicting the cost of a model
//! for a new query averages the k nearest cases of the same model family,
//! weighted by inverse distance.

use crate::features::QueryFeatures;
use crate::model::{CostVector, SolutionModel};

/// One remembered execution.
#[derive(Debug, Clone)]
pub struct Case {
    /// Features of the executed query.
    pub features: QueryFeatures,
    /// The placement that ran.
    pub model: SolutionModel,
    /// The measured cost.
    pub actual: CostVector,
}

/// The case memory.
#[derive(Debug, Clone, Default)]
pub struct KnnRegressor {
    cases: Vec<Case>,
    /// Neighbourhood size.
    pub k: usize,
}

impl KnnRegressor {
    /// Empty memory with `k = 5`.
    pub fn new() -> Self {
        KnnRegressor {
            cases: Vec::new(),
            k: 5,
        }
    }

    /// Number of stored cases.
    pub fn len(&self) -> usize {
        self.cases.len()
    }

    /// Is the memory empty?
    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }

    /// Cases stored for one model family.
    pub fn family_count(&self, model: &SolutionModel) -> usize {
        self.cases
            .iter()
            .filter(|c| c.model.family() == model.family())
            .count()
    }

    /// Deposit a case.
    pub fn record(&mut self, features: QueryFeatures, model: SolutionModel, actual: CostVector) {
        self.cases.push(Case {
            features,
            model,
            actual,
        });
    }

    /// Predict the cost of running `model` on a query with `features`:
    /// inverse-distance-weighted mean of the k nearest same-family cases.
    /// `None` when no history exists for the family.
    pub fn predict(&self, features: &QueryFeatures, model: &SolutionModel) -> Option<CostVector> {
        self.predict_detailed(features, model).map(|(c, _)| c)
    }

    /// [`KnnRegressor::predict`], additionally returning the distance of
    /// the nearest case — the caller's confidence signal (a prediction
    /// extrapolated from a far-away case should defer to the analytic
    /// estimator).
    // Feature distances are sums of squares of finite values, never NaN.
    #[allow(clippy::expect_used)]
    pub fn predict_detailed(
        &self,
        features: &QueryFeatures,
        model: &SolutionModel,
    ) -> Option<(CostVector, f64)> {
        let mut near: Vec<(f64, &Case)> = self
            .cases
            .iter()
            .filter(|c| c.model.family() == model.family())
            .map(|c| (features.distance(&c.features), c))
            .collect();
        if near.is_empty() {
            return None;
        }
        near.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("distances are never NaN"));
        near.truncate(self.k.max(1));
        let nearest = near[0].0;
        let mut acc = CostVector::default();
        let mut wsum = 0.0;
        for (d, c) in &near {
            let w = 1.0 / (d + 1e-6);
            acc = acc.add(&c.actual.scale(w));
            wsum += w;
        }
        Some((acc.scale(1.0 / wsum), nearest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_query::classify::QueryKind;

    fn feats(members: usize, kind: QueryKind) -> QueryFeatures {
        QueryFeatures {
            kind,
            continuous: false,
            members,
            mean_hops: 2.0,
            network_size: 100,
            epoch_s: 0.0,
        }
    }

    fn cost(e: f64) -> CostVector {
        CostVector {
            energy_j: e,
            time_s: e * 10.0,
            bytes: e * 1000.0,
            ops: e * 1e6,
        }
    }

    #[test]
    fn empty_memory_predicts_nothing() {
        let knn = KnnRegressor::new();
        assert_eq!(
            knn.predict(
                &feats(10, QueryKind::Aggregate),
                &SolutionModel::BaseStation
            ),
            None
        );
    }

    #[test]
    fn exact_replay_returns_recorded_cost() {
        let mut knn = KnnRegressor::new();
        let f = feats(10, QueryKind::Aggregate);
        knn.record(f, SolutionModel::BaseStation, cost(1.0));
        let p = knn.predict(&f, &SolutionModel::BaseStation).unwrap();
        assert!((p.energy_j - 1.0).abs() < 1e-6);
    }

    #[test]
    fn families_do_not_cross_contaminate() {
        let mut knn = KnnRegressor::new();
        let f = feats(10, QueryKind::Aggregate);
        knn.record(f, SolutionModel::BaseStation, cost(1.0));
        assert_eq!(knn.predict(&f, &SolutionModel::InNetworkTree), None);
        assert_eq!(knn.family_count(&SolutionModel::BaseStation), 1);
        assert_eq!(knn.family_count(&SolutionModel::InNetworkTree), 0);
    }

    #[test]
    fn nearer_cases_dominate_the_prediction() {
        let mut knn = KnnRegressor::new();
        knn.k = 2;
        // Near case (same member count) cheap; far case expensive.
        knn.record(
            feats(10, QueryKind::Aggregate),
            SolutionModel::BaseStation,
            cost(1.0),
        );
        knn.record(
            feats(10_000, QueryKind::Aggregate),
            SolutionModel::BaseStation,
            cost(100.0),
        );
        let p = knn
            .predict(
                &feats(11, QueryKind::Aggregate),
                &SolutionModel::BaseStation,
            )
            .unwrap();
        assert!(p.energy_j < 10.0, "near case must dominate: {}", p.energy_j);
    }

    #[test]
    fn k_limits_the_neighbourhood() {
        let mut knn = KnnRegressor::new();
        knn.k = 1;
        let f = feats(10, QueryKind::Aggregate);
        knn.record(f, SolutionModel::BaseStation, cost(1.0));
        knn.record(
            feats(500, QueryKind::Aggregate),
            SolutionModel::BaseStation,
            cost(50.0),
        );
        let p = knn.predict(&f, &SolutionModel::BaseStation).unwrap();
        assert!((p.energy_j - 1.0).abs() < 1e-3, "k=1 uses only the nearest");
    }
}
