//! Property-based tests for the wireless substrate invariants.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_net::churn::ChurnProcess;
use pg_net::energy::{Battery, RadioModel};
use pg_net::geom::Point;
use pg_net::link::LinkModel;
use pg_net::routing::{flood, gossip};
use pg_net::topology::{NodeId, Topology};
use pg_sim::{Duration, SimTime};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_points(max: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0f64..200.0, 0.0f64..200.0), 1..max)
}

proptest! {
    /// Adjacency is symmetric and irreflexive for any placement.
    #[test]
    fn adjacency_symmetric(pts in arb_points(40), range in 5.0f64..80.0) {
        let topo = Topology::from_positions(
            pts.iter().map(|&(x, y)| Point::flat(x, y)).collect(),
            range,
        );
        for a in topo.nodes() {
            prop_assert!(!topo.neighbors(a).contains(&a));
            for &b in topo.neighbors(a) {
                prop_assert!(topo.neighbors(b).contains(&a));
                prop_assert!(topo.distance(a, b) <= range + 1e-9);
            }
        }
    }

    /// BFS hop counts satisfy the triangle property along edges: adjacent
    /// nodes differ by at most one hop from any root.
    #[test]
    fn hops_lipschitz_along_edges(pts in arb_points(40), range in 10.0f64..80.0) {
        let topo = Topology::from_positions(
            pts.iter().map(|&(x, y)| Point::flat(x, y)).collect(),
            range,
        );
        let hops = topo.hops_from(NodeId(0));
        for a in topo.nodes() {
            for &b in topo.neighbors(a) {
                if let (Some(ha), Some(hb)) = (hops[a.idx()], hops[b.idx()]) {
                    prop_assert!(ha.abs_diff(hb) <= 1, "hops {ha} vs {hb} across an edge");
                }
            }
        }
    }

    /// Spanning-tree parents are exactly one hop shallower; paths to root
    /// have length depth+1.
    #[test]
    fn spanning_tree_depths_consistent(pts in arb_points(40), range in 10.0f64..80.0) {
        let topo = Topology::from_positions(
            pts.iter().map(|&(x, y)| Point::flat(x, y)).collect(),
            range,
        );
        let tree = topo.spanning_tree(NodeId(0));
        for n in topo.nodes() {
            if let Some(d) = tree.depth[n.idx()] {
                if let Some(p) = tree.parent[n.idx()] {
                    prop_assert_eq!(tree.depth[p.idx()], Some(d - 1));
                }
                let path = tree.path_to_root(n).expect("attached");
                prop_assert_eq!(path.len() as u32, d + 1);
                prop_assert_eq!(*path.last().unwrap(), NodeId(0));
            }
        }
    }

    /// TX energy is monotone in both bits and distance, and RX is linear.
    #[test]
    fn radio_energy_monotone(bits in 1u64..100_000, d1 in 0.0f64..500.0, d2 in 0.0f64..500.0) {
        let m = RadioModel::mote();
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(m.tx_energy(bits, lo) <= m.tx_energy(bits, hi) + 1e-18);
        prop_assert!(m.tx_energy(bits, lo) <= m.tx_energy(bits + 1, lo));
        prop_assert!((m.rx_energy(2 * bits) - 2.0 * m.rx_energy(bits)).abs() < 1e-15);
    }

    /// Batteries never go negative and total drain accounting holds.
    #[test]
    fn battery_conservation(draws in prop::collection::vec(0.0f64..0.4, 0..30)) {
        let mut b = Battery::new(1.0);
        for d in &draws {
            b.drain(*d);
            prop_assert!(b.remaining() >= 0.0);
            prop_assert!(b.used() <= b.capacity() + 1e-12);
            prop_assert!((b.remaining() + b.used() - b.capacity()).abs() < 1e-9);
        }
        let total: f64 = draws.iter().sum();
        prop_assert_eq!(b.is_dead(), total >= 1.0);
    }

    /// Lossless flooding reaches exactly the connected component of the
    /// source, with one transmission per reached node.
    #[test]
    fn flood_reaches_component(pts in arb_points(30), range in 10.0f64..60.0, seed in any::<u64>()) {
        let topo = Topology::from_positions(
            pts.iter().map(|&(x, y)| Point::flat(x, y)).collect(),
            range,
        );
        let link = LinkModel::new(250e3, Duration::from_millis(5), 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let d = flood(&topo, NodeId(0), &link, &mut rng);
        let hops = topo.hops_from(NodeId(0));
        for n in topo.nodes() {
            prop_assert_eq!(d.reached[n.idx()], hops[n.idx()].is_some());
        }
        let reached = d.reached.iter().filter(|&&r| r).count() as u64;
        prop_assert_eq!(d.transmissions, reached);
    }

    /// Gossip never reaches more nodes than flooding from the same state.
    #[test]
    fn gossip_bounded_by_flood(pts in arb_points(30), p in 0.05f64..1.0, seed in any::<u64>()) {
        let topo = Topology::from_positions(
            pts.iter().map(|&(x, y)| Point::flat(x, y)).collect(),
            30.0,
        );
        let link = LinkModel::new(250e3, Duration::from_millis(5), 0.0).unwrap();
        let flood_cov = flood(&topo, NodeId(0), &link, &mut StdRng::seed_from_u64(seed)).coverage();
        let gossip_cov = gossip(&topo, NodeId(0), p, &link, &mut StdRng::seed_from_u64(seed)).coverage();
        prop_assert!(gossip_cov <= flood_cov + 1e-12);
    }

    /// Churn schedules alternate: is_up flips at every toggle, and the
    /// sampled uptime lies in [0, 1].
    #[test]
    fn churn_schedule_well_formed(up in 1.0f64..500.0, down in 1.0f64..500.0, seed in any::<u64>()) {
        let proc_ = ChurnProcess::new(up, down).unwrap();
        let horizon = SimTime::from_secs(10_000);
        let mut rng = StdRng::seed_from_u64(seed);
        let s = proc_.schedule(horizon, &mut rng);
        for w in s.toggles().windows(2) {
            prop_assert!(w[0] < w[1], "toggles strictly ascending");
        }
        for &t in s.toggles() {
            let before = SimTime::from_nanos(t.as_nanos().saturating_sub(1));
            prop_assert_ne!(s.is_up(before), s.is_up(t), "state flips at toggle");
        }
        let f = s.uptime_fraction(horizon);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&f));
    }

    /// Long-run sampled up-fraction converges to the analytic availability:
    /// over a horizon of ~1000 mean up/down cycles, the renewal-process
    /// deviation is O(1/sqrt(cycles)), comfortably inside 5 %.
    #[test]
    fn churn_uptime_converges_to_availability(
        up in 10.0f64..200.0,
        down in 10.0f64..200.0,
        seed in any::<u64>(),
    ) {
        let proc_ = ChurnProcess::new(up, down).unwrap();
        let horizon = SimTime::from_secs_f64(1_000.0 * (up + down));
        let mut rng = StdRng::seed_from_u64(seed);
        let f = proc_.schedule(horizon, &mut rng).uptime_fraction(horizon);
        let a = proc_.availability();
        prop_assert!(
            (f - a).abs() < 0.05,
            "sampled up-fraction {f} vs availability {a}"
        );
    }

    /// `next_up_at` returns an instant at which the service is indeed up,
    /// and never skips an earlier up instant among the toggles.
    #[test]
    fn next_up_at_is_correct(up in 1.0f64..100.0, down in 1.0f64..100.0, t in 0u64..5_000, seed in any::<u64>()) {
        let proc_ = ChurnProcess::new(up, down).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let s = proc_.schedule(SimTime::from_secs(10_000), &mut rng);
        let at = SimTime::from_secs(t);
        if let Some(u) = s.next_up_at(at) {
            prop_assert!(u >= at);
            prop_assert!(s.is_up(u));
            // No toggle strictly between `at` and `u` yields an up state.
            for &tog in s.toggles() {
                if tog > at && tog < u {
                    prop_assert!(!s.is_up(tog));
                }
            }
        } else {
            prop_assert!(!s.is_up(at));
        }
    }
}
