//! Property tests: incremental tree repair converges to the same parent
//! assignment as a from-scratch canonical rebuild over the survivors — for
//! random topologies up to 1k nodes, single death batches and sequential
//! churn alike.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_net::repair::repair_after_deaths;
use pg_net::topology::{NodeId, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random geometric placement from a seed; density tuned so mid-size fields
/// are mostly connected but still shed fragments (both cases matter).
fn topo_from_seed(seed: u64, n: usize) -> Topology {
    let mut rng = StdRng::seed_from_u64(seed);
    let side = (n as f64).sqrt() * 12.0;
    Topology::random_geometric(n, side, side, 25.0, &mut rng)
}

/// Pick `k` distinct non-root victims from the currently-alive set.
fn pick_victims(alive: &[bool], k: usize, rng: &mut StdRng) -> Vec<NodeId> {
    let mut pool: Vec<u32> = (1..alive.len() as u32)
        .filter(|&i| alive[i as usize])
        .collect();
    let mut victims = Vec::new();
    for _ in 0..k.min(pool.len()) {
        let i = rng.gen_range(0..pool.len());
        victims.push(NodeId(pool.swap_remove(i)));
    }
    victims
}

fn assert_trees_equal(got: &pg_net::topology::RoutingTree, want: &pg_net::topology::RoutingTree) {
    assert_eq!(got.depth, want.depth, "depth mismatch");
    assert_eq!(got.parent, want.parent, "parent mismatch");
    assert_eq!(got.children, want.children, "children mismatch");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// One batch of deaths: repair == rebuild, and its stats add up.
    #[test]
    fn single_batch_matches_rebuild(
        seed in 0u64..1_000_000,
        n in 2usize..300,
        kill_frac in 0.0f64..0.3,
    ) {
        let topo = topo_from_seed(seed, n);
        let root = NodeId(0);
        let mut tree = topo.canonical_tree(root);
        let mut alive = vec![true; n];
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        let k = ((n - 1) as f64 * kill_frac) as usize;
        let victims = pick_victims(&alive, k, &mut rng);
        for v in &victims {
            alive[v.idx()] = false;
        }
        let stats = repair_after_deaths(&topo, &mut tree, &victims, |v| alive[v.idx()]);
        let want = topo.canonical_tree_filtered(root, |v| alive[v.idx()]);
        assert_trees_equal(&tree, &want);
        // Only victims attached to the tree count as detached deaths.
        prop_assert!(stats.dead <= victims.len());
        prop_assert!(stats.touched() <= n);
    }

    /// Sequential churn: several successive death batches, each repaired
    /// incrementally, never diverge from the from-scratch canonical tree.
    #[test]
    fn sequential_churn_matches_rebuild(
        seed in 0u64..1_000_000,
        n in 10usize..200,
        rounds in 1usize..6,
    ) {
        let topo = topo_from_seed(seed, n);
        let root = NodeId(0);
        let mut tree = topo.canonical_tree(root);
        let mut alive = vec![true; n];
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc0ffee);
        for _ in 0..rounds {
            let k = 1 + rng.gen_range(0..(n / 20).max(1));
            let victims = pick_victims(&alive, k, &mut rng);
            if victims.is_empty() {
                break;
            }
            for v in &victims {
                alive[v.idx()] = false;
            }
            repair_after_deaths(&topo, &mut tree, &victims, |v| alive[v.idx()]);
            let want = topo.canonical_tree_filtered(root, |v| alive[v.idx()]);
            assert_trees_equal(&tree, &want);
        }
    }

    /// Repair latency never exceeds the full-rebuild flood: the wavefront
    /// touches at most the depth range it recomputes.
    #[test]
    fn waves_bounded_by_rebuild(
        seed in 0u64..1_000_000,
        n in 10usize..200,
    ) {
        let topo = topo_from_seed(seed, n);
        let root = NodeId(0);
        let mut tree = topo.canonical_tree(root);
        let pre_height = tree.height();
        let mut alive = vec![true; n];
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
        let victims = pick_victims(&alive, 2, &mut rng);
        for v in &victims {
            alive[v.idx()] = false;
        }
        let stats = repair_after_deaths(&topo, &mut tree, &victims, |v| alive[v.idx()]);
        // New depths only grow; waves span [first recomputed level, new
        // height], so they cannot exceed the post-repair flood depth + 1,
        // and re-anchoring adds at most one more exchange.
        let rebuild_waves = tree.height().max(pre_height) + 1;
        prop_assert!(
            stats.waves <= rebuild_waves + 1,
            "waves {} vs rebuild {}",
            stats.waves,
            rebuild_waves,
        );
    }
}

/// Deterministic heavyweight case (outside proptest so it always runs at
/// full size): a 1k-node field, repeated churn, exact convergence.
#[test]
fn thousand_node_churn_converges() {
    let n = 1000;
    let topo = topo_from_seed(77, n);
    let root = NodeId(0);
    let mut tree = topo.canonical_tree(root);
    let mut alive = vec![true; n];
    let mut rng = StdRng::seed_from_u64(77);
    for round in 0..8 {
        let victims = pick_victims(&alive, 10, &mut rng);
        for v in &victims {
            alive[v.idx()] = false;
        }
        let stats = repair_after_deaths(&topo, &mut tree, &victims, |v| alive[v.idx()]);
        let want = topo.canonical_tree_filtered(root, |v| alive[v.idx()]);
        assert_eq!(tree.depth, want.depth, "round {round}");
        assert_eq!(tree.parent, want.parent, "round {round}");
        assert_eq!(tree.children, want.children, "round {round}");
        // Incremental repair must touch far fewer nodes than a rebuild.
        assert!(stats.touched() < n / 2, "round {round}: {stats:?}");
    }
}
