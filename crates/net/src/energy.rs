//! First-order radio energy model and finite batteries.
//!
//! §4 of the paper: "preserving the energy of the sensors is of prime
//! importance. So estimates of energy consumption of sensors to evaluate a
//! query with each of the above approach are desirable." The model here is
//! the standard first-order radio model from the literature the paper builds
//! on (LEACH, TAG): transmitting `k` bits over distance `d` costs
//!
//! ```text
//! E_tx(k, d) = E_elec·k + ε_fs·k·d²   (d <  d₀, free-space amplifier)
//!            = E_elec·k + ε_mp·k·d⁴   (d ≥ d₀, multipath amplifier)
//! E_rx(k)    = E_elec·k
//! ```
//!
//! with `d₀ = sqrt(ε_fs / ε_mp)` the crossover distance. CPU work costs a
//! per-operation energy, and idle listening a constant power draw.

/// Radio + CPU energy parameters for one node class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioModel {
    /// Electronics energy per bit, J/bit (both TX and RX paths).
    pub e_elec: f64,
    /// Free-space amplifier energy, J/bit/m².
    pub eps_fs: f64,
    /// Multipath amplifier energy, J/bit/m⁴.
    pub eps_mp: f64,
    /// CPU energy per elementary operation, J/op.
    pub e_cpu_per_op: f64,
    /// Idle listening power, W.
    pub idle_power: f64,
}

impl RadioModel {
    /// Canonical sensor-mote parameters (the values used across the
    /// LEACH/TAG literature): 50 nJ/bit electronics, 10 pJ/bit/m² free-space,
    /// 0.0013 pJ/bit/m⁴ multipath, 5 nJ/op CPU, 1 mW idle.
    pub fn mote() -> Self {
        RadioModel {
            e_elec: 50e-9,
            eps_fs: 10e-12,
            eps_mp: 0.0013e-12,
            e_cpu_per_op: 5e-9,
            idle_power: 1e-3,
        }
    }

    /// A handheld/PDA radio: same shape, beefier electronics, cheaper CPU
    /// energy per op (faster silicon doing more per joule).
    pub fn handheld() -> Self {
        RadioModel {
            e_elec: 80e-9,
            eps_fs: 12e-12,
            eps_mp: 0.0015e-12,
            e_cpu_per_op: 1e-9,
            idle_power: 50e-3,
        }
    }

    /// Amplifier crossover distance `d₀ = sqrt(ε_fs / ε_mp)`, metres.
    pub fn crossover_distance(&self) -> f64 {
        (self.eps_fs / self.eps_mp).sqrt()
    }

    /// Energy to transmit `bits` over `distance` metres, joules.
    ///
    /// # Panics
    /// Panics on negative distance.
    pub fn tx_energy(&self, bits: u64, distance: f64) -> f64 {
        assert!(distance >= 0.0, "negative distance");
        let k = bits as f64;
        let d0 = self.crossover_distance();
        let amp = if distance < d0 {
            self.eps_fs * distance * distance
        } else {
            let d2 = distance * distance;
            self.eps_mp * d2 * d2
        };
        self.e_elec * k + amp * k
    }

    /// Energy to receive `bits`, joules.
    pub fn rx_energy(&self, bits: u64) -> f64 {
        self.e_elec * bits as f64
    }

    /// Energy for `ops` elementary CPU operations, joules.
    pub fn cpu_energy(&self, ops: u64) -> f64 {
        self.e_cpu_per_op * ops as f64
    }

    /// Energy to idle-listen for `secs` seconds, joules.
    pub fn idle_energy(&self, secs: f64) -> f64 {
        self.idle_power * secs
    }
}

/// A finite energy reserve. Draining past empty marks the node dead; energy
/// never goes negative and a dead node stays dead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    capacity_j: f64,
    used_j: f64,
}

impl Battery {
    /// A battery holding `capacity_j` joules.
    ///
    /// # Panics
    /// Panics on non-positive capacity.
    pub fn new(capacity_j: f64) -> Self {
        assert!(capacity_j > 0.0, "battery capacity must be positive");
        Battery {
            capacity_j,
            used_j: 0.0,
        }
    }

    /// Total capacity, joules.
    pub fn capacity(&self) -> f64 {
        self.capacity_j
    }

    /// Energy consumed so far, joules (capped at capacity).
    pub fn used(&self) -> f64 {
        self.used_j.min(self.capacity_j)
    }

    /// Energy remaining, joules (never negative).
    pub fn remaining(&self) -> f64 {
        (self.capacity_j - self.used_j).max(0.0)
    }

    /// Remaining fraction in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        self.remaining() / self.capacity_j
    }

    /// True once the battery has been fully drained.
    pub fn is_dead(&self) -> bool {
        self.used_j >= self.capacity_j
    }

    /// Consume `joules`. Returns `true` if the node is still alive after the
    /// draw. A draw that crosses empty kills the node (the partial work is
    /// assumed lost, as in the standard lifetime experiments).
    ///
    /// # Panics
    /// Panics on negative draw.
    pub fn drain(&mut self, joules: f64) -> bool {
        assert!(joules >= 0.0, "negative energy draw: {joules}");
        self.used_j += joules;
        !self.is_dead()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_scales_linearly_in_bits() {
        let m = RadioModel::mote();
        let e1 = m.tx_energy(1_000, 30.0);
        let e2 = m.tx_energy(2_000, 30.0);
        assert!((e2 - 2.0 * e1).abs() < 1e-18);
    }

    #[test]
    fn tx_monotone_in_distance() {
        let m = RadioModel::mote();
        let mut last = 0.0;
        for d in [0.0, 10.0, 50.0, 87.0, 88.0, 150.0, 400.0] {
            let e = m.tx_energy(8_000, d);
            assert!(e >= last, "energy decreased at d={d}");
            last = e;
        }
    }

    #[test]
    fn amplifier_regions_agree_at_crossover() {
        let m = RadioModel::mote();
        let d0 = m.crossover_distance();
        let k = 1e4;
        let fs = m.eps_fs * d0 * d0 * k;
        let mp = m.eps_mp * d0.powi(4) * k;
        assert!((fs - mp).abs() / fs < 1e-9);
    }

    #[test]
    fn rx_is_distance_free_and_cheaper_than_long_tx() {
        let m = RadioModel::mote();
        assert_eq!(m.rx_energy(8_000), m.e_elec * 8_000.0);
        assert!(m.rx_energy(8_000) < m.tx_energy(8_000, 100.0));
    }

    #[test]
    fn cpu_and_idle_energy() {
        let m = RadioModel::mote();
        assert!((m.cpu_energy(1_000_000) - 5e-3).abs() < 1e-12);
        assert!((m.idle_energy(2.0) - 2e-3).abs() < 1e-12);
    }

    #[test]
    fn battery_drains_and_dies() {
        let mut b = Battery::new(1.0);
        assert!(b.drain(0.4));
        assert!((b.remaining() - 0.6).abs() < 1e-12);
        assert!((b.fraction() - 0.6).abs() < 1e-12);
        assert!(!b.drain(0.7)); // crosses empty
        assert!(b.is_dead());
        assert_eq!(b.remaining(), 0.0);
        assert!(!b.drain(0.1)); // stays dead
        assert_eq!(b.remaining(), 0.0);
    }

    #[test]
    #[should_panic(expected = "negative energy draw")]
    fn negative_drain_panics() {
        Battery::new(1.0).drain(-0.1);
    }
}
