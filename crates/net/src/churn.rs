//! Service/node availability churn.
//!
//! §3: "Services may be coming up and going down frequently in those
//! environments … short-lived services which stay in the vicinity for a
//! finite amount of time and then disappear." A [`ChurnProcess`] is a
//! two-state (up/down) continuous-time process with exponentially
//! distributed sojourn times; [`ChurnSchedule`] pre-samples the toggle
//! timeline so callers can query availability at any instant
//! deterministically.

use crate::error::InvalidConfig;
use pg_sim::{Duration, SimTime};
use rand::Rng;

/// Parameters of an on/off availability process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnProcess {
    /// Mean time a service stays up, seconds.
    pub mean_up_s: f64,
    /// Mean time a service stays down, seconds.
    pub mean_down_s: f64,
}

impl ChurnProcess {
    /// Construct, validating that both means are positive and finite.
    pub fn new(mean_up_s: f64, mean_down_s: f64) -> Result<Self, InvalidConfig> {
        let valid = |x: f64| x.is_finite() && x > 0.0;
        if !valid(mean_up_s) || !valid(mean_down_s) {
            return Err(InvalidConfig(format!(
                "churn sojourn means must be positive and finite \
                 (up {mean_up_s}, down {mean_down_s})"
            )));
        }
        Ok(ChurnProcess {
            mean_up_s,
            mean_down_s,
        })
    }

    /// A stable fixed-grid service: ~3 h up, 1 min down.
    pub fn stable() -> Self {
        ChurnProcess {
            mean_up_s: 10_800.0,
            mean_down_s: 60.0,
        }
    }

    /// Long-run fraction of time the service is up.
    pub fn availability(&self) -> f64 {
        self.mean_up_s / (self.mean_up_s + self.mean_down_s)
    }

    /// Sample an exponential sojourn with the given mean.
    fn sample_exp<R: Rng>(mean: f64, rng: &mut R) -> f64 {
        // Inverse CDF; 1 - U avoids ln(0).
        -mean * (1.0 - rng.gen::<f64>()).ln()
    }

    /// Pre-sample the availability timeline from `t = 0` to `horizon`.
    /// The service starts up with probability equal to its long-run
    /// availability (stationary start).
    pub fn schedule<R: Rng>(&self, horizon: SimTime, rng: &mut R) -> ChurnSchedule {
        let mut up = rng.gen::<f64>() < self.availability();
        let initial_up = up;
        let mut t = 0.0;
        let horizon_s = horizon.as_secs_f64();
        let mut toggles = Vec::new();
        loop {
            let mean = if up { self.mean_up_s } else { self.mean_down_s };
            t += Self::sample_exp(mean, rng);
            if t >= horizon_s {
                break;
            }
            up = !up;
            toggles.push(SimTime::from_secs_f64(t));
        }
        ChurnSchedule {
            initial_up,
            toggles,
        }
    }
}

/// A sampled availability timeline: the state flips at each toggle instant.
#[derive(Debug, Clone)]
pub struct ChurnSchedule {
    initial_up: bool,
    toggles: Vec<SimTime>,
}

impl ChurnSchedule {
    /// A schedule that is always up (for baseline fixed-grid services).
    pub fn always_up() -> Self {
        ChurnSchedule {
            initial_up: true,
            toggles: Vec::new(),
        }
    }

    /// Build a schedule from an explicit sorted toggle list (tests and
    /// hand-crafted scenarios). Rejects toggle lists that are not strictly
    /// ascending.
    pub fn from_toggles(initial_up: bool, toggles: Vec<SimTime>) -> Result<Self, InvalidConfig> {
        if !toggles.windows(2).all(|w| w[0] < w[1]) {
            return Err(InvalidConfig::new(
                "churn toggles must be strictly ascending",
            ));
        }
        Ok(ChurnSchedule {
            initial_up,
            toggles,
        })
    }

    /// Is the service up at instant `t`?
    pub fn is_up(&self, t: SimTime) -> bool {
        // Toggles are sorted; count how many occurred at or before t.
        let flips = self.toggles.partition_point(|&x| x <= t);
        self.initial_up ^ (flips % 2 == 1)
    }

    /// The toggle instants (sorted ascending).
    pub fn toggles(&self) -> &[SimTime] {
        &self.toggles
    }

    /// Earliest instant `>= t` at which the service is up: `t` itself when
    /// already up, otherwise the next toggle (states alternate, so the next
    /// toggle after a down period brings the service back). `None` when the
    /// service never comes back within the sampled horizon.
    pub fn next_up_at(&self, t: SimTime) -> Option<SimTime> {
        if self.is_up(t) {
            return Some(t);
        }
        self.toggles.iter().copied().find(|&x| x > t)
    }

    /// Does the service stay up throughout `[start, start + span]`?
    pub fn up_throughout(&self, start: SimTime, span: Duration) -> bool {
        if !self.is_up(start) {
            return false;
        }
        let end = start + span;
        // Any toggle strictly inside the window takes the service down.
        let lo = self.toggles.partition_point(|&x| x <= start);
        let hi = self.toggles.partition_point(|&x| x <= end);
        lo == hi
    }

    /// Fraction of `[0, horizon]` the service is up.
    pub fn uptime_fraction(&self, horizon: SimTime) -> f64 {
        let mut up = self.initial_up;
        let mut t = SimTime::ZERO;
        let mut up_time = Duration::ZERO;
        for &tog in &self.toggles {
            if tog > horizon {
                break;
            }
            if up {
                up_time += tog - t;
            }
            t = tog;
            up = !up;
        }
        if up && horizon > t {
            up_time += horizon - t;
        }
        up_time.as_secs_f64() / horizon.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn availability_formula() {
        let p = ChurnProcess::new(90.0, 10.0).unwrap();
        assert!((p.availability() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn bad_parameters_are_rejected_not_panicked() {
        assert!(ChurnProcess::new(0.0, 10.0).is_err());
        assert!(ChurnProcess::new(10.0, -1.0).is_err());
        assert!(ChurnProcess::new(f64::NAN, 1.0).is_err());
        assert!(ChurnSchedule::from_toggles(
            true,
            vec![SimTime::from_secs(5), SimTime::from_secs(5)]
        )
        .is_err());
    }

    #[test]
    fn empirical_uptime_matches_availability() {
        let p = ChurnProcess::new(60.0, 30.0).unwrap();
        let horizon = SimTime::from_secs(500_000);
        let mut rng = StdRng::seed_from_u64(21);
        let mut total = 0.0;
        for _ in 0..10 {
            total += p.schedule(horizon, &mut rng).uptime_fraction(horizon);
        }
        let mean = total / 10.0;
        assert!(
            (mean - 2.0 / 3.0).abs() < 0.03,
            "empirical uptime {mean} vs expected 0.667"
        );
    }

    #[test]
    fn is_up_flips_at_toggles() {
        let s = ChurnSchedule {
            initial_up: true,
            toggles: vec![SimTime::from_secs(10), SimTime::from_secs(20)],
        };
        assert!(s.is_up(SimTime::from_secs(5)));
        assert!(!s.is_up(SimTime::from_secs(15)));
        assert!(s.is_up(SimTime::from_secs(25)));
    }

    #[test]
    fn up_throughout_detects_mid_window_toggle() {
        let s = ChurnSchedule {
            initial_up: true,
            toggles: vec![SimTime::from_secs(10)],
        };
        assert!(s.up_throughout(SimTime::from_secs(2), Duration::from_secs(5)));
        assert!(!s.up_throughout(SimTime::from_secs(8), Duration::from_secs(5)));
        assert!(!s.up_throughout(SimTime::from_secs(12), Duration::from_secs(1)));
    }

    #[test]
    fn always_up_never_fails() {
        let s = ChurnSchedule::always_up();
        assert!(s.is_up(SimTime::from_secs(1_000_000)));
        assert!(s.up_throughout(SimTime::ZERO, Duration::from_secs(1_000_000)));
        assert_eq!(s.uptime_fraction(SimTime::from_secs(100)), 1.0);
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let p = ChurnProcess::new(10.0, 5.0).unwrap();
        let h = SimTime::from_secs(1_000);
        let a = p.schedule(h, &mut StdRng::seed_from_u64(3));
        let b = p.schedule(h, &mut StdRng::seed_from_u64(3));
        assert_eq!(a.toggles(), b.toggles());
    }

    #[test]
    fn uptime_fraction_of_always_down_tail() {
        // Starts up, goes down at t=50, never returns within horizon 100.
        let s = ChurnSchedule {
            initial_up: true,
            toggles: vec![SimTime::from_secs(50)],
        };
        assert!((s.uptime_fraction(SimTime::from_secs(100)) - 0.5).abs() < 1e-12);
    }
}
