//! Minimal 3-D geometry for node placement.

use std::fmt;

/// A point in metres. Sensors in the building scenario use all three axes;
/// flat deployments leave `z = 0`.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// East-west coordinate, metres.
    pub x: f64,
    /// North-south coordinate, metres.
    pub y: f64,
    /// Height, metres.
    pub z: f64,
}

impl Point {
    /// Construct a 3-D point.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Point { x, y, z }
    }

    /// Construct a point in the `z = 0` plane.
    pub const fn flat(x: f64, y: f64) -> Self {
        Point { x, y, z: 0.0 }
    }

    /// Euclidean distance to `other`, metres.
    pub fn distance(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Squared Euclidean distance (avoids the sqrt for comparisons).
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        dx * dx + dy * dy + dz * dz
    }

    /// Linear interpolation from `self` toward `other` by `t ∈ [0, 1]`.
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
            z: self.z + (other.z - self.z) * t,
        }
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2}, {:.2})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::flat(0.0, 0.0);
        let b = Point::new(3.0, 4.0, 12.0);
        assert!((a.distance(&b) - 13.0).abs() < 1e-12);
        assert!((a.distance_sq(&b) - 169.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0, 3.0);
        let b = Point::new(-4.0, 0.5, 9.0);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::flat(0.0, 0.0);
        let b = Point::flat(10.0, 20.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point::flat(5.0, 10.0));
    }
}
