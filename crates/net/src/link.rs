//! Link model: bandwidth, propagation latency, loss.
//!
//! §1 of the paper: the runtime must handle "low bandwidth, high latency,
//! frequent disconnections". A [`LinkModel`] answers two questions: how long
//! does a payload take to cross this link class, and did it arrive.

use crate::error::InvalidConfig;
use pg_sim::Duration;
use rand::Rng;

/// Parameters for one class of link (sensor radio, 802.11, Bluetooth,
/// wired backhaul, …).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Usable bandwidth, bits/second.
    pub bandwidth_bps: f64,
    /// Fixed per-hop latency (propagation + MAC overhead).
    pub latency: Duration,
    /// Independent per-transmission loss probability in `[0, 1)`.
    pub loss_prob: f64,
}

impl LinkModel {
    /// Construct a link model, validating parameters: bandwidth must be
    /// positive and the loss probability inside `[0, 1)` (a link that loses
    /// everything can never deliver and would hang retry loops).
    pub fn new(
        bandwidth_bps: f64,
        latency: Duration,
        loss_prob: f64,
    ) -> Result<Self, InvalidConfig> {
        // NaN fails this comparison too, which is exactly what we want.
        if bandwidth_bps.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(InvalidConfig(format!(
                "link bandwidth must be positive: {bandwidth_bps}"
            )));
        }
        if !(0.0..1.0).contains(&loss_prob) {
            return Err(InvalidConfig(format!(
                "loss probability must be in [0, 1): {loss_prob}"
            )));
        }
        Ok(LinkModel {
            bandwidth_bps,
            latency,
            loss_prob,
        })
    }

    /// A sensor-mote radio: 250 kbit/s, 5 ms per hop, 2 % loss
    /// (802.15.4-class).
    pub fn sensor_radio() -> Self {
        LinkModel {
            bandwidth_bps: 250e3,
            latency: Duration::from_millis(5),
            loss_prob: 0.02,
        }
    }

    /// An 802.11 link between handhelds/base station: 11 Mbit/s, 2 ms, 1 %.
    pub fn wifi() -> Self {
        LinkModel {
            bandwidth_bps: 11e6,
            latency: Duration::from_millis(2),
            loss_prob: 0.01,
        }
    }

    /// A Bluetooth proximity link: 700 kbit/s, 8 ms, 3 %.
    pub fn bluetooth() -> Self {
        LinkModel {
            bandwidth_bps: 700e3,
            latency: Duration::from_millis(8),
            loss_prob: 0.03,
        }
    }

    /// The wired backhaul from the base station into the grid:
    /// 100 Mbit/s, 10 ms (WAN), lossless at this abstraction.
    pub fn wired_backhaul() -> Self {
        LinkModel {
            bandwidth_bps: 100e6,
            latency: Duration::from_millis(10),
            loss_prob: 0.0,
        }
    }

    /// Time for `bytes` to cross one hop of this link: serialization at the
    /// link bandwidth plus the fixed latency.
    pub fn tx_time(&self, bytes: u64) -> Duration {
        let ser = (bytes as f64 * 8.0) / self.bandwidth_bps;
        self.latency + Duration::from_secs_f64(ser)
    }

    /// Sample whether a single transmission attempt is delivered.
    pub fn delivered<R: Rng>(&self, rng: &mut R) -> bool {
        self.loss_prob == 0.0 || rng.gen::<f64>() >= self.loss_prob
    }

    /// Expected number of attempts until delivery under independent loss
    /// (geometric distribution): `1 / (1 - p)`.
    pub fn expected_attempts(&self) -> f64 {
        1.0 / (1.0 - self.loss_prob)
    }

    /// Expected one-hop delivery time for `bytes` with retransmissions.
    pub fn expected_tx_time(&self, bytes: u64) -> Duration {
        self.tx_time(bytes).mul_f64(self.expected_attempts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tx_time_includes_serialization_and_latency() {
        let l = LinkModel::new(8_000.0, Duration::from_millis(10), 0.0).unwrap();
        // 1000 bytes = 8000 bits at 8 kbit/s = 1 s + 10 ms latency.
        assert_eq!(l.tx_time(1_000), Duration::from_millis(1_010));
    }

    #[test]
    fn tx_time_monotone_in_size() {
        let l = LinkModel::sensor_radio();
        assert!(l.tx_time(100) < l.tx_time(1_000));
        assert!(l.tx_time(1_000) < l.tx_time(10_000));
    }

    #[test]
    fn lossless_link_always_delivers() {
        let l = LinkModel::wired_backhaul();
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| l.delivered(&mut rng)));
        assert_eq!(l.expected_attempts(), 1.0);
    }

    #[test]
    fn loss_rate_matches_parameter() {
        let l = LinkModel::new(1e6, Duration::ZERO, 0.25).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let delivered = (0..20_000).filter(|_| l.delivered(&mut rng)).count();
        let rate = delivered as f64 / 20_000.0;
        assert!((rate - 0.75).abs() < 0.02, "delivery rate {rate}");
        assert!((l.expected_attempts() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn expected_tx_time_scales_with_loss() {
        let lossy = LinkModel::new(1e6, Duration::from_millis(1), 0.5).unwrap();
        assert_eq!(
            lossy.expected_tx_time(125).as_nanos(),
            lossy.tx_time(125).mul_f64(2.0).as_nanos()
        );
    }

    #[test]
    fn total_loss_rejected() {
        let err = LinkModel::new(1e6, Duration::ZERO, 1.0).unwrap_err();
        assert!(err.to_string().contains("loss probability"), "{err}");
        assert!(LinkModel::new(0.0, Duration::ZERO, 0.1).is_err());
    }
}
