//! Node placements and range-based connectivity graphs.
//!
//! §4: "All networks may not be of the same size … Different networks would
//! have different network topology." A [`Topology`] is an immutable set of
//! node positions plus a communication range; adjacency is derived. Upper
//! layers (clustering, aggregation trees, composition) are built on the
//! graph queries here.

use crate::geom::Point;
use rand::Rng;
use std::collections::VecDeque;
use std::fmt;

/// Index of a node within one [`Topology`]. Dense `u32` indices keep
/// adjacency lists compact (per the type-size guidance in the perf guides).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as a `usize` for slice access.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An immutable node placement with range-derived adjacency.
///
/// Adjacency is stored in CSR (compressed sparse row) form — one flat
/// `targets` array plus per-node offsets — instead of a `Vec<Vec<NodeId>>`.
/// At 10k–100k nodes the per-node allocations of the nested form dominate
/// build time and scatter neighbour lists across the heap; the flat form is
/// one allocation and every `neighbors()` call is a contiguous slice.
#[derive(Debug, Clone)]
pub struct Topology {
    positions: Vec<Point>,
    range: f64,
    /// CSR offsets: node `i`'s neighbours live at
    /// `adj_targets[adj_offsets[i]..adj_offsets[i + 1]]`.
    adj_offsets: Vec<usize>,
    /// CSR targets, ascending by id within each node's slice.
    adj_targets: Vec<NodeId>,
}

impl Topology {
    /// Build a topology from explicit positions and a communication range.
    ///
    /// Candidate pairs come from a uniform spatial grid with cell edge equal
    /// to the communication range, so only the 27 surrounding cells are
    /// scanned per node: O(n + m) for bounded-density placements instead of
    /// the all-pairs O(n²). In the multi-floor building scenario the z axis
    /// of the grid shards the field by floor, so a floor's neighbour queries
    /// never touch bins of non-adjacent floors. Neighbour lists are sorted
    /// ascending by id — the same order the all-pairs build produced — so
    /// every tree shape and baseline derived from adjacency is unchanged.
    ///
    /// # Panics
    /// Panics on an empty placement or non-positive range.
    pub fn from_positions(positions: Vec<Point>, range: f64) -> Self {
        assert!(!positions.is_empty(), "topology needs at least one node");
        assert!(range > 0.0, "communication range must be positive");
        assert!(range.is_finite(), "communication range must be finite");
        let n = positions.len();
        let range_sq = range * range;

        // Bin nodes into range-sized cells keyed by integer cell coords.
        let mut min = positions[0];
        for p in &positions[1..] {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            min.z = min.z.min(p.z);
        }
        let cell_of = |p: &Point| -> (i64, i64, i64) {
            (
                ((p.x - min.x) / range).floor() as i64,
                ((p.y - min.y) / range).floor() as i64,
                ((p.z - min.z) / range).floor() as i64,
            )
        };
        let mut bins: std::collections::HashMap<(i64, i64, i64), Vec<u32>> =
            std::collections::HashMap::new();
        for (i, p) in positions.iter().enumerate() {
            bins.entry(cell_of(p)).or_default().push(i as u32);
        }

        // Gather each node's in-range neighbours from its 27 surrounding
        // cells; sort ascending so the lists match the historical all-pairs
        // build exactly.
        let mut adj_offsets = Vec::with_capacity(n + 1);
        let mut adj_targets = Vec::new();
        let mut scratch: Vec<u32> = Vec::new();
        adj_offsets.push(0usize);
        for (i, p) in positions.iter().enumerate() {
            scratch.clear();
            let (cx, cy, cz) = cell_of(p);
            for dx in -1..=1 {
                for dy in -1..=1 {
                    for dz in -1..=1 {
                        let Some(bin) = bins.get(&(cx + dx, cy + dy, cz + dz)) else {
                            continue;
                        };
                        for &j in bin {
                            if j as usize != i && p.distance_sq(&positions[j as usize]) <= range_sq
                            {
                                scratch.push(j);
                            }
                        }
                    }
                }
            }
            scratch.sort_unstable();
            adj_targets.extend(scratch.iter().map(|&j| NodeId(j)));
            adj_offsets.push(adj_targets.len());
        }
        Topology {
            positions,
            range,
            adj_offsets,
            adj_targets,
        }
    }

    /// `n` nodes placed uniformly at random in a `width × height` metre
    /// rectangle (the classic random geometric graph).
    pub fn random_geometric<R: Rng>(
        n: usize,
        width: f64,
        height: f64,
        range: f64,
        rng: &mut R,
    ) -> Self {
        let positions = (0..n)
            .map(|_| Point::flat(rng.gen::<f64>() * width, rng.gen::<f64>() * height))
            .collect();
        Topology::from_positions(positions, range)
    }

    /// A regular `cols × rows` grid with `spacing` metres between neighbours.
    pub fn grid(cols: usize, rows: usize, spacing: f64, range: f64) -> Self {
        let positions = (0..rows)
            .flat_map(|r| {
                (0..cols).map(move |c| Point::flat(c as f64 * spacing, r as f64 * spacing))
            })
            .collect();
        Topology::from_positions(positions, range)
    }

    /// The paper's building scenario: `floors` floors of `cols × rows`
    /// sensors, `spacing` metres apart in-plane, `floor_height` metres
    /// between floors.
    pub fn building(
        floors: usize,
        cols: usize,
        rows: usize,
        spacing: f64,
        floor_height: f64,
        range: f64,
    ) -> Self {
        let positions = (0..floors)
            .flat_map(|f| {
                (0..rows).flat_map(move |r| {
                    (0..cols).map(move |c| {
                        Point::new(
                            c as f64 * spacing,
                            r as f64 * spacing,
                            f as f64 * floor_height,
                        )
                    })
                })
            })
            .collect();
        Topology::from_positions(positions, range)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Always false — construction rejects empty placements.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterate over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.positions.len() as u32).map(NodeId)
    }

    /// The communication range, metres.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Position of `id`.
    pub fn position(&self, id: NodeId) -> Point {
        self.positions[id.idx()]
    }

    /// In-range neighbours of `id`, ascending by id.
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        &self.adj_targets[self.adj_offsets[id.idx()]..self.adj_offsets[id.idx() + 1]]
    }

    /// Number of in-range neighbours of `id`.
    pub fn degree(&self, id: NodeId) -> usize {
        self.adj_offsets[id.idx() + 1] - self.adj_offsets[id.idx()]
    }

    /// Euclidean distance between two nodes, metres.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.positions[a.idx()].distance(&self.positions[b.idx()])
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj_targets.len() / 2
    }

    /// The node closest to `p` (ties broken by lowest id).
    pub fn nearest_to(&self, p: Point) -> NodeId {
        let mut best = NodeId(0);
        let mut best_d = f64::INFINITY;
        for (i, pos) in self.positions.iter().enumerate() {
            let d = pos.distance_sq(&p);
            if d < best_d {
                best_d = d;
                best = NodeId(i as u32);
            }
        }
        best
    }

    /// Hop counts from `root` to every node by BFS (`None` = unreachable).
    // BFS invariant: a node is enqueued only after its hop count is set.
    #[allow(clippy::expect_used)]
    pub fn hops_from(&self, root: NodeId) -> Vec<Option<u32>> {
        let mut hops = vec![None; self.len()];
        hops[root.idx()] = Some(0);
        let mut q = VecDeque::from([root]);
        while let Some(u) = q.pop_front() {
            let h = hops[u.idx()].expect("queued node has hops");
            for &v in self.neighbors(u) {
                if hops[v.idx()].is_none() {
                    hops[v.idx()] = Some(h + 1);
                    q.push_back(v);
                }
            }
        }
        hops
    }

    /// True when every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        self.hops_from(NodeId(0)).iter().all(Option::is_some)
    }

    /// Shortest hop path from `from` to `to` (inclusive of both endpoints),
    /// or `None` when disconnected. Ties broken deterministically by
    /// adjacency order.
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut prev: Vec<Option<NodeId>> = vec![None; self.len()];
        let mut seen = vec![false; self.len()];
        seen[from.idx()] = true;
        let mut q = VecDeque::from([from]);
        while let Some(u) = q.pop_front() {
            for &v in self.neighbors(u) {
                if !seen[v.idx()] {
                    seen[v.idx()] = true;
                    prev[v.idx()] = Some(u);
                    if v == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while let Some(p) = prev[cur.idx()] {
                            path.push(p);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    q.push_back(v);
                }
            }
        }
        None
    }

    /// Build the BFS shortest-path tree rooted at `root` (the structure TAG
    /// imposes on the network). Unreachable nodes have no parent and depth
    /// `None`.
    // BFS invariant: a node is enqueued only after its depth is set.
    #[allow(clippy::expect_used)]
    pub fn spanning_tree(&self, root: NodeId) -> RoutingTree {
        let mut parent: Vec<Option<NodeId>> = vec![None; self.len()];
        let mut depth: Vec<Option<u32>> = vec![None; self.len()];
        depth[root.idx()] = Some(0);
        let mut q = VecDeque::from([root]);
        while let Some(u) = q.pop_front() {
            let d = depth[u.idx()].expect("queued node has depth");
            for &v in self.neighbors(u) {
                if depth[v.idx()].is_none() {
                    depth[v.idx()] = Some(d + 1);
                    parent[v.idx()] = Some(u);
                    q.push_back(v);
                }
            }
        }
        let mut children = vec![Vec::new(); self.len()];
        for (i, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                children[p.idx()].push(NodeId(i as u32));
            }
        }
        RoutingTree {
            root,
            parent,
            children,
            depth,
        }
    }

    /// Build the *canonical* shortest-path tree rooted at `root`: every
    /// node's depth is its BFS distance and its parent is the lowest-id
    /// neighbour one hop closer to the root. Unlike [`Self::spanning_tree`]
    /// (whose parent choice depends on BFS discovery order), the canonical
    /// parent is a pure local function of the depth field — which is what
    /// lets incremental repair after node deaths provably converge to the
    /// same tree a from-scratch rebuild would produce.
    pub fn canonical_tree(&self, root: NodeId) -> RoutingTree {
        self.canonical_tree_filtered(root, |_| true)
    }

    /// [`Self::canonical_tree`] restricted to nodes where `alive` holds.
    /// Dead nodes get no depth and no parent; alive nodes only reachable
    /// through dead ones are likewise left unattached.
    ///
    /// # Panics
    /// Panics if `root` itself is not alive.
    pub fn canonical_tree_filtered<F: Fn(NodeId) -> bool>(
        &self,
        root: NodeId,
        alive: F,
    ) -> RoutingTree {
        assert!(alive(root), "canonical tree root must be alive");
        let mut depth: Vec<Option<u32>> = vec![None; self.len()];
        depth[root.idx()] = Some(0);
        let mut q = VecDeque::from([root]);
        while let Some(u) = q.pop_front() {
            // BFS invariant: a node is enqueued only after its depth is set.
            #[allow(clippy::expect_used)]
            let d = depth[u.idx()].expect("queued node has depth");
            for &v in self.neighbors(u) {
                if depth[v.idx()].is_none() && alive(v) {
                    depth[v.idx()] = Some(d + 1);
                    q.push_back(v);
                }
            }
        }
        let mut parent: Vec<Option<NodeId>> = vec![None; self.len()];
        let mut children = vec![Vec::new(); self.len()];
        for i in 0..self.len() {
            let v = NodeId(i as u32);
            let Some(d) = depth[i] else { continue };
            if d == 0 {
                continue;
            }
            // Neighbour lists are ascending, so the first hit is lowest-id.
            let p = self
                .neighbors(v)
                .iter()
                .copied()
                .find(|u| depth[u.idx()] == Some(d - 1));
            parent[i] = p;
            if let Some(p) = p {
                children[p.idx()].push(v);
            }
        }
        RoutingTree {
            root,
            parent,
            children,
            depth,
        }
    }
}

/// A rooted spanning tree over a [`Topology`] (aggregation/collection tree).
#[derive(Debug, Clone)]
pub struct RoutingTree {
    /// The sink/base-station node.
    pub root: NodeId,
    /// Parent of each node (`None` for the root and unreachable nodes).
    pub parent: Vec<Option<NodeId>>,
    /// Children of each node.
    pub children: Vec<Vec<NodeId>>,
    /// Hop depth of each node (`None` = unreachable).
    pub depth: Vec<Option<u32>>,
}

impl RoutingTree {
    /// Number of nodes actually attached to the tree (root included).
    pub fn covered(&self) -> usize {
        self.depth.iter().filter(|d| d.is_some()).count()
    }

    /// Maximum depth over attached nodes.
    pub fn height(&self) -> u32 {
        self.depth.iter().flatten().copied().max().unwrap_or(0)
    }

    /// Nodes in leaves-first (deepest-first) order — the order in which
    /// epoch-based in-network aggregation proceeds up the tree.
    // The filter above keeps only nodes whose depth is Some.
    #[allow(clippy::expect_used)]
    pub fn bottom_up_order(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = (0..self.parent.len() as u32)
            .map(NodeId)
            .filter(|n| self.depth[n.idx()].is_some())
            .collect();
        ids.sort_by_key(|n| std::cmp::Reverse(self.depth[n.idx()].expect("filtered")));
        ids
    }

    /// Path from `node` up to the root (inclusive). `None` if unattached.
    pub fn path_to_root(&self, node: NodeId) -> Option<Vec<NodeId>> {
        self.depth[node.idx()]?;
        let mut path = vec![node];
        let mut cur = node;
        while let Some(p) = self.parent[cur.idx()] {
            path.push(p);
            cur = p;
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line(n: usize) -> Topology {
        // Nodes at x = 0, 10, 20, ... with range 15: a path graph.
        let pts = (0..n).map(|i| Point::flat(i as f64 * 10.0, 0.0)).collect();
        Topology::from_positions(pts, 15.0)
    }

    #[test]
    fn adjacency_is_range_based_and_symmetric() {
        let t = line(5);
        assert_eq!(t.neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(t.neighbors(NodeId(2)), &[NodeId(1), NodeId(3)]);
        for a in t.nodes() {
            for &b in t.neighbors(a) {
                assert!(t.neighbors(b).contains(&a), "asymmetric edge {a}-{b}");
            }
        }
        assert_eq!(t.edge_count(), 4);
    }

    #[test]
    fn grid_topology_shape() {
        let t = Topology::grid(4, 3, 10.0, 10.5);
        assert_eq!(t.len(), 12);
        // Inner nodes of a 4-wide grid have 4 neighbours at this range.
        assert_eq!(t.neighbors(NodeId(5)).len(), 4);
        assert!(t.is_connected());
    }

    #[test]
    fn building_spans_floors() {
        let t = Topology::building(3, 2, 2, 5.0, 4.0, 6.0);
        assert_eq!(t.len(), 12);
        assert!(t.is_connected());
        // A node on floor 0 reaches its counterpart on floor 1 (4 m < 6 m).
        assert!(t.neighbors(NodeId(0)).contains(&NodeId(4)));
    }

    #[test]
    fn hops_and_paths_on_a_line() {
        let t = line(6);
        let hops = t.hops_from(NodeId(0));
        assert_eq!(hops, (0..6).map(|i| Some(i as u32)).collect::<Vec<_>>());
        let p = t.shortest_path(NodeId(0), NodeId(5)).unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p[0], NodeId(0));
        assert_eq!(p[5], NodeId(5));
        assert_eq!(t.shortest_path(NodeId(3), NodeId(3)), Some(vec![NodeId(3)]));
    }

    #[test]
    fn disconnected_components_detected() {
        let pts = vec![
            Point::flat(0.0, 0.0),
            Point::flat(10.0, 0.0),
            Point::flat(100.0, 0.0),
        ];
        let t = Topology::from_positions(pts, 15.0);
        assert!(!t.is_connected());
        assert_eq!(t.shortest_path(NodeId(0), NodeId(2)), None);
        assert_eq!(t.hops_from(NodeId(0))[2], None);
    }

    #[test]
    fn spanning_tree_structure() {
        let t = line(5);
        let tree = t.spanning_tree(NodeId(2));
        assert_eq!(tree.covered(), 5);
        assert_eq!(tree.height(), 2);
        assert_eq!(tree.parent[0], Some(NodeId(1)));
        assert_eq!(tree.parent[1], Some(NodeId(2)));
        assert_eq!(tree.parent[2], None);
        assert_eq!(tree.children[2], vec![NodeId(1), NodeId(3)]);
        let order = tree.bottom_up_order();
        // Deepest nodes (0 and 4, depth 2) come before depth-1 before root.
        assert_eq!(tree.depth[order[0].idx()], Some(2));
        assert_eq!(*order.last().unwrap(), NodeId(2));
    }

    #[test]
    fn path_to_root_follows_parents() {
        let t = line(4);
        let tree = t.spanning_tree(NodeId(0));
        assert_eq!(
            tree.path_to_root(NodeId(3)).unwrap(),
            vec![NodeId(3), NodeId(2), NodeId(1), NodeId(0)]
        );
    }

    #[test]
    fn nearest_to_picks_closest() {
        let t = line(5);
        assert_eq!(t.nearest_to(Point::flat(21.0, 3.0)), NodeId(2));
        assert_eq!(t.nearest_to(Point::flat(-50.0, 0.0)), NodeId(0));
    }

    #[test]
    fn random_geometric_is_deterministic_per_seed() {
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let a = Topology::random_geometric(50, 100.0, 100.0, 20.0, &mut r1);
        let b = Topology::random_geometric(50, 100.0, 100.0, 20.0, &mut r2);
        for n in a.nodes() {
            assert_eq!(a.position(n), b.position(n));
        }
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_topology_rejected() {
        Topology::from_positions(vec![], 10.0);
    }

    #[test]
    fn cell_binned_adjacency_matches_all_pairs() {
        // The CSR build must reproduce the historical O(n²) build exactly:
        // same neighbour sets, ascending order.
        let mut rng = StdRng::seed_from_u64(42);
        let pts: Vec<Point> = (0..300)
            .map(|_| {
                Point::new(
                    rng.gen::<f64>() * 120.0,
                    rng.gen::<f64>() * 80.0,
                    rng.gen::<f64>() * 12.0,
                )
            })
            .collect();
        let range = 14.0;
        let t = Topology::from_positions(pts.clone(), range);
        let range_sq = range * range;
        for i in 0..pts.len() {
            let mut want: Vec<NodeId> = (0..pts.len())
                .filter(|&j| j != i && pts[i].distance_sq(&pts[j]) <= range_sq)
                .map(|j| NodeId(j as u32))
                .collect();
            want.sort_unstable();
            assert_eq!(t.neighbors(NodeId(i as u32)), &want[..], "node {i}");
            assert_eq!(t.degree(NodeId(i as u32)), want.len());
        }
    }

    #[test]
    fn canonical_tree_depths_match_bfs_and_parents_are_min_id() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Topology::random_geometric(120, 100.0, 100.0, 18.0, &mut rng);
        let root = NodeId(0);
        let canon = t.canonical_tree(root);
        let bfs = t.spanning_tree(root);
        assert_eq!(canon.depth, bfs.depth, "canonical depths are BFS depths");
        for v in t.nodes() {
            let Some(d) = canon.depth[v.idx()] else {
                assert_eq!(canon.parent[v.idx()], None);
                continue;
            };
            if d == 0 {
                assert_eq!(canon.parent[v.idx()], None);
                continue;
            }
            let min_up = t
                .neighbors(v)
                .iter()
                .copied()
                .find(|u| canon.depth[u.idx()] == Some(d - 1));
            assert_eq!(canon.parent[v.idx()], min_up, "node {v}");
        }
    }

    #[test]
    fn canonical_tree_filtered_skips_dead_nodes() {
        // Line 0-1-2-3-4 with node 2 dead: 3 and 4 become unreachable.
        let t = line(5);
        let tree = t.canonical_tree_filtered(NodeId(0), |n| n != NodeId(2));
        assert_eq!(tree.depth[1], Some(1));
        assert_eq!(tree.depth[2], None);
        assert_eq!(tree.depth[3], None);
        assert_eq!(tree.parent[3], None);
        assert_eq!(tree.covered(), 2);
    }
}
