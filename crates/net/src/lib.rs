//! `pg-net` — the wireless network substrate of the pervasive grid.
//!
//! The paper's runtime must "handle the transport level problems caused by
//! low bandwidth, high latency, frequent disconnections and network topology
//! changes" (§1) and its evaluation plan varies "the number of sensors …
//! network topology … data routing technique (flooding … gossiping)" (§4).
//! The paper used GloMoSim for this; `pg-net` is our substitute substrate:
//!
//! * [`geom`] — 3-D positions (sensors live in a building with floors).
//! * [`energy`] — the first-order radio model used throughout the sensor-
//!   network literature the paper cites (LEACH/TAG lineage), plus finite
//!   batteries.
//! * [`link`] — bandwidth/latency/loss link model; transmission timing.
//! * [`topology`] — node placements (random geometric, grid, building) with
//!   range-based adjacency and graph queries.
//! * [`routing`] — flooding, gossiping, and shortest-path-tree routing with
//!   per-protocol transmission accounting.
//! * [`repair`] — incremental canonical-tree repair after node deaths
//!   (re-parent the orphaned region instead of a full rebuild).
//! * [`mobility`] — random-waypoint motion for mobile service nodes.
//! * [`churn`] — on/off availability processes for "short-lived services
//!   which stay in the vicinity for a finite amount of time and then
//!   disappear" (§3).
//!
//! Everything is deterministic given an RNG handed in by the caller; nothing
//! here reads ambient entropy.

//! # Example
//!
//! ```
//! use pg_net::topology::{NodeId, Topology};
//! use pg_net::energy::RadioModel;
//!
//! // A 4x4 grid of sensors, 10 m pitch, 11 m radio range.
//! let topo = Topology::grid(4, 4, 10.0, 11.0);
//! assert!(topo.is_connected());
//!
//! // Energy to push 1 kB one hop vs across the diagonal.
//! let radio = RadioModel::mote();
//! let near = radio.tx_energy(8_000, 10.0);
//! let far = radio.tx_energy(8_000, topo.distance(NodeId(0), NodeId(15)));
//! assert!(far > near);
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod churn;
pub mod energy;
pub mod error;
pub mod geom;
pub mod link;
pub mod mobility;
pub mod packetsim;
pub mod repair;
pub mod routing;
pub mod topology;

pub use energy::{Battery, RadioModel};
pub use error::InvalidConfig;
pub use geom::Point;
pub use link::LinkModel;
pub use topology::{NodeId, Topology};
