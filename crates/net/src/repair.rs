//! Incremental repair of canonical aggregation trees after node deaths.
//!
//! §4's churn model kills sensors as their batteries drain; PR 4 priced the
//! full-rebuild response (flood a build beacon through every operational
//! node). At 10k+ nodes that is the wrong answer for a handful of deaths:
//! almost the whole tree is still valid. This module implements the
//! delete-only case of Ramalingam–Reps-style dynamic shortest paths over a
//! [`Topology`]'s unit-weight graph:
//!
//! 1. **Orphan seeding** — alive children of dead nodes enter a work queue.
//! 2. **Re-anchoring sweep** (ascending old depth) — a node that still has
//!    an alive neighbour one hop closer to the root just switches parent to
//!    the lowest-id such neighbour; its depth, and therefore its entire
//!    subtree, is untouched.
//! 3. **Wavefront recompute** — nodes with no remaining support lose their
//!    depth; a unit-weight Dijkstra (bucket queue) re-grows them from the
//!    unaffected boundary, one hop-wave at a time.
//!
//! Because the tree being repaired is *canonical* (parent = lowest-id
//! neighbour at depth − 1, see [`Topology::canonical_tree`]), the repaired
//! tree is bit-identical to a from-scratch
//! [`Topology::canonical_tree_filtered`] over the surviving nodes — the
//! property test in `tests/tree_repair.rs` holds this invariant for random
//! topologies. [`RepairStats`] exposes the two quantities the control plane
//! pays for: how many nodes changed state (beacon transmissions) and how
//! many hop-waves the repair took (latency), both of which a full rebuild
//! pays at O(network).

use crate::topology::{NodeId, RoutingTree, Topology};

/// What one [`repair_after_deaths`] call did, in control-plane terms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Newly dead nodes actually detached from the tree this call.
    pub dead: usize,
    /// Alive nodes whose parent died (the repair seeds).
    pub orphans: usize,
    /// Nodes that kept their depth and switched to a new parent.
    pub reanchored: usize,
    /// Nodes whose depth was recomputed by the wavefront phase.
    pub recomputed: usize,
    /// Nodes left unattached (no surviving path to the root).
    pub unreachable: usize,
    /// Hop-waves of control traffic: 1 for the re-anchoring exchange (if
    /// any node changed) plus one per distinct recomputed depth level. A
    /// full rebuild costs `height + 1` waves.
    pub waves: u32,
    /// Alive nodes that announced a new parent or depth — the nodes that
    /// transmit a repair beacon (`reanchored` + `recomputed`; detached
    /// nodes have nobody in range to tell).
    pub changed: Vec<NodeId>,
}

impl RepairStats {
    /// Nodes that transmitted a repair beacon (changed parent, depth, or
    /// attachment). Multiply by the beacon size for wire bytes.
    pub fn touched(&self) -> usize {
        self.reanchored + self.recomputed + self.unreachable
    }

    /// Accumulate another repair round into this one (waves add: rounds
    /// happen at different epochs).
    pub fn absorb(&mut self, other: &RepairStats) {
        self.dead += other.dead;
        self.orphans += other.orphans;
        self.reanchored += other.reanchored;
        self.recomputed += other.recomputed;
        self.unreachable += other.unreachable;
        self.waves += other.waves;
        self.changed.extend_from_slice(&other.changed);
    }
}

/// Remove `v` from `p`'s (ascending-sorted) child list, if present.
fn remove_child(tree: &mut RoutingTree, p: NodeId, v: NodeId) {
    if let Ok(pos) = tree.children[p.idx()].binary_search(&v) {
        tree.children[p.idx()].remove(pos);
    }
}

/// Insert `v` into `p`'s child list, keeping it ascending-sorted.
fn insert_child(tree: &mut RoutingTree, p: NodeId, v: NodeId) {
    if let Err(pos) = tree.children[p.idx()].binary_search(&v) {
        tree.children[p.idx()].insert(pos, v);
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Untouched,
    /// Kept its depth (parent possibly switched) — final.
    Settled,
    /// Lost all depth − 1 support; depth pending recompute.
    Affected,
}

/// Repair the canonical tree `tree` in place after the nodes in `dead`
/// stopped operating. `alive` must describe the *post*-death alive set
/// (every node in `dead` reports false). `tree` must be the canonical tree
/// over the pre-death alive set — the invariant this function preserves.
///
/// # Panics
/// Panics if the tree root is listed dead: the sink has no parent to repair
/// toward, callers must rebuild (or give up) instead.
pub fn repair_after_deaths<F: Fn(NodeId) -> bool>(
    topo: &Topology,
    tree: &mut RoutingTree,
    dead: &[NodeId],
    alive: F,
) -> RepairStats {
    let n = topo.len();
    let mut stats = RepairStats::default();
    let mut state = vec![State::Untouched; n];

    // Detach every newly dead node (skip ones already off the tree).
    for &d in dead {
        assert!(d != tree.root, "cannot repair around a dead root");
        if tree.depth[d.idx()].is_none() {
            continue;
        }
        if let Some(p) = tree.parent[d.idx()] {
            remove_child(tree, p, d);
        }
        tree.parent[d.idx()] = None;
        tree.depth[d.idx()] = None;
        stats.dead += 1;
    }

    // Seed the sweep with the orphaned children. Dead children already
    // detached themselves above, so these are all alive and attached.
    // Bucket the work queue by *old* depth: by the time a node at depth d
    // is examined, every depth d − 1 node's fate is final, so "has an
    // unaffected alive neighbour at d − 1" is a sound re-anchor test.
    let mut buckets: Vec<Vec<NodeId>> = Vec::new();
    let push = |buckets: &mut Vec<Vec<NodeId>>, d: u32, v: NodeId| {
        let d = d as usize;
        if buckets.len() <= d {
            buckets.resize(d + 1, Vec::new());
        }
        buckets[d].push(v);
    };
    for &d in dead {
        for c in std::mem::take(&mut tree.children[d.idx()]) {
            if let Some(cd) = tree.depth[c.idx()] {
                push(&mut buckets, cd, c);
                stats.orphans += 1;
            }
        }
    }

    // Phase 2: re-anchoring sweep in ascending old-depth order.
    let mut affected: Vec<(NodeId, u32)> = Vec::new();
    let mut depth_idx = 0;
    while depth_idx < buckets.len() {
        let mut i = 0;
        while i < buckets[depth_idx].len() {
            let v = buckets[depth_idx][i];
            i += 1;
            if state[v.idx()] != State::Untouched || !alive(v) {
                continue;
            }
            // Stale queue entry: v already lost its depth this round.
            let Some(d) = tree.depth[v.idx()] else {
                continue;
            };
            debug_assert_eq!(d as usize, depth_idx);
            let support = topo
                .neighbors(v)
                .iter()
                .copied()
                .find(|&u| alive(u) && tree.depth[u.idx()] == Some(d - 1));
            if let Some(p_new) = support {
                state[v.idx()] = State::Settled;
                if tree.parent[v.idx()] != Some(p_new) {
                    if let Some(p_old) = tree.parent[v.idx()] {
                        remove_child(tree, p_old, v);
                    }
                    tree.parent[v.idx()] = Some(p_new);
                    insert_child(tree, p_new, v);
                    stats.reanchored += 1;
                    stats.changed.push(v);
                }
            } else {
                state[v.idx()] = State::Affected;
                affected.push((v, d));
                if let Some(p_old) = tree.parent[v.idx()] {
                    remove_child(tree, p_old, v);
                }
                tree.parent[v.idx()] = None;
                tree.depth[v.idx()] = None;
                // Everything v was supporting must now re-examine itself.
                for &w in topo.neighbors(v) {
                    if alive(w) && tree.depth[w.idx()] == Some(d + 1) {
                        push(&mut buckets, d + 1, w);
                    }
                }
            }
        }
        depth_idx += 1;
    }
    if stats.reanchored > 0 {
        stats.waves = 1;
    }

    // Phase 3: wavefront recompute of the affected set — unit-weight
    // Dijkstra seeded from the unaffected boundary, one bucket per new
    // depth. Delete-only updates never decrease a depth, so unaffected
    // depths are already final and affected nodes re-grow monotonically.
    let mut cand: Vec<Option<u32>> = vec![None; n];
    let mut wave_buckets: Vec<Vec<NodeId>> = Vec::new();
    for &(v, _) in &affected {
        let best = topo
            .neighbors(v)
            .iter()
            .filter(|&&u| alive(u))
            .filter_map(|&u| tree.depth[u.idx()])
            .min()
            .map(|d| d + 1);
        if let Some(c) = best {
            cand[v.idx()] = Some(c);
            push(&mut wave_buckets, c, v);
        }
    }
    let mut new_depth = 0;
    while new_depth < wave_buckets.len() {
        let mut wave_active = false;
        let mut i = 0;
        while i < wave_buckets[new_depth].len() {
            let v = wave_buckets[new_depth][i];
            i += 1;
            let nd = new_depth as u32;
            if tree.depth[v.idx()].is_some() || cand[v.idx()] != Some(nd) {
                continue; // finalized earlier, or superseded entry
            }
            tree.depth[v.idx()] = Some(nd);
            // Canonical parent: lowest-id alive neighbour one hop up. All
            // depth nd − 1 nodes (affected or not) are final by now.
            let p = topo
                .neighbors(v)
                .iter()
                .copied()
                .find(|&u| alive(u) && tree.depth[u.idx()] == Some(nd - 1));
            debug_assert!(p.is_some(), "finalized node must have support");
            if let Some(p) = p {
                tree.parent[v.idx()] = Some(p);
                insert_child(tree, p, v);
            }
            stats.recomputed += 1;
            stats.changed.push(v);
            wave_active = true;
            for &w in topo.neighbors(v) {
                if state[w.idx()] == State::Affected
                    && tree.depth[w.idx()].is_none()
                    && alive(w)
                    && cand[w.idx()].is_none_or(|c| nd + 1 < c)
                {
                    cand[w.idx()] = Some(nd + 1);
                    push(&mut wave_buckets, nd + 1, w);
                }
            }
        }
        if wave_active {
            stats.waves += 1;
        }
        new_depth += 1;
    }
    stats.unreachable = affected
        .iter()
        .filter(|(v, _)| tree.depth[v.idx()].is_none())
        .count();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Point;

    fn line(n: usize) -> Topology {
        let pts = (0..n).map(|i| Point::flat(i as f64 * 10.0, 0.0)).collect();
        Topology::from_positions(pts, 15.0)
    }

    /// 0 at the hub; 1..=k spokes; 5 and 6 hang off spokes 1 and 2.
    fn diamond() -> Topology {
        // 0-1, 0-2, 1-3, 2-3: two routes from 3 back to root 0.
        let pts = vec![
            Point::flat(0.0, 0.0),
            Point::flat(10.0, 5.0),
            Point::flat(10.0, -5.0),
            Point::flat(20.0, 0.0),
        ];
        Topology::from_positions(pts, 12.0)
    }

    #[test]
    fn leaf_death_touches_nothing() {
        let t = line(5);
        let mut tree = t.canonical_tree(NodeId(0));
        let dead = [NodeId(4)];
        let stats = repair_after_deaths(&t, &mut tree, &dead, |v| v != NodeId(4));
        assert_eq!(stats.dead, 1);
        assert_eq!(stats.orphans, 0);
        assert_eq!(stats.touched(), 0);
        assert_eq!(stats.waves, 0);
        let want = t.canonical_tree_filtered(NodeId(0), |v| v != NodeId(4));
        assert_eq!(tree.parent, want.parent);
        assert_eq!(tree.depth, want.depth);
    }

    #[test]
    fn reanchor_keeps_depth_when_alternate_support_exists() {
        let t = diamond();
        let mut tree = t.canonical_tree(NodeId(0));
        assert_eq!(tree.parent[3], Some(NodeId(1)));
        let stats = repair_after_deaths(&t, &mut tree, &[NodeId(1)], |v| v != NodeId(1));
        assert_eq!(stats.orphans, 1);
        assert_eq!(stats.reanchored, 1);
        assert_eq!(stats.recomputed, 0);
        assert_eq!(stats.waves, 1);
        assert_eq!(tree.parent[3], Some(NodeId(2)));
        assert_eq!(tree.depth[3], Some(2));
        let want = t.canonical_tree_filtered(NodeId(0), |v| v != NodeId(1));
        assert_eq!(tree.parent, want.parent);
        assert_eq!(tree.depth, want.depth);
        assert_eq!(tree.children, want.children);
    }

    #[test]
    fn mid_line_death_disconnects_tail() {
        let t = line(6);
        let mut tree = t.canonical_tree(NodeId(0));
        let stats = repair_after_deaths(&t, &mut tree, &[NodeId(2)], |v| v != NodeId(2));
        assert_eq!(stats.orphans, 1);
        assert_eq!(stats.unreachable, 3);
        for i in 3..6 {
            assert_eq!(tree.depth[i], None);
            assert_eq!(tree.parent[i], None);
        }
        let want = t.canonical_tree_filtered(NodeId(0), |v| v != NodeId(2));
        assert_eq!(tree.parent, want.parent);
        assert_eq!(tree.depth, want.depth);
        assert_eq!(tree.children, want.children);
    }

    #[test]
    #[should_panic(expected = "dead root")]
    fn dead_root_rejected() {
        let t = line(3);
        let mut tree = t.canonical_tree(NodeId(0));
        repair_after_deaths(&t, &mut tree, &[NodeId(0)], |v| v != NodeId(0));
    }
}
