//! Data routing techniques and their cost accounting.
//!
//! §4: "The data routing technique used in the network would not be the same
//! for all networks. A particular network may use flooding technique to
//! route data, while another may use gossiping." Experiment T11 compares
//! flooding, gossiping, and tree (shortest-path) routing on identical
//! workloads; this module provides the three primitives plus energy/time
//! accounting along routes.

use crate::energy::RadioModel;
use crate::link::LinkModel;
use crate::topology::{NodeId, Topology};
use pg_sim::Duration;
use rand::Rng;

/// Which dissemination/collection technique a network uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Protocol {
    /// Every node rebroadcasts each new packet exactly once.
    Flooding,
    /// Every node rebroadcasts each new packet with probability `p`.
    Gossip {
        /// Forwarding probability in `(0, 1]`.
        p: f64,
    },
    /// Packets follow the BFS spanning tree toward the sink.
    Tree,
}

/// Outcome of disseminating one packet through the network.
#[derive(Debug, Clone)]
pub struct Dissemination {
    /// How many nodes transmitted (≥ 1 when the source transmits).
    pub transmissions: u64,
    /// How many point-to-point receptions occurred (edge activations).
    pub receptions: u64,
    /// Which nodes ended up holding the packet.
    pub reached: Vec<bool>,
}

impl Dissemination {
    /// Fraction of all nodes reached.
    pub fn coverage(&self) -> f64 {
        let n = self.reached.len();
        self.reached.iter().filter(|&&r| r).count() as f64 / n as f64
    }

    /// Radio energy spent network-wide for a `bytes`-sized packet: every
    /// transmission pays `tx` at the full radio range (broadcast), every
    /// reception pays `rx`.
    pub fn energy(&self, bytes: u64, radio: &RadioModel, range: f64) -> f64 {
        let bits = bytes * 8;
        self.transmissions as f64 * radio.tx_energy(bits, range)
            + self.receptions as f64 * radio.rx_energy(bits)
    }
}

/// Flood `packet` from `src`: every node that first receives it rebroadcasts
/// once. Each link crossing is subject to the link's loss probability.
pub fn flood<R: Rng>(topo: &Topology, src: NodeId, link: &LinkModel, rng: &mut R) -> Dissemination {
    disseminate(topo, src, link, rng, |_| true)
}

/// Gossip from `src` with forwarding probability `p`: like flooding but each
/// non-source node rebroadcasts only with probability `p`.
///
/// # Panics
/// Panics when `p` is outside `(0, 1]`.
pub fn gossip<R: Rng>(
    topo: &Topology,
    src: NodeId,
    p: f64,
    link: &LinkModel,
    rng: &mut R,
) -> Dissemination {
    assert!(p > 0.0 && p <= 1.0, "gossip probability out of range: {p}");
    disseminate(topo, src, link, rng, |rng| rng.gen::<f64>() < p)
}

/// Common flood/gossip engine. `forward` decides, per *non-source* node that
/// first receives the packet, whether it rebroadcasts.
fn disseminate<R: Rng>(
    topo: &Topology,
    src: NodeId,
    link: &LinkModel,
    rng: &mut R,
    mut forward: impl FnMut(&mut R) -> bool,
) -> Dissemination {
    let n = topo.len();
    let mut reached = vec![false; n];
    reached[src.idx()] = true;
    let mut transmissions = 0u64;
    let mut receptions = 0u64;
    // Frontier of nodes that decided to (re)broadcast.
    let mut frontier = vec![src];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for u in frontier {
            transmissions += 1;
            for &v in topo.neighbors(u) {
                if link.delivered(rng) {
                    receptions += 1;
                    if !reached[v.idx()] {
                        reached[v.idx()] = true;
                        if forward(rng) {
                            next.push(v);
                        }
                    }
                }
            }
        }
        frontier = next;
    }
    Dissemination {
        transmissions,
        receptions,
        reached,
    }
}

/// Cost of sending `bytes` point-to-point along `path` (consecutive nodes
/// must be topology neighbours): per-hop radio energy at the actual hop
/// distance plus link-model expected timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathCost {
    /// Total radio energy across all hops, joules.
    pub energy_j: f64,
    /// Expected end-to-end time including retransmissions.
    pub time: Duration,
    /// Hop count.
    pub hops: u32,
}

/// Account energy and expected time for a unicast along `path`.
///
/// # Panics
/// Panics when `path` is empty or a consecutive pair is out of radio range —
/// both indicate a routing bug upstream.
pub fn path_cost(
    topo: &Topology,
    path: &[NodeId],
    bytes: u64,
    radio: &RadioModel,
    link: &LinkModel,
) -> PathCost {
    assert!(!path.is_empty(), "empty path");
    let bits = bytes * 8;
    let mut energy = 0.0;
    let mut time = Duration::ZERO;
    for w in path.windows(2) {
        let d = topo.distance(w[0], w[1]);
        assert!(
            d <= topo.range() * (1.0 + 1e-9),
            "path hop {}->{} exceeds radio range ({d:.1} m)",
            w[0],
            w[1]
        );
        energy += radio.tx_energy(bits, d) + radio.rx_energy(bits);
        time += link.expected_tx_time(bytes);
    }
    PathCost {
        energy_j: energy,
        time,
        hops: (path.len() - 1) as u32,
    }
}

impl Protocol {
    /// Disseminate one packet from `src` under this protocol and return the
    /// outcome. For [`Protocol::Tree`] the packet is unicast hop-by-hop to
    /// every node along the spanning tree from `src` (i.e. a tree-based
    /// broadcast), which keeps the three protocols comparable on the same
    /// "reach the network" task used by experiment T11.
    pub fn disseminate<R: Rng>(
        &self,
        topo: &Topology,
        src: NodeId,
        link: &LinkModel,
        rng: &mut R,
    ) -> Dissemination {
        match *self {
            Protocol::Flooding => flood(topo, src, link, rng),
            Protocol::Gossip { p } => gossip(topo, src, p, link, rng),
            Protocol::Tree => {
                let tree = topo.spanning_tree(src);
                let mut reached = vec![false; topo.len()];
                reached[src.idx()] = true;
                let mut transmissions = 0;
                let mut receptions = 0;
                // Parents forward down the tree; each edge is retried until
                // delivered or a bounded number of attempts fails.
                const MAX_ATTEMPTS: u32 = 8;
                let mut order: Vec<NodeId> = tree.bottom_up_order();
                order.reverse(); // top-down
                for u in order {
                    if !reached[u.idx()] {
                        continue; // subtree cut off by a failed edge
                    }
                    for &c in &tree.children[u.idx()] {
                        for _ in 0..MAX_ATTEMPTS {
                            transmissions += 1;
                            if link.delivered(rng) {
                                receptions += 1;
                                reached[c.idx()] = true;
                                break;
                            }
                        }
                    }
                }
                Dissemination {
                    transmissions,
                    receptions,
                    reached,
                }
            }
        }
    }

    /// Human-readable protocol name for experiment tables.
    pub fn name(&self) -> String {
        match self {
            Protocol::Flooding => "flooding".into(),
            Protocol::Gossip { p } => format!("gossip(p={p})"),
            Protocol::Tree => "tree".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Point;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lossless() -> LinkModel {
        LinkModel::new(250e3, Duration::from_millis(5), 0.0).unwrap()
    }

    fn grid_topo() -> Topology {
        Topology::grid(5, 5, 10.0, 10.5)
    }

    #[test]
    fn flood_reaches_whole_connected_network() {
        let t = grid_topo();
        let mut rng = StdRng::seed_from_u64(1);
        let d = flood(&t, NodeId(0), &lossless(), &mut rng);
        assert_eq!(d.coverage(), 1.0);
        // Every node broadcasts exactly once under lossless flooding.
        assert_eq!(d.transmissions, 25);
        // Every directed edge delivers exactly once: 2 * edge_count.
        assert_eq!(d.receptions, 2 * t.edge_count() as u64);
    }

    #[test]
    fn gossip_low_p_reaches_fewer_and_transmits_less() {
        let t = grid_topo();
        let mut rng = StdRng::seed_from_u64(2);
        let mut cov_low = 0.0;
        let mut tx_low = 0u64;
        let mut tx_full = 0u64;
        for _ in 0..50 {
            let g = gossip(&t, NodeId(12), 0.3, &lossless(), &mut rng);
            cov_low += g.coverage();
            tx_low += g.transmissions;
            tx_full += flood(&t, NodeId(12), &lossless(), &mut rng).transmissions;
        }
        assert!(cov_low / 50.0 < 1.0, "p=0.3 should sometimes miss nodes");
        assert!(tx_low < tx_full, "gossip must transmit less than flooding");
    }

    #[test]
    fn gossip_p1_equals_flooding() {
        let t = grid_topo();
        let mut rng = StdRng::seed_from_u64(3);
        let g = gossip(&t, NodeId(0), 1.0, &lossless(), &mut rng);
        assert_eq!(g.coverage(), 1.0);
        assert_eq!(g.transmissions, 25);
    }

    #[test]
    fn tree_broadcast_uses_fewest_receptions() {
        let t = grid_topo();
        let mut rng = StdRng::seed_from_u64(4);
        let d = Protocol::Tree.disseminate(&t, NodeId(0), &lossless(), &mut rng);
        assert_eq!(d.coverage(), 1.0);
        // Tree delivery: exactly n-1 receptions, strictly fewer than flood.
        assert_eq!(d.receptions, 24);
        let f = flood(&t, NodeId(0), &lossless(), &mut rng);
        assert!(d.receptions < f.receptions);
    }

    #[test]
    fn lossy_flood_may_miss_but_never_double_counts() {
        let t = grid_topo();
        let link = LinkModel::new(250e3, Duration::from_millis(5), 0.6).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let d = flood(&t, NodeId(12), &link, &mut rng);
            assert!(d.transmissions <= 25);
            assert!(d.coverage() <= 1.0 && d.coverage() > 0.0);
        }
    }

    #[test]
    fn path_cost_accumulates_per_hop() {
        let pts = (0..4).map(|i| Point::flat(i as f64 * 10.0, 0.0)).collect();
        let t = Topology::from_positions(pts, 15.0);
        let radio = RadioModel::mote();
        let link = lossless();
        let path = t.shortest_path(NodeId(0), NodeId(3)).unwrap();
        let c = path_cost(&t, &path, 100, &radio, &link);
        assert_eq!(c.hops, 3);
        let per_hop = radio.tx_energy(800, 10.0) + radio.rx_energy(800);
        assert!((c.energy_j - 3.0 * per_hop).abs() < 1e-15);
        assert_eq!(c.time, link.tx_time(100).mul(3));
    }

    #[test]
    #[should_panic(expected = "exceeds radio range")]
    fn path_cost_rejects_out_of_range_hop() {
        let pts = vec![Point::flat(0.0, 0.0), Point::flat(100.0, 0.0)];
        let t = Topology::from_positions(pts, 15.0);
        // NB: not actually neighbours — path is bogus by construction.
        path_cost(
            &t,
            &[NodeId(0), NodeId(1)],
            10,
            &RadioModel::mote(),
            &lossless(),
        );
    }

    #[test]
    fn dissemination_energy_accounting() {
        let d = Dissemination {
            transmissions: 10,
            receptions: 20,
            reached: vec![true; 5],
        };
        let radio = RadioModel::mote();
        let e = d.energy(100, &radio, 30.0);
        let expect = 10.0 * radio.tx_energy(800, 30.0) + 20.0 * radio.rx_energy(800);
        assert!((e - expect).abs() < 1e-15);
    }
}
