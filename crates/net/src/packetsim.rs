//! Packet-level, event-driven network simulation (the GloMoSim-class
//! substrate).
//!
//! The analytic models in [`crate::link`]/[`crate::routing`] price
//! transmissions in expectation. This module simulates them *per packet* on
//! the `pg-sim` kernel with a CSMA-style MAC:
//!
//! * **carrier sense** — a node defers (random backoff) while it hears any
//!   in-range transmission;
//! * **collisions** — two overlapping transmissions audible at the same
//!   receiver corrupt each other's reception there (hidden terminals
//!   collide precisely because they cannot hear each other);
//! * **ARQ** — corrupted or lost packets retransmit up to a bound, with
//!   binary exponential backoff;
//! * **multi-hop** — a delivered packet with remaining route hops re-enters
//!   the MAC at the next node;
//! * **energy** — every attempt drains the sender, every audible reception
//!   the hearers, via the first-order radio model.
//!
//! Under light load the per-packet results agree with the analytic
//! expectations (validated in tests); under heavy load the simulation shows
//! what the analytic model cannot: contention collapse.

use crate::energy::RadioModel;
use crate::topology::{NodeId, Topology};
use pg_sim::fault::FaultPlan;
use pg_sim::metrics::Metrics;
use pg_sim::{Duration, Model, Scheduler, SimTime, Simulation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A packet travelling a fixed multi-hop route.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Caller-chosen identifier (reported back on delivery).
    pub id: u64,
    /// Payload size, bytes.
    pub bytes: u64,
    /// Remaining route, first element = current holder.
    route: Vec<NodeId>,
    hop_index: usize,
    attempts: u32,
    defers: u32,
}

/// One delivered packet's record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// The packet id.
    pub id: u64,
    /// When the final hop's reception completed.
    pub at: SimTime,
}

/// MAC parameters.
#[derive(Debug, Clone, Copy)]
pub struct MacParams {
    /// Channel bit rate, bits/second.
    pub bitrate_bps: f64,
    /// Fixed per-frame overhead (preamble + header), bytes.
    pub overhead_bytes: u64,
    /// Base backoff window; attempt `k` draws from `[0, base × 2^k)`.
    pub backoff_base: Duration,
    /// Give up after this many attempts per hop.
    pub max_attempts: u32,
    /// Residual per-frame loss probability (fading etc.), `[0, 1)`.
    pub loss_prob: f64,
}

impl Default for MacParams {
    fn default() -> Self {
        MacParams {
            bitrate_bps: 250e3,
            overhead_bytes: 8,
            backoff_base: Duration::from_millis(2),
            max_attempts: 8,
            loss_prob: 0.0,
        }
    }
}

impl MacParams {
    /// Airtime of one frame carrying `bytes` of payload.
    pub fn frame_time(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64((bytes + self.overhead_bytes) as f64 * 8.0 / self.bitrate_bps)
    }
}

#[derive(Debug)]
enum Ev {
    /// A node wants to (re)start sending the packet's current hop.
    TrySend(Packet),
    /// A transmission completes (index into `active`).
    EndTx(usize),
}

#[derive(Debug)]
struct ActiveTx {
    from: NodeId,
    to: NodeId,
    packet: Packet,
    end: SimTime,
    corrupted: bool,
    done: bool,
}

struct World {
    topo: Topology,
    radio: RadioModel,
    mac: MacParams,
    faults: FaultPlan,
    rng: StdRng,
    active: Vec<ActiveTx>,
    delivered: Vec<Delivery>,
    dropped: Vec<u64>,
    metrics: Metrics,
}

impl World {
    /// Is any live transmission audible at `node` (excluding slot `skip`)?
    fn channel_busy_at(&self, node: NodeId, now: SimTime, skip: Option<usize>) -> bool {
        self.active.iter().enumerate().any(|(i, tx)| {
            Some(i) != skip
                && !tx.done
                && tx.end > now
                && (tx.from == node || self.topo.neighbors(tx.from).contains(&node))
        })
    }

    fn backoff(&mut self, attempts: u32) -> Duration {
        let window = self.mac.backoff_base.mul(1u64 << attempts.min(6));
        Duration::from_nanos(self.rng.gen_range(0..window.as_nanos().max(1)))
    }
}

impl Model for World {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::TrySend(mut packet) => {
                let from = packet.route[packet.hop_index];
                let to = packet.route[packet.hop_index + 1];
                if packet.attempts >= self.mac.max_attempts {
                    self.metrics.count("mac.dropped", 1);
                    self.dropped.push(packet.id);
                    return;
                }
                // Carrier sense: defer while the channel is audible.
                // Deferrals do NOT consume the retransmission budget — a
                // busy channel is congestion, not failure — but their
                // backoff still widens so heavy load spreads out.
                if self.channel_busy_at(from, now, None) {
                    packet.defers += 1;
                    self.metrics.count("mac.deferrals", 1);
                    let delay = self.backoff(packet.defers.min(8));
                    sched.schedule_in(delay, Ev::TrySend(packet));
                    return;
                }
                // Start transmitting.
                let airtime = self.mac.frame_time(packet.bytes);
                let end = now + airtime;
                let bits = (packet.bytes + self.mac.overhead_bytes) * 8;
                let d = self.topo.distance(from, to);
                self.metrics.count("mac.attempts", 1);
                self.metrics
                    .observe("mac.tx_energy_j", self.radio.tx_energy(bits, d));
                // Collision marking: this tx corrupts any overlapping tx
                // whose receiver hears us, and is corrupted by any
                // overlapping tx audible at our receiver.
                let mut corrupted = false;
                let hears = |topo: &Topology, a: NodeId, b: NodeId| {
                    a == b || topo.neighbors(a).contains(&b)
                };
                for tx in self.active.iter_mut().filter(|t| !t.done && t.end > now) {
                    if hears(&self.topo, tx.to, from) {
                        tx.corrupted = true;
                    }
                    if hears(&self.topo, to, tx.from) {
                        corrupted = true;
                    }
                }
                // Residual loss.
                if self.mac.loss_prob > 0.0 && self.rng.gen::<f64>() < self.mac.loss_prob {
                    corrupted = true;
                }
                // Injected faults: a link blackout window or a crashed
                // endpoint kills the frame (the sender still burned the
                // airtime and energy); ARQ retries as for any corruption.
                if self.faults.is_link_blacked_out(now)
                    || self.faults.is_node_down(from.idx() as u64, now)
                    || self.faults.is_node_down(to.idx() as u64, now)
                    || self.faults.message_dropped(&mut self.rng)
                {
                    corrupted = true;
                    self.metrics.count("mac.fault_killed", 1);
                }
                let idx = self.active.len();
                self.active.push(ActiveTx {
                    from,
                    to,
                    packet,
                    end,
                    corrupted,
                    done: false,
                });
                sched.schedule_at(end, Ev::EndTx(idx));
            }
            Ev::EndTx(idx) => {
                // Reception energy at the receiver (it listened either way).
                let (bits, corrupted) = {
                    let tx = &self.active[idx];
                    (
                        (tx.packet.bytes + self.mac.overhead_bytes) * 8,
                        tx.corrupted,
                    )
                };
                self.metrics
                    .observe("mac.rx_energy_j", self.radio.rx_energy(bits));
                if corrupted {
                    self.metrics.count("mac.collisions", 1);
                    let mut packet = {
                        let tx = &mut self.active[idx];
                        tx.done = true;
                        tx.packet.clone()
                    };
                    packet.attempts += 1;
                    let delay = self.backoff(packet.attempts);
                    sched.schedule_in(delay, Ev::TrySend(packet));
                    return;
                }
                let mut packet = {
                    let tx = &mut self.active[idx];
                    tx.done = true;
                    tx.packet.clone()
                };
                self.metrics.count("mac.received", 1);
                packet.hop_index += 1;
                packet.attempts = 0;
                packet.defers = 0;
                if packet.hop_index + 1 < packet.route.len() {
                    // Next hop re-enters the MAC immediately.
                    sched.schedule_at(now, Ev::TrySend(packet));
                } else {
                    self.delivered.push(Delivery {
                        id: packet.id,
                        at: now,
                    });
                    self.metrics.count("mac.delivered", 1);
                }
            }
        }
    }
}

/// Aggregate results of a packet-level run.
#[derive(Debug)]
pub struct PacketRunReport {
    /// Successful end-to-end deliveries in completion order.
    pub delivered: Vec<Delivery>,
    /// Ids of packets dropped after exhausting retries.
    pub dropped: Vec<u64>,
    /// MAC counters and energy summaries.
    pub metrics: Metrics,
    /// Simulated completion time of the whole run.
    pub finished_at: SimTime,
}

/// A packet-level simulation over a topology.
pub struct PacketSim {
    sim: Simulation<World>,
}

impl PacketSim {
    /// Build over `topo` with the given radio/MAC parameters and RNG seed.
    pub fn new(topo: Topology, radio: RadioModel, mac: MacParams, seed: u64) -> Self {
        PacketSim {
            sim: Simulation::new(World {
                topo,
                radio,
                mac,
                faults: FaultPlan::none(),
                rng: StdRng::seed_from_u64(seed),
                active: Vec::new(),
                delivered: Vec::new(),
                dropped: Vec::new(),
                metrics: Metrics::new(),
            }),
        }
    }

    /// Install a fault plan; the empty plan (the default) injects nothing.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.sim.model.faults = plan;
    }

    /// Enqueue a packet to be injected at `at`, following `route`
    /// (consecutive route entries must be neighbours).
    ///
    /// # Panics
    /// Panics on a route with fewer than two nodes or an out-of-range hop.
    pub fn inject(&mut self, id: u64, bytes: u64, route: Vec<NodeId>, at: SimTime) {
        assert!(route.len() >= 2, "route needs at least two nodes");
        for w in route.windows(2) {
            assert!(
                self.sim.model.topo.neighbors(w[0]).contains(&w[1]),
                "route hop {}->{} is not an edge",
                w[0],
                w[1]
            );
        }
        self.sim.sched.schedule_at(
            at,
            Ev::TrySend(Packet {
                id,
                bytes,
                route,
                hop_index: 0,
                attempts: 0,
                defers: 0,
            }),
        );
    }

    /// Run until every packet is delivered or dropped.
    pub fn run(mut self) -> PacketRunReport {
        self.sim.run();
        let finished_at = self.sim.now();
        let w = self.sim.model;
        PacketRunReport {
            delivered: w.delivered,
            dropped: w.dropped,
            metrics: w.metrics,
            finished_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Point;

    fn line(n: usize) -> Topology {
        let pts = (0..n).map(|i| Point::flat(i as f64 * 10.0, 0.0)).collect();
        Topology::from_positions(pts, 15.0)
    }

    fn mac() -> MacParams {
        MacParams::default()
    }

    #[test]
    fn single_hop_idle_channel_matches_airtime() {
        let topo = line(2);
        let mut sim = PacketSim::new(topo, RadioModel::mote(), mac(), 1);
        sim.inject(7, 100, vec![NodeId(0), NodeId(1)], SimTime::ZERO);
        let r = sim.run();
        assert_eq!(r.delivered.len(), 1);
        assert_eq!(r.delivered[0].id, 7);
        // Exactly one attempt, no deferrals, delivery at exactly one frame
        // time.
        assert_eq!(r.metrics.counter("mac.attempts"), 1);
        assert_eq!(r.metrics.counter("mac.deferrals"), 0);
        assert_eq!(r.delivered[0].at, SimTime::ZERO + mac().frame_time(100));
    }

    #[test]
    fn multi_hop_sums_airtimes_when_uncontended() {
        let topo = line(4);
        let mut sim = PacketSim::new(topo, RadioModel::mote(), mac(), 2);
        sim.inject(
            1,
            50,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            SimTime::ZERO,
        );
        let r = sim.run();
        assert_eq!(r.delivered.len(), 1);
        // NB: hop k+1's carrier sense hears hop k's sender? Node 1 starts
        // right when node 0 finished — channel idle — so total = 3 frames.
        assert_eq!(
            r.delivered[0].at,
            SimTime::ZERO + mac().frame_time(50).mul(3)
        );
        assert_eq!(r.metrics.counter("mac.attempts"), 3);
    }

    #[test]
    fn neighbours_serialize_via_carrier_sense() {
        // Two senders in range of each other, both to the same receiver:
        // carrier sense forces them to take turns (no collisions).
        let pts = vec![
            Point::flat(0.0, 0.0),  // receiver
            Point::flat(10.0, 0.0), // sender A
            Point::flat(5.0, 8.0),  // sender B, in range of A
        ];
        let topo = Topology::from_positions(pts, 15.0);
        let mut sim = PacketSim::new(topo, RadioModel::mote(), mac(), 3);
        sim.inject(1, 200, vec![NodeId(1), NodeId(0)], SimTime::ZERO);
        sim.inject(2, 200, vec![NodeId(2), NodeId(0)], SimTime::ZERO);
        let r = sim.run();
        assert_eq!(r.delivered.len(), 2);
        assert_eq!(r.metrics.counter("mac.collisions"), 0);
        assert!(r.metrics.counter("mac.deferrals") >= 1, "B must defer to A");
        // Completion takes at least two frame times (serialized).
        assert!(r.finished_at >= SimTime::ZERO + mac().frame_time(200).mul(2));
    }

    #[test]
    fn hidden_terminals_collide_and_recover() {
        // A - R - B line: A and B cannot hear each other but both reach R.
        let topo = line(3); // 0 - 1 - 2, range 15 < 20
        let mut sim = PacketSim::new(topo, RadioModel::mote(), mac(), 4);
        sim.inject(1, 200, vec![NodeId(0), NodeId(1)], SimTime::ZERO);
        sim.inject(2, 200, vec![NodeId(2), NodeId(1)], SimTime::ZERO);
        let r = sim.run();
        // Both eventually deliver, but only after at least one collision.
        assert_eq!(r.delivered.len(), 2);
        assert!(
            r.metrics.counter("mac.collisions") >= 2,
            "simultaneous hidden-terminal start must corrupt both: {}",
            r.metrics.counter("mac.collisions")
        );
        assert!(r.finished_at > SimTime::ZERO + mac().frame_time(200).mul(2));
    }

    #[test]
    fn retry_budget_exhaustion_drops() {
        // Force certain loss: every frame is corrupted by residual loss.
        let topo = line(2);
        let lossy = MacParams {
            loss_prob: 0.999999,
            max_attempts: 3,
            ..mac()
        };
        let mut sim = PacketSim::new(topo, RadioModel::mote(), lossy, 5);
        sim.inject(9, 50, vec![NodeId(0), NodeId(1)], SimTime::ZERO);
        let r = sim.run();
        assert!(r.delivered.is_empty());
        assert_eq!(r.dropped, vec![9]);
    }

    #[test]
    fn offered_load_saturation_shows_contention() {
        // A star: 8 senders around one sink, all in mutual range. Inject a
        // burst of packets at t=0 and measure completion time per packet;
        // compare with double the load.
        let mut pts = vec![Point::flat(0.0, 0.0)];
        for i in 0..8 {
            let a = i as f64 * std::f64::consts::TAU / 8.0;
            pts.push(Point::flat(10.0 * a.cos(), 10.0 * a.sin()));
        }
        let topo = Topology::from_positions(pts, 25.0);
        let run = |packets_per_sender: u64| {
            let mut sim = PacketSim::new(topo.clone(), RadioModel::mote(), mac(), 6);
            let mut id = 0;
            for s in 1..=8u32 {
                for k in 0..packets_per_sender {
                    sim.inject(
                        id,
                        100,
                        vec![NodeId(s), NodeId(0)],
                        SimTime::from_micros(k * 10),
                    );
                    id += 1;
                }
            }
            let r = sim.run();
            (
                r.delivered.len(),
                r.finished_at,
                r.metrics.counter("mac.deferrals"),
            )
        };
        let (d1, t1, defer1) = run(2);
        let (d2, t2, defer2) = run(4);
        // Nothing drops: deferrals absorb the contention.
        assert_eq!(d1, 16);
        assert_eq!(d2, 32);
        // Channel-capacity bound: the run can never finish faster than the
        // total airtime of all frames over the single shared channel.
        let airtime = mac().frame_time(100).as_secs_f64();
        assert!(t1.as_secs_f64() >= 16.0 * airtime);
        assert!(t2.as_secs_f64() >= 32.0 * airtime);
        assert!(t2 > t1);
        // Contention grows with load.
        assert!(
            defer2 > defer1,
            "more offered load must defer more: {defer1} -> {defer2}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let topo = line(3);
        let run = |seed| {
            let mut sim = PacketSim::new(topo.clone(), RadioModel::mote(), mac(), seed);
            sim.inject(1, 80, vec![NodeId(0), NodeId(1), NodeId(2)], SimTime::ZERO);
            sim.inject(2, 80, vec![NodeId(2), NodeId(1), NodeId(0)], SimTime::ZERO);
            let r = sim.run();
            (r.delivered.len(), r.finished_at)
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn blackout_window_kills_frames_until_it_lifts() {
        let topo = line(2);
        // Blackout covers the injection instant; ARQ backoff eventually
        // lands an attempt past the window's end and the packet delivers.
        let plan = FaultPlan::builder(1)
            .link_blackout(SimTime::ZERO, SimTime::from_millis(20))
            .build()
            .unwrap();
        let mut sim = PacketSim::new(topo.clone(), RadioModel::mote(), mac(), 11);
        sim.set_fault_plan(plan);
        sim.inject(1, 50, vec![NodeId(0), NodeId(1)], SimTime::ZERO);
        let r = sim.run();
        assert_eq!(r.delivered.len(), 1);
        assert!(r.metrics.counter("mac.fault_killed") >= 1);
        assert!(r.delivered[0].at >= SimTime::from_millis(20));
        // Same run without the plan delivers in one frame time.
        let mut clean = PacketSim::new(topo, RadioModel::mote(), mac(), 11);
        clean.inject(1, 50, vec![NodeId(0), NodeId(1)], SimTime::ZERO);
        let rc = clean.run();
        assert_eq!(rc.metrics.counter("mac.fault_killed"), 0);
        assert!(rc.delivered[0].at < r.delivered[0].at);
    }

    #[test]
    #[should_panic(expected = "not an edge")]
    fn bogus_routes_rejected() {
        let topo = line(3);
        let mut sim = PacketSim::new(topo, RadioModel::mote(), mac(), 1);
        sim.inject(1, 10, vec![NodeId(0), NodeId(2)], SimTime::ZERO);
    }
}
