//! Validation errors for `pg-net` (and dependent-layer) constructors.
//!
//! Public constructors across the network substrate used to `assert!` on bad
//! parameters; configuration coming from outside the process (scenario
//! files, sweep scripts) should surface as a recoverable [`InvalidConfig`]
//! instead of a panic, and route into `pg_core::PgError` at the top of the
//! stack.

use std::fmt;

/// A constructor rejected its parameters (non-positive mean, probability
/// outside range, inverted window, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidConfig(pub String);

impl InvalidConfig {
    /// Build from anything displayable.
    pub fn new(msg: impl Into<String>) -> Self {
        InvalidConfig(msg.into())
    }
}

impl fmt::Display for InvalidConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.0)
    }
}

impl std::error::Error for InvalidConfig {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_with_context() {
        let e = InvalidConfig::new("loss probability 2 outside [0, 1)");
        assert!(e.to_string().contains("invalid configuration"));
        assert!(e.to_string().contains("loss probability"));
    }
}
