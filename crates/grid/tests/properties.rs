//! Property-based tests for the grid substrate: solver correctness,
//! reduction invariants, scheduler bounds.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_grid::pde::{Problem, Solver};
use pg_grid::reduction::{reduce_readings, Reading};
use pg_grid::sched::{GridCluster, GridNode, Job};
use pg_net::geom::Point;
use pg_net::link::LinkModel;
use proptest::prelude::*;

fn arb_constraints(max: usize) -> impl Strategy<Value = Vec<(f64, f64, f64, f64)>> {
    // (x, y, z, value) inside a 10-cube interior.
    prop::collection::vec(
        (1.0f64..9.0, 1.0f64..9.0, 1.0f64..9.0, -50.0f64..400.0),
        1..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The discrete maximum principle: the harmonic interpolant lies within
    /// the range of its boundary + constraint values, for any constraints.
    #[test]
    fn maximum_principle(cs in arb_constraints(6), boundary in -20.0f64..40.0) {
        let mut p = Problem::new(11, 11, 11, Point::flat(0.0, 0.0), 1.0, boundary);
        let mut lo = boundary;
        let mut hi = boundary;
        for &(x, y, z, v) in &cs {
            p.add_constraint(&Point::new(x, y, z), v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let (f, stats) = p.solve(Solver::ConjugateGradient, 1e-7, 5_000);
        prop_assert!(stats.converged, "residual {}", stats.residual);
        for &v in f.raw() {
            prop_assert!(v >= lo - 1e-4 && v <= hi + 1e-4, "{v} outside [{lo}, {hi}]");
        }
    }

    /// All three solvers agree on the same problem (same fixed points, same
    /// harmonic interior) to within tolerance.
    #[test]
    fn solvers_agree(cs in arb_constraints(4)) {
        let build = || {
            let mut p = Problem::new(10, 10, 10, Point::flat(0.0, 0.0), 1.0, 15.0);
            for &(x, y, z, v) in &cs {
                p.add_constraint(&Point::new(x, y, z), v);
            }
            p
        };
        let p = build();
        let (fj, sj) = p.solve(Solver::Jacobi, 1e-7, 20_000);
        let (fg, sg) = p.solve(Solver::RedBlackGaussSeidel, 1e-7, 20_000);
        let (fc, sc) = p.solve(Solver::ConjugateGradient, 1e-7, 20_000);
        prop_assert!(sj.converged && sg.converged && sc.converged);
        prop_assert!(fj.max_abs_diff(&fg) < 1e-2, "J vs G: {}", fj.max_abs_diff(&fg));
        prop_assert!(fj.max_abs_diff(&fc) < 1e-2, "J vs C: {}", fj.max_abs_diff(&fc));
    }

    /// More Jacobi sweeps never increase the residual (monotone smoothing).
    #[test]
    fn jacobi_residual_monotone(cs in arb_constraints(4)) {
        let mut p = Problem::new(9, 9, 9, Point::flat(0.0, 0.0), 1.0, 0.0);
        for &(x, y, z, v) in &cs {
            p.add_constraint(&Point::new(x, y, z), v);
        }
        let (_, s_few) = p.solve(Solver::Jacobi, 0.0, 8);
        let (_, s_many) = p.solve(Solver::Jacobi, 0.0, 64);
        prop_assert!(s_many.residual <= s_few.residual + 1e-12);
    }

    /// Reduction: output count never exceeds input count, shrinks (weakly)
    /// as the cell grows, and bin means stay within the global value range.
    #[test]
    fn reduction_invariants(
        readings in prop::collection::vec(((0.0f64..100.0, 0.0f64..100.0), -40.0f64..400.0), 1..60),
        c1 in 1.0f64..60.0,
        c2 in 1.0f64..60.0,
    ) {
        let rs: Vec<Reading> = readings
            .iter()
            .map(|&((x, y), v)| (Point::flat(x, y), v))
            .collect();
        // NB: bin count is NOT monotone in cell size for grid-aligned
        // binning (two points sharing a small bin can straddle a large bin
        // boundary), so only the input-count bound is asserted per cell.
        let (small, big) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        let r_small = reduce_readings(&rs, small);
        let r_big = reduce_readings(&rs, big);
        prop_assert!(r_small.len() <= rs.len());
        prop_assert!(r_big.len() <= rs.len());
        // A cell spanning the whole arena leaves at most 2^2 corner bins.
        let r_huge = reduce_readings(&rs, 200.0);
        prop_assert!(r_huge.len() <= 4);
        let lo = rs.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
        let hi = rs.iter().map(|r| r.1).fold(f64::NEG_INFINITY, f64::max);
        for (_, v) in &r_big {
            prop_assert!(*v >= lo - 1e-9 && *v <= hi + 1e-9);
        }
        // Total mass (sum weighted by bin size) is preserved.
        let sum: f64 = rs.iter().map(|r| r.1).sum();
        let _ = sum; // bin means weighted by count reproduce the sum; counts
                     // are not exposed, so check the global mean bound only.
    }

    /// Scheduler: every placement starts after its upload, finishes before
    /// the makespan, and the makespan is at least the best-case bound.
    #[test]
    fn scheduler_bounds(ops in prop::collection::vec(1u64..5_000_000_000, 1..12)) {
        let cluster = GridCluster::new(
            vec![GridNode::new("a", 10e9), GridNode::new("b", 2e9)],
            LinkModel::wired_backhaul(),
        );
        let jobs: Vec<Job> = ops
            .iter()
            .enumerate()
            .map(|(i, &o)| Job {
                name: format!("j{i}"),
                ops: o,
                input_bytes: 1_000,
                output_bytes: 100,
            })
            .collect();
        let (placements, makespan) = cluster.schedule(&jobs);
        prop_assert_eq!(placements.len(), jobs.len());
        for p in &placements {
            prop_assert!(p.start < p.done);
            prop_assert!(p.done <= makespan);
        }
        // Lower bound: total work / total rate.
        let total_ops: u64 = ops.iter().sum();
        let best = total_ops as f64 / cluster.total_flops();
        prop_assert!(makespan.as_secs_f64() + 1e-9 >= best);
    }
}
