//! Property-based tests for the stream-mining substrate.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_grid::mining::{accuracy, Ensemble, Example, Stump};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_examples(n: usize, d: usize, concept: usize, noise: f64, seed: u64) -> Vec<Example> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x: Vec<f64> = (0..d)
                .map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
                .collect();
            let mut y = x[concept];
            if noise > 0.0 && rng.gen_bool(noise) {
                y = -y;
            }
            Example::new(x, y)
        })
        .collect()
}

proptest! {
    /// Stump training accuracy is always at least 0.5 (it can pick the
    /// negation of any feature).
    #[test]
    fn stump_accuracy_at_least_half(seed in any::<u64>(), d in 1usize..8, concept in 0usize..8,
                                    noise in 0.0f64..0.5) {
        let concept = concept % d;
        let batch = random_examples(60, d, concept, noise, seed);
        let s = Stump::train(&batch);
        prop_assert!(s.accuracy >= 0.5 - 1e-12, "accuracy {}", s.accuracy);
        // Training accuracy is a real empirical rate over the batch.
        let emp = accuracy(&batch, |x| s.predict(x));
        prop_assert!((emp - s.accuracy).abs() < 1e-12);
    }

    /// On a noise-free single-feature concept the stump recovers the
    /// feature exactly (or an equally perfect one).
    #[test]
    fn stump_nails_clean_concepts(seed in any::<u64>(), d in 1usize..8, concept in 0usize..8) {
        let concept = concept % d;
        let batch = random_examples(80, d, concept, 0.0, seed);
        let s = Stump::train(&batch);
        prop_assert_eq!(s.accuracy, 1.0);
        let test = random_examples(200, d, concept, 0.0, seed.wrapping_add(1));
        prop_assert_eq!(accuracy(&test, |x| s.predict(x)), 1.0);
    }

    /// The full spectrum's classifier is IDENTICAL to the ensemble's
    /// weighted vote, for any ensemble (the Fourier representation is
    /// exact, not approximate).
    #[test]
    fn spectrum_is_exact_representation(seed in any::<u64>(), batches in 1usize..12) {
        let d = 6;
        let mut ensemble = Ensemble::new();
        for b in 0..batches {
            let concept = b % d;
            ensemble.absorb_batch(&random_examples(40, d, concept, 0.2, seed.wrapping_add(b as u64)));
        }
        let spec = ensemble.spectrum(d);
        let probe = random_examples(100, d, 0, 0.0, seed.wrapping_add(999));
        for e in &probe {
            // The two scores are the same sum grouped differently; they
            // agree to rounding, and the classifications agree whenever
            // the score is not within rounding of the decision boundary.
            let se = ensemble.score(&e.x);
            let ss = spec.score(&e.x);
            prop_assert!((se - ss).abs() < 1e-9, "{se} vs {ss}");
            if se.abs() > 1e-9 {
                prop_assert_eq!(spec.classify(&e.x), ensemble.predict(&e.x));
            }
        }
    }

    /// Dominant truncation: support ≤ m, energy never increases, and the
    /// kept coefficients are exactly the m largest by magnitude.
    #[test]
    fn dominant_truncation_laws(seed in any::<u64>(), m in 0usize..10) {
        let d = 8;
        let mut ensemble = Ensemble::new();
        for b in 0..10usize {
            ensemble.absorb_batch(&random_examples(40, d, b % d, 0.2, seed.wrapping_add(b as u64)));
        }
        let full = ensemble.spectrum(d);
        let t = full.dominant(m);
        prop_assert!(t.support() <= m.min(d));
        prop_assert!(t.energy() <= full.energy() + 1e-12);
        // Every kept coefficient is >= every dropped one in magnitude.
        let kept_min = t
            .coefficients
            .iter()
            .filter(|c| **c != 0.0)
            .map(|c| c.abs())
            .fold(f64::INFINITY, f64::min);
        for (i, &c) in full.coefficients.iter().enumerate() {
            if t.coefficients[i] == 0.0 && c != 0.0 {
                prop_assert!(c.abs() <= kept_min + 1e-12);
            }
        }
    }
}
