//! Stream ensemble mining: the grid-side substrate for the paper's §3
//! composition example.
//!
//! "A particular analysis technique for streams tries to create ensembles
//! of decision trees from the data stream and then combine them. First the
//! system needs to figure out that this task has several components —
//! generating decision trees, computing their Fourier spectra, choosing the
//! dominant components, and combining them to create a single tree." (§3,
//! after Kargupta & Park [17].)
//!
//! This is that pipeline in miniature, faithful to its structure:
//!
//! 1. [`Stump::train`] — decision stumps (depth-1 trees) learned from
//!    successive stream batches over *binarized* features `xᵢ ∈ {-1, +1}`;
//! 2. [`Ensemble::spectrum`] — a stump `sign(s·xᵢ)` is exactly the Walsh–
//!    Fourier basis function `±χ_{i}`, so the weighted ensemble's spectrum
//!    is the per-feature sum of signed stump weights;
//! 3. [`Spectrum::dominant`] — keep the top-m coefficients by magnitude;
//! 4. [`Spectrum::classify`] — the combined "single tree": the sign of the
//!    truncated Fourier expansion.

/// A labelled binary-feature sample: features in `{-1.0, +1.0}`.
#[derive(Debug, Clone)]
pub struct Example {
    /// Binarized feature vector.
    pub x: Vec<f64>,
    /// Class label, `±1`.
    pub y: f64,
}

impl Example {
    /// Construct, validating the encoding.
    ///
    /// # Panics
    /// Panics when a feature or the label is not `±1`.
    pub fn new(x: Vec<f64>, y: f64) -> Self {
        assert!(y == 1.0 || y == -1.0, "label must be ±1");
        assert!(
            x.iter().all(|&v| v == 1.0 || v == -1.0),
            "features must be ±1"
        );
        Example { x, y }
    }
}

/// A decision stump: predicts `sign · x[feature]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stump {
    /// The feature the stump splits on.
    pub feature: usize,
    /// `+1.0` predicts the feature's sign; `-1.0` its negation.
    pub sign: f64,
    /// Training accuracy on its batch (the ensemble weight).
    pub accuracy: f64,
}

impl Stump {
    /// Train on a batch: pick the (feature, sign) with the highest batch
    /// accuracy, ties broken by lowest feature index.
    ///
    /// # Panics
    /// Panics on an empty batch or inconsistent feature dimensions.
    pub fn train(batch: &[Example]) -> Stump {
        assert!(!batch.is_empty(), "empty training batch");
        let d = batch[0].x.len();
        assert!(batch.iter().all(|e| e.x.len() == d), "ragged batch");
        let mut best = Stump {
            feature: 0,
            sign: 1.0,
            accuracy: -1.0,
        };
        for f in 0..d {
            let agree = batch.iter().filter(|e| e.x[f] == e.y).count() as f64 / batch.len() as f64;
            for (sign, acc) in [(1.0, agree), (-1.0, 1.0 - agree)] {
                if acc > best.accuracy {
                    best = Stump {
                        feature: f,
                        sign,
                        accuracy: acc,
                    };
                }
            }
        }
        best
    }

    /// Predict `±1` for one sample.
    pub fn predict(&self, x: &[f64]) -> f64 {
        (self.sign * x[self.feature]).signum()
    }
}

/// An ensemble of stumps trained on successive stream batches.
#[derive(Debug, Clone, Default)]
pub struct Ensemble {
    stumps: Vec<Stump>,
}

impl Ensemble {
    /// An empty ensemble.
    pub fn new() -> Self {
        Self::default()
    }

    /// Train one stump on the next stream batch and add it.
    pub fn absorb_batch(&mut self, batch: &[Example]) {
        self.stumps.push(Stump::train(batch));
    }

    /// Number of member trees.
    pub fn len(&self) -> usize {
        self.stumps.len()
    }

    /// Is the ensemble empty?
    pub fn is_empty(&self) -> bool {
        self.stumps.is_empty()
    }

    /// Raw weighted-vote score (weights = 2·accuracy − 1, the margin).
    pub fn score(&self, x: &[f64]) -> f64 {
        self.stumps
            .iter()
            .map(|s| (2.0 * s.accuracy - 1.0) * s.predict(x))
            .sum()
    }

    /// Weighted-vote prediction.
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.score(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// The ensemble's Walsh–Fourier spectrum over `d` features: coefficient
    /// `c[i]` is the signed weight mass on basis function `χ_{i}(x) = xᵢ`.
    pub fn spectrum(&self, d: usize) -> Spectrum {
        let mut c = vec![0.0f64; d];
        for s in &self.stumps {
            c[s.feature] += (2.0 * s.accuracy - 1.0) * s.sign;
        }
        Spectrum { coefficients: c }
    }
}

/// A (first-order) Walsh–Fourier spectrum of the ensemble classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrum {
    /// Per-feature coefficients.
    pub coefficients: Vec<f64>,
}

impl Spectrum {
    /// Keep only the `m` largest-magnitude coefficients ("choosing the
    /// dominant components"), zeroing the rest.
    // Coefficients are sums of finite sensor readings, never NaN.
    #[allow(clippy::expect_used)]
    pub fn dominant(&self, m: usize) -> Spectrum {
        let mut idx: Vec<usize> = (0..self.coefficients.len()).collect();
        idx.sort_by(|&a, &b| {
            self.coefficients[b]
                .abs()
                .partial_cmp(&self.coefficients[a].abs())
                .expect("coefficients are never NaN")
        });
        let keep: std::collections::BTreeSet<usize> = idx.into_iter().take(m).collect();
        Spectrum {
            coefficients: self
                .coefficients
                .iter()
                .enumerate()
                .map(|(i, &c)| if keep.contains(&i) { c } else { 0.0 })
                .collect(),
        }
    }

    /// Number of non-zero components.
    pub fn support(&self) -> usize {
        self.coefficients.iter().filter(|&&c| c != 0.0).count()
    }

    /// Raw expansion value at `x`.
    pub fn score(&self, x: &[f64]) -> f64 {
        self.coefficients.iter().zip(x).map(|(c, xi)| c * xi).sum()
    }

    /// The combined "single tree": sign of the truncated expansion.
    pub fn classify(&self, x: &[f64]) -> f64 {
        if self.score(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Energy (sum of squared coefficients) — dominance is usually chosen
    /// to preserve most of it.
    pub fn energy(&self) -> f64 {
        self.coefficients.iter().map(|c| c * c).sum()
    }
}

/// Accuracy of a classifier over a test set.
pub fn accuracy(test: &[Example], classify: impl Fn(&[f64]) -> f64) -> f64 {
    if test.is_empty() {
        return 0.0;
    }
    test.iter().filter(|e| classify(&e.x) == e.y).count() as f64 / test.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Synthetic stream: y = majority vote of features 0..3, with label
    /// noise; 8 features total (5 are irrelevant).
    fn stream(n: usize, noise: f64, rng: &mut StdRng) -> Vec<Example> {
        (0..n)
            .map(|_| {
                let x: Vec<f64> = (0..8)
                    .map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
                    .collect();
                let vote: f64 = x[0] + x[1] + x[2];
                let mut y = if vote >= 0.0 { 1.0 } else { -1.0 };
                if rng.gen_bool(noise) {
                    y = -y;
                }
                Example::new(x, y)
            })
            .collect()
    }

    #[test]
    fn stump_learns_a_single_informative_feature() {
        let mut rng = StdRng::seed_from_u64(1);
        // y = x[4] exactly.
        let batch: Vec<Example> = (0..200)
            .map(|_| {
                let x: Vec<f64> = (0..6)
                    .map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
                    .collect();
                let y = x[4];
                Example::new(x, y)
            })
            .collect();
        let s = Stump::train(&batch);
        assert_eq!(s.feature, 4);
        assert_eq!(s.sign, 1.0);
        assert_eq!(s.accuracy, 1.0);
    }

    #[test]
    fn stump_learns_negated_features_too() {
        let mut rng = StdRng::seed_from_u64(2);
        let batch: Vec<Example> = (0..200)
            .map(|_| {
                let x: Vec<f64> = (0..4)
                    .map(|_| if rng.gen_bool(0.5) { 1.0 } else { -1.0 })
                    .collect();
                let y = -x[2];
                Example::new(x, y)
            })
            .collect();
        let s = Stump::train(&batch);
        assert_eq!((s.feature, s.sign), (2, -1.0));
    }

    #[test]
    fn ensemble_beats_single_stump_on_majority_concept() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ensemble = Ensemble::new();
        for _ in 0..15 {
            let batch = stream(120, 0.1, &mut rng);
            ensemble.absorb_batch(&batch);
        }
        let test = stream(3_000, 0.0, &mut rng);
        let single = Stump::train(&stream(120, 0.1, &mut rng));
        let acc_single = accuracy(&test, |x| single.predict(x));
        let acc_ens = accuracy(&test, |x| ensemble.predict(x));
        // A single stump caps at ~75 % on 3-feature majority; the ensemble
        // combines stumps on different relevant features.
        assert!(acc_ens > acc_single, "{acc_ens} !> {acc_single}");
        assert!(acc_ens > 0.85, "ensemble accuracy {acc_ens}");
    }

    #[test]
    fn spectrum_concentrates_on_relevant_features() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ensemble = Ensemble::new();
        for _ in 0..30 {
            ensemble.absorb_batch(&stream(150, 0.05, &mut rng));
        }
        let spec = ensemble.spectrum(8);
        let relevant: f64 = spec.coefficients[..3].iter().map(|c| c.abs()).sum();
        let irrelevant: f64 = spec.coefficients[3..].iter().map(|c| c.abs()).sum();
        assert!(
            relevant > 5.0 * irrelevant,
            "spectrum should concentrate: {relevant} vs {irrelevant}"
        );
    }

    #[test]
    fn dominant_truncation_preserves_accuracy_with_fewer_components() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ensemble = Ensemble::new();
        for _ in 0..30 {
            ensemble.absorb_batch(&stream(150, 0.05, &mut rng));
        }
        let test = stream(3_000, 0.0, &mut rng);
        let full = ensemble.spectrum(8);
        let truncated = full.dominant(3);
        assert_eq!(truncated.support(), 3);
        let acc_full = accuracy(&test, |x| full.classify(x));
        let acc_trunc = accuracy(&test, |x| truncated.classify(x));
        assert!(
            acc_trunc >= acc_full - 0.03,
            "3 dominant components suffice: {acc_trunc} vs {acc_full}"
        );
        assert!(truncated.energy() <= full.energy() + 1e-12);
    }

    #[test]
    fn combined_tree_matches_ensemble_votes() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut ensemble = Ensemble::new();
        for _ in 0..20 {
            ensemble.absorb_batch(&stream(100, 0.1, &mut rng));
        }
        // The full spectrum IS the ensemble's weighted vote: predictions
        // must agree everywhere.
        let spec = ensemble.spectrum(8);
        let test = stream(500, 0.0, &mut rng);
        for e in &test {
            assert_eq!(spec.classify(&e.x), ensemble.predict(&e.x));
        }
    }

    #[test]
    #[should_panic(expected = "label must be")]
    fn bad_labels_rejected() {
        Example::new(vec![1.0], 0.5);
    }
}
