//! Temperature-distribution reconstruction: the paper's Complex Query.
//!
//! The problem: given (a) wall/boundary temperatures and (b) a sparse set of
//! interior sensor readings, reconstruct the full 3-D temperature field.
//! We model it as the steady-state heat (Laplace) equation `∇²T = 0` on a
//! uniform grid with **Dirichlet** conditions at the boundary *and* at every
//! cell holding a sensor — "grid points populated by data from the sensors
//! and static data about building material and boundary conditions" (§4).
//! The discrete solution is the harmonic interpolant of the constraints.
//!
//! Three matrix-free solvers are provided, all parallelized with rayon:
//!
//! * [`Solver::Jacobi`] — two-buffer sweeps, embarrassingly parallel over
//!   z-slabs (`par_chunks_mut`).
//! * [`Solver::RedBlackGaussSeidel`] — in-place colored sweeps; same-color
//!   cells are never stencil neighbours, so the two half-sweeps are data-
//!   race-free by construction (see the `SAFETY` note).
//! * [`Solver::ConjugateGradient`] — CG on the free-cell system (the masked
//!   7-point Laplacian is symmetric positive definite); rayon dot products
//!   and axpys.
//!
//! Every solver reports iterations, final residual, and an operation count
//! that `pg-partition` feeds into its grid-compute-time estimates.
//!
//! All sweeps visit **interior cells only** (the boundary shell is fixed, so
//! free cells are strictly interior) and hand z-slabs to rayon in bands of at
//! least [`Problem::MIN_CELLS_PER_TASK`] cells; grids at or below
//! [`Problem::SEQ_CUTOFF_CELLS`] skip the thread pool entirely. Both paths
//! perform the identical per-cell arithmetic in the identical order, so
//! results are bit-for-bit independent of the path taken.

use crate::field3::Field3;
use pg_net::geom::Point;
use rayon::prelude::*;

/// Which numerical method solves the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Solver {
    /// Two-buffer weighted-average sweeps.
    Jacobi,
    /// In-place red/black colored Gauss–Seidel (converges ~2× faster than
    /// Jacobi per sweep).
    RedBlackGaussSeidel,
    /// Conjugate gradient on the masked SPD system (fastest for tight
    /// tolerances).
    ConjugateGradient,
    /// Red/black successive over-relaxation: RBGS with relaxation factor
    /// `ω` — near-optimal ω turns O(n²) sweeps into O(n).
    Sor {
        /// Relaxation factor in `(0, 2)`; ~1.9 is near-optimal for these
        /// grid sizes.
        omega_x100: u32,
    },
}

impl Solver {
    /// Table-friendly name.
    pub fn name(&self) -> &'static str {
        match self {
            Solver::Jacobi => "jacobi",
            Solver::RedBlackGaussSeidel => "rbgs",
            Solver::ConjugateGradient => "cg",
            Solver::Sor { .. } => "sor",
        }
    }
}

/// Convergence report from a solve.
#[derive(Debug, Clone, Copy)]
pub struct SolveStats {
    /// Sweeps (Jacobi/RBGS) or CG iterations performed.
    pub iterations: u32,
    /// Final max-norm Laplace residual over free cells.
    pub residual: f64,
    /// Did the residual reach the requested tolerance?
    pub converged: bool,
    /// Estimated floating-point operations performed (for cost models).
    pub ops: u64,
}

/// The discretized reconstruction problem.
#[derive(Debug, Clone)]
pub struct Problem {
    field: Field3,
    fixed: Vec<bool>,
    origin: Point,
    spacing: f64,
    constraints: usize,
}

impl Problem {
    /// A `nx × ny × nz` box whose outer shell is held at `boundary_value`
    /// (the building walls at ambient). `origin` is the physical position of
    /// cell `(0,0,0)` and `spacing` the cell pitch in metres.
    ///
    /// # Panics
    /// Panics when any dimension is < 3 (no interior) or spacing is not
    /// positive.
    pub fn new(
        nx: usize,
        ny: usize,
        nz: usize,
        origin: Point,
        spacing: f64,
        boundary_value: f64,
    ) -> Self {
        assert!(nx >= 3 && ny >= 3 && nz >= 3, "no interior cells");
        assert!(spacing > 0.0, "spacing must be positive");
        let field = Field3::new(nx, ny, nz, boundary_value);
        let mut fixed = vec![false; field.len()];
        for (i, f) in fixed.iter_mut().enumerate() {
            let (x, y, z) = field.coords(i);
            *f = field.on_boundary(x, y, z);
        }
        Problem {
            field,
            fixed,
            origin,
            spacing,
            constraints: 0,
        }
    }

    /// Shape of the computational grid.
    pub fn shape(&self) -> (usize, usize, usize) {
        self.field.shape()
    }

    /// Number of interior sensor constraints installed.
    pub fn constraints(&self) -> usize {
        self.constraints
    }

    /// Number of free (unknown) cells.
    pub fn free_cells(&self) -> usize {
        self.fixed.iter().filter(|&&f| !f).count()
    }

    /// Map a physical point to the nearest grid cell (clamped to the box).
    pub fn cell_of(&self, p: &Point) -> (usize, usize, usize) {
        let (nx, ny, nz) = self.field.shape();
        let clamp = |v: f64, n: usize| -> usize {
            let i = ((v).max(0.0) / self.spacing).round() as usize;
            i.min(n - 1)
        };
        (
            clamp(p.x - self.origin.x, nx),
            clamp(p.y - self.origin.y, ny),
            clamp(p.z - self.origin.z, nz),
        )
    }

    /// Physical position of a cell centre.
    pub fn position_of(&self, x: usize, y: usize, z: usize) -> Point {
        Point::new(
            self.origin.x + x as f64 * self.spacing,
            self.origin.y + y as f64 * self.spacing,
            self.origin.z + z as f64 * self.spacing,
        )
    }

    /// Pin the cell nearest to `p` at `value` (a sensor reading). Pinning
    /// the same cell twice keeps the latest value; pinning a boundary cell
    /// overrides the wall value there.
    pub fn add_constraint(&mut self, p: &Point, value: f64) {
        let (x, y, z) = self.cell_of(p);
        let i = self.field.idx(x, y, z);
        if !self.fixed[i] {
            self.constraints += 1;
        }
        self.fixed[i] = true;
        self.field.set(x, y, z, value);
    }

    /// Estimated FLOPs for `iters` sweeps/iterations of `solver` — the
    /// quantity §4 calls "the amount of computation required for a
    /// particular query".
    pub fn estimate_ops(&self, solver: Solver, iters: u32) -> u64 {
        let free = self.free_cells() as u64;
        let per_cell = match solver {
            Solver::Jacobi | Solver::RedBlackGaussSeidel => 8,
            Solver::Sor { .. } => 10,        // stencil + relaxation blend
            Solver::ConjugateGradient => 22, // stencil + 2 dots + 3 axpys
        };
        free * per_cell * iters as u64
    }

    /// Solve to max-norm residual `tol` or at most `max_iters`, returning
    /// the reconstructed field and convergence stats.
    pub fn solve(&self, solver: Solver, tol: f64, max_iters: u32) -> (Field3, SolveStats) {
        match solver {
            Solver::Jacobi => self.solve_jacobi(tol, max_iters),
            Solver::RedBlackGaussSeidel => self.solve_colored(tol, max_iters, 1.0),
            Solver::Sor { omega_x100 } => {
                let omega = f64::from(omega_x100) / 100.0;
                assert!(omega > 0.0 && omega < 2.0, "SOR requires 0 < omega < 2");
                self.solve_colored(tol, max_iters, omega)
            }
            Solver::ConjugateGradient => self.solve_cg(tol, max_iters),
        }
    }

    /// Grids at or below this many total cells solve single-threaded: the
    /// fork/join overhead outweighs any parallelism at 16³ and under.
    pub const SEQ_CUTOFF_CELLS: usize = 16 * 16 * 16;

    /// Minimum cells one rayon task should own. Slabs are handed out in
    /// z-bands of at least this many cells so thin planes don't over-split.
    pub const MIN_CELLS_PER_TASK: usize = 4 * 1024;

    fn run_sequential(&self) -> bool {
        self.field.len() <= Self::SEQ_CUTOFF_CELLS
    }

    /// Number of z-slabs per rayon split (the `with_min_len` hint).
    fn slab_band(&self) -> usize {
        let (nx, ny, _) = self.field.shape();
        Self::MIN_CELLS_PER_TASK.div_ceil(nx * ny).max(1)
    }

    /// Run `body(z, slab)` over every interior z-slab of `buf` — boundary
    /// slabs hold no free cells, so they are never visited. Small grids run
    /// inline; larger ones fan out over banded z-slabs. Either way each slab
    /// is processed by the same closure, so cell values are path-independent.
    fn for_interior_slabs<F>(&self, buf: &mut [f64], body: F)
    where
        F: Fn(usize, &mut [f64]) + Send + Sync,
    {
        let (nx, ny, nz) = self.field.shape();
        let plane = nx * ny;
        if self.run_sequential() {
            for (z, slab) in buf.chunks_mut(plane).enumerate().skip(1).take(nz - 2) {
                body(z, slab);
            }
        } else {
            buf.par_chunks_mut(plane)
                .with_min_len(self.slab_band())
                .enumerate()
                .for_each(|(z, slab)| {
                    if z != 0 && z + 1 != nz {
                        body(z, slab);
                    }
                });
        }
    }

    /// Max-norm Laplace residual over free cells of candidate solution `x`.
    pub fn residual(&self, x: &Field3) -> f64 {
        let (nx, ny, nz) = self.field.shape();
        let data = x.raw();
        let fixed = &self.fixed;
        let plane = nx * ny;
        let slab_worst = |z: usize| {
            let mut worst = 0.0f64;
            for y in 1..ny - 1 {
                for xx in 1..nx - 1 {
                    let i = xx + nx * (y + ny * z);
                    if fixed[i] {
                        continue;
                    }
                    let s = data[i - 1]
                        + data[i + 1]
                        + data[i - nx]
                        + data[i + nx]
                        + data[i - plane]
                        + data[i + plane];
                    worst = worst.max((s - 6.0 * data[i]).abs());
                }
            }
            worst
        };
        if self.run_sequential() {
            (1..nz - 1).map(slab_worst).fold(0.0, f64::max)
        } else {
            (1..nz - 1)
                .into_par_iter()
                .with_min_len(self.slab_band())
                .map(slab_worst)
                .reduce(|| 0.0, f64::max)
        }
    }

    /// One Jacobi sweep: read `src`, write updated free cells into `dst`.
    /// Fixed cells are never written — `dst` starts as a clone of the
    /// constrained field, so they already hold their pinned values.
    fn jacobi_sweep(&self, src: &[f64], dst: &mut [f64]) {
        let (nx, ny, _) = self.field.shape();
        let plane = nx * ny;
        let fixed = &self.fixed;
        self.for_interior_slabs(dst, |z, slab| {
            let base = z * plane;
            for y in 1..ny - 1 {
                let row = nx * y;
                for xx in 1..nx - 1 {
                    let off = row + xx;
                    let i = base + off;
                    if fixed[i] {
                        continue;
                    }
                    let s = src[i - 1]
                        + src[i + 1]
                        + src[i - nx]
                        + src[i + nx]
                        + src[i - plane]
                        + src[i + plane];
                    slab[off] = s / 6.0;
                }
            }
        });
    }

    fn solve_jacobi(&self, tol: f64, max_iters: u32) -> (Field3, SolveStats) {
        let mut cur = self.field.clone();
        let mut next = self.field.clone();
        let mut iters = 0;
        while iters < max_iters {
            // Slab z reads planes z-1 and z+1 from the immutable source
            // buffer, so slabs are independent.
            self.jacobi_sweep(cur.raw(), next.raw_mut());
            std::mem::swap(&mut cur, &mut next);
            iters += 1;
            if iters % 16 == 0 || iters == max_iters {
                let r = self.residual(&cur);
                if r <= tol {
                    return (
                        cur,
                        SolveStats {
                            iterations: iters,
                            residual: r,
                            converged: true,
                            ops: self.estimate_ops(Solver::Jacobi, iters),
                        },
                    );
                }
            }
        }
        let r = self.residual(&cur);
        (
            cur,
            SolveStats {
                iterations: iters,
                residual: r,
                converged: r <= tol,
                ops: self.estimate_ops(Solver::Jacobi, iters),
            },
        )
    }

    /// Colored (red/black) relaxation: plain Gauss–Seidel at `omega = 1`,
    /// SOR otherwise.
    fn solve_colored(&self, tol: f64, max_iters: u32, omega: f64) -> (Field3, SolveStats) {
        let tag = if omega == 1.0 {
            Solver::RedBlackGaussSeidel
        } else {
            Solver::Sor {
                omega_x100: (omega * 100.0).round() as u32,
            }
        };
        let (nx, ny, nz) = self.field.shape();
        let plane = nx * ny;
        let mut x = self.field.clone();
        let fixed = &self.fixed;
        let mut iters = 0;

        // SAFETY rationale for the raw-pointer sweep below: within one
        // colored half-sweep every updated cell has colour c = (x+y+z)%2,
        // and all six stencil neighbours have colour 1-c. Writes therefore
        // only touch colour-c cells while reads only touch colour-(1-c)
        // cells: the write set and read set are disjoint, and distinct
        // threads write distinct cells (each (y,z) line is visited once).
        struct SyncPtr(*mut f64);
        unsafe impl Send for SyncPtr {}
        unsafe impl Sync for SyncPtr {}

        let sequential = self.run_sequential();
        while iters < max_iters {
            for color in 0..2usize {
                let ptr = SyncPtr(x.raw_mut().as_mut_ptr());
                let sweep_z = |z: usize| {
                    let p = &ptr;
                    for y in 1..ny - 1 {
                        let start = 1 + ((y + z + color) % 2);
                        let mut xx = start;
                        while xx < nx - 1 {
                            let i = xx + nx * (y + ny * z);
                            if !fixed[i] {
                                // SAFETY: disjoint same-color writes; reads
                                // are all opposite-color (see note above) —
                                // and the sequential path is single-threaded
                                // anyway.
                                unsafe {
                                    let d = p.0;
                                    let s = *d.add(i - 1)
                                        + *d.add(i + 1)
                                        + *d.add(i - nx)
                                        + *d.add(i + nx)
                                        + *d.add(i - plane)
                                        + *d.add(i + plane);
                                    let old = *d.add(i);
                                    *d.add(i) = old + omega * (s / 6.0 - old);
                                }
                            }
                            xx += 2;
                        }
                    }
                };
                if sequential {
                    for z in 1..nz - 1 {
                        sweep_z(z);
                    }
                } else {
                    (1..nz - 1)
                        .into_par_iter()
                        .with_min_len(self.slab_band())
                        .for_each(sweep_z);
                }
            }
            iters += 1;
            if iters % 8 == 0 || iters == max_iters {
                let r = self.residual(&x);
                if r <= tol {
                    return (
                        x,
                        SolveStats {
                            iterations: iters,
                            residual: r,
                            converged: true,
                            ops: self.estimate_ops(tag, iters),
                        },
                    );
                }
            }
        }
        let r = self.residual(&x);
        (
            x,
            SolveStats {
                iterations: iters,
                residual: r,
                converged: r <= tol,
                ops: self.estimate_ops(tag, iters),
            },
        )
    }

    /// Apply the free-cell operator `A u = 6u_i - Σ_{free nbr} u_j` into
    /// `out`. Only free cells are written: `out` must already be zero at
    /// fixed cells (the CG work buffers are allocated zeroed and fixed
    /// entries are never touched afterwards), which saves re-clearing the
    /// whole boundary shell on every application.
    fn apply_a(&self, u: &[f64], out: &mut [f64]) {
        let (nx, ny, _) = self.field.shape();
        let plane = nx * ny;
        let fixed = &self.fixed;
        self.for_interior_slabs(out, |z, slab| {
            let base = z * plane;
            for y in 1..ny - 1 {
                let row = nx * y;
                for xx in 1..nx - 1 {
                    let off = row + xx;
                    let i = base + off;
                    if fixed[i] {
                        continue;
                    }
                    // Free cells are strictly interior (boundary shell is
                    // fixed), so all six neighbours exist.
                    let mut s = 6.0 * u[i];
                    for j in [i - 1, i + 1, i - nx, i + nx, i - plane, i + plane] {
                        if !fixed[j] {
                            s -= u[j];
                        }
                    }
                    slab[off] = s;
                }
            }
        });
    }

    fn solve_cg(&self, tol: f64, max_iters: u32) -> (Field3, SolveStats) {
        let n = self.field.len();
        let (nx, ny, _) = self.field.shape();
        let plane = nx * ny;
        let fixed = &self.fixed;
        let vals = self.field.raw();

        // b_i = Σ_{fixed nbr} value_j for free cells; fixed entries stay at
        // the zero the buffer was allocated with.
        let mut b = vec![0.0f64; n];
        self.for_interior_slabs(&mut b, |z, slab| {
            let base = z * plane;
            for y in 1..ny - 1 {
                let row = nx * y;
                for xx in 1..nx - 1 {
                    let off = row + xx;
                    let i = base + off;
                    if fixed[i] {
                        continue;
                    }
                    let mut s = 0.0;
                    for j in [i - 1, i + 1, i - nx, i + nx, i - plane, i + plane] {
                        if fixed[j] {
                            s += vals[j];
                        }
                    }
                    slab[off] = s;
                }
            }
        });

        let dot = |a: &[f64], c: &[f64]| -> f64 {
            a.par_iter().zip(c.par_iter()).map(|(x, y)| x * y).sum()
        };

        // x starts at zero on free cells.
        let mut x = vec![0.0f64; n];
        let mut r = b.clone(); // r = b - A·0
        let mut p = r.clone();
        let mut ax = vec![0.0f64; n];
        let mut rs_old = dot(&r, &r);
        let mut iters = 0;
        // CG works on the 2-norm; tol is a max-norm target, so iterate on a
        // scaled 2-norm bound and confirm with the true residual at the end.
        let two_norm_tol = tol * (self.free_cells() as f64).sqrt().max(1.0) * 1e-2;

        while iters < max_iters && rs_old.sqrt() > two_norm_tol {
            self.apply_a(&p, &mut ax);
            let pap = dot(&p, &ax);
            if pap <= 0.0 {
                break; // numerical breakdown; bail with what we have
            }
            let alpha = rs_old / pap;
            x.par_iter_mut()
                .with_min_len(Self::MIN_CELLS_PER_TASK)
                .zip(p.par_iter())
                .for_each(|(xi, pi)| *xi += alpha * pi);
            r.par_iter_mut()
                .with_min_len(Self::MIN_CELLS_PER_TASK)
                .zip(ax.par_iter())
                .for_each(|(ri, ai)| *ri -= alpha * ai);
            let rs_new = dot(&r, &r);
            let beta = rs_new / rs_old;
            p.par_iter_mut()
                .with_min_len(Self::MIN_CELLS_PER_TASK)
                .zip(r.par_iter())
                .for_each(|(pi, ri)| *pi = *ri + beta * *pi);
            rs_old = rs_new;
            iters += 1;
        }

        // Assemble: fixed cells keep their pinned values.
        let mut out = self.field.clone();
        {
            let o = out.raw_mut();
            o.par_iter_mut()
                .with_min_len(Self::MIN_CELLS_PER_TASK)
                .enumerate()
                .for_each(|(i, v)| {
                    if !fixed[i] {
                        *v = x[i];
                    }
                });
        }
        let res = self.residual(&out);
        (
            out,
            SolveStats {
                iterations: iters,
                residual: res,
                converged: res <= tol,
                ops: self.estimate_ops(Solver::ConjugateGradient, iters),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Uniform boundary, no sensors: the harmonic solution is constant.
    #[test]
    fn constant_boundary_gives_constant_field() {
        let p = Problem::new(10, 10, 10, Point::flat(0.0, 0.0), 1.0, 21.0);
        for solver in [
            Solver::Jacobi,
            Solver::RedBlackGaussSeidel,
            Solver::ConjugateGradient,
        ] {
            let (f, stats) = p.solve(solver, 1e-8, 2_000);
            assert!(stats.converged, "{} did not converge", solver.name());
            let exact = Field3::new(10, 10, 10, 21.0);
            assert!(
                f.max_abs_diff(&exact) < 1e-5,
                "{}: max diff {}",
                solver.name(),
                f.max_abs_diff(&exact)
            );
        }
    }

    /// A linear profile x/(n-1) between two opposite walls is harmonic and
    /// must be reproduced exactly (up to tolerance) by all solvers.
    #[test]
    fn linear_profile_is_reproduced() {
        let n = 12;
        let mut p = Problem::new(n, n, n, Point::flat(0.0, 0.0), 1.0, 0.0);
        // Pin the two x-walls at 0 and 100 by constraining boundary cells.
        for y in 0..n {
            for z in 0..n {
                p.add_constraint(&Point::new(0.0, y as f64, z as f64), 0.0);
                p.add_constraint(&Point::new((n - 1) as f64, y as f64, z as f64), 100.0);
                // Side walls follow the linear profile so the exact solution
                // is globally linear.
            }
        }
        for x in 0..n {
            let v = 100.0 * x as f64 / (n - 1) as f64;
            for other in 0..n {
                p.add_constraint(&Point::new(x as f64, other as f64, 0.0), v);
                p.add_constraint(&Point::new(x as f64, other as f64, (n - 1) as f64), v);
                p.add_constraint(&Point::new(x as f64, 0.0, other as f64), v);
                p.add_constraint(&Point::new(x as f64, (n - 1) as f64, other as f64), v);
            }
        }
        for solver in [
            Solver::Jacobi,
            Solver::RedBlackGaussSeidel,
            Solver::ConjugateGradient,
        ] {
            let (f, stats) = p.solve(solver, 1e-7, 4_000);
            assert!(stats.converged, "{} did not converge", solver.name());
            for x in 0..n {
                let want = 100.0 * x as f64 / (n - 1) as f64;
                let got = f.get(x, n / 2, n / 2);
                assert!(
                    (got - want).abs() < 1e-3,
                    "{}: x={x} got {got} want {want}",
                    solver.name()
                );
            }
        }
    }

    #[test]
    fn solvers_agree_with_interior_sensor() {
        let mut p = Problem::new(14, 14, 14, Point::flat(0.0, 0.0), 1.0, 20.0);
        p.add_constraint(&Point::new(6.0, 6.0, 6.0), 300.0); // a hot spot
        assert_eq!(p.constraints(), 1);
        let (fj, _) = p.solve(Solver::Jacobi, 1e-7, 6_000);
        let (fg, _) = p.solve(Solver::RedBlackGaussSeidel, 1e-7, 6_000);
        let (fc, _) = p.solve(Solver::ConjugateGradient, 1e-7, 6_000);
        assert!(
            fj.max_abs_diff(&fg) < 1e-3,
            "J vs RBGS: {}",
            fj.max_abs_diff(&fg)
        );
        assert!(
            fj.max_abs_diff(&fc) < 1e-3,
            "J vs CG: {}",
            fj.max_abs_diff(&fc)
        );
        // Maximum principle: hottest point is the pinned sensor cell.
        assert_eq!(fc.get(6, 6, 6), 300.0);
        assert!(fc.get(7, 6, 6) < 300.0 && fc.get(7, 6, 6) > 20.0);
    }

    #[test]
    fn maximum_principle_holds() {
        let mut p = Problem::new(10, 10, 10, Point::flat(0.0, 0.0), 1.0, 15.0);
        p.add_constraint(&Point::new(4.0, 4.0, 4.0), 99.0);
        let (f, _) = p.solve(Solver::ConjugateGradient, 1e-8, 4_000);
        for v in f.raw() {
            assert!(
                (15.0 - 1e-6..=99.0 + 1e-6).contains(v),
                "harmonic value {v} escapes [15, 99]"
            );
        }
    }

    #[test]
    fn cg_converges_fastest() {
        let mut p = Problem::new(16, 16, 16, Point::flat(0.0, 0.0), 1.0, 20.0);
        p.add_constraint(&Point::new(8.0, 8.0, 8.0), 200.0);
        let (_, j) = p.solve(Solver::Jacobi, 1e-6, 10_000);
        let (_, c) = p.solve(Solver::ConjugateGradient, 1e-6, 10_000);
        assert!(j.converged && c.converged);
        assert!(
            c.iterations < j.iterations,
            "CG {} iters vs Jacobi {}",
            c.iterations,
            j.iterations
        );
    }

    #[test]
    fn sor_converges_much_faster_than_rbgs() {
        let mut p = Problem::new(20, 20, 20, Point::flat(0.0, 0.0), 1.0, 20.0);
        p.add_constraint(&Point::new(10.0, 10.0, 10.0), 250.0);
        let (_, gs) = p.solve(Solver::RedBlackGaussSeidel, 1e-6, 20_000);
        let (_, sor) = p.solve(Solver::Sor { omega_x100: 185 }, 1e-6, 20_000);
        assert!(gs.converged && sor.converged);
        assert!(
            sor.iterations * 3 < gs.iterations,
            "SOR {} iters should be well under a third of RBGS {}",
            sor.iterations,
            gs.iterations
        );
    }

    #[test]
    fn sor_agrees_with_cg() {
        let mut p = Problem::new(14, 14, 14, Point::flat(0.0, 0.0), 1.0, 20.0);
        p.add_constraint(&Point::new(6.0, 6.0, 6.0), 300.0);
        let (fs, ss) = p.solve(Solver::Sor { omega_x100: 185 }, 1e-7, 20_000);
        let (fc, sc) = p.solve(Solver::ConjugateGradient, 1e-7, 20_000);
        assert!(ss.converged && sc.converged);
        assert!(
            fs.max_abs_diff(&fc) < 1e-3,
            "SOR vs CG: {}",
            fs.max_abs_diff(&fc)
        );
    }

    #[test]
    #[should_panic(expected = "SOR requires")]
    fn sor_omega_bounds_enforced() {
        let p = Problem::new(5, 5, 5, Point::flat(0.0, 0.0), 1.0, 0.0);
        let _ = p.solve(Solver::Sor { omega_x100: 200 }, 1e-6, 10);
    }

    #[test]
    fn cell_mapping_clamps_and_rounds() {
        let p = Problem::new(10, 10, 10, Point::flat(0.0, 0.0), 2.0, 0.0);
        assert_eq!(p.cell_of(&Point::new(3.1, 0.0, 0.0)), (2, 0, 0)); // 3.1/2 -> 2
        assert_eq!(p.cell_of(&Point::new(1e9, 0.0, 0.0)), (9, 0, 0)); // clamped
        assert_eq!(p.cell_of(&Point::new(-5.0, 0.0, 0.0)), (0, 0, 0));
        assert_eq!(p.position_of(2, 0, 0), Point::new(4.0, 0.0, 0.0));
    }

    /// The interior-only banded sweep must write bit-identical values to a
    /// naive full-grid scan — on both sides of the sequential cutoff.
    #[test]
    fn jacobi_sweep_matches_full_scan_reference() {
        for n in [10usize, 20] {
            let mut p = Problem::new(n, n, n, Point::flat(0.0, 0.0), 1.0, 20.0);
            p.add_constraint(&Point::new(3.0, 4.0, 5.0), 250.0);
            assert_eq!(n <= 16, p.run_sequential(), "cutoff straddle at n={n}");
            let (f, stats) = p.solve(Solver::Jacobi, 0.0, 1); // exactly one sweep
            assert_eq!(stats.iterations, 1);

            let init = p.field.raw();
            let plane = n * n;
            let mut want = p.field.clone();
            for i in 0..p.field.len() {
                if p.fixed[i] {
                    continue;
                }
                let s = init[i - 1]
                    + init[i + 1]
                    + init[i - n]
                    + init[i + n]
                    + init[i - plane]
                    + init[i + plane];
                want.raw_mut()[i] = s / 6.0;
            }
            assert_eq!(f.raw(), want.raw(), "n={n}");
        }
    }

    #[test]
    fn ops_estimate_scales_with_free_cells_and_iters() {
        let p = Problem::new(10, 10, 10, Point::flat(0.0, 0.0), 1.0, 0.0);
        let e1 = p.estimate_ops(Solver::Jacobi, 100);
        let e2 = p.estimate_ops(Solver::Jacobi, 200);
        assert_eq!(e2, 2 * e1);
        assert_eq!(e1, 8 * 8 * 8 * 8 * 100); // 8³ interior cells × 8 flops × 100
    }
}
