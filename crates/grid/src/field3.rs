//! Flat-indexed 3-D scalar fields.
//!
//! Storage is a single `Vec<f64>` indexed `x + nx*(y + ny*z)` — contiguous
//! x-lines, z the slowest axis — so rayon can split the field into z-slabs
//! with `par_chunks_mut` and every slab is a contiguous memory block (the
//! layout the perf guides recommend over nested `Vec<Vec<_>>`).

/// A dense `nx × ny × nz` scalar field.
#[derive(Debug, Clone, PartialEq)]
pub struct Field3 {
    nx: usize,
    ny: usize,
    nz: usize,
    data: Vec<f64>,
}

impl Field3 {
    /// A field of the given shape filled with `fill`.
    ///
    /// # Panics
    /// Panics when any dimension is zero.
    pub fn new(nx: usize, ny: usize, nz: usize, fill: f64) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "zero-sized field");
        Field3 {
            nx,
            ny,
            nz,
            data: vec![fill; nx * ny * nz],
        }
    }

    /// Shape as `(nx, ny, nz)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Never true (construction rejects empty shapes).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Flat index of `(x, y, z)`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        x + self.nx * (y + self.ny * z)
    }

    /// Coordinates of flat index `i`.
    #[inline]
    pub fn coords(&self, i: usize) -> (usize, usize, usize) {
        let x = i % self.nx;
        let y = (i / self.nx) % self.ny;
        let z = i / (self.nx * self.ny);
        (x, y, z)
    }

    /// Read cell `(x, y, z)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> f64 {
        self.data[self.idx(x, y, z)]
    }

    /// Write cell `(x, y, z)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: f64) {
        let i = self.idx(x, y, z);
        self.data[i] = v;
    }

    /// Is `(x, y, z)` on the outer boundary of the box?
    #[inline]
    pub fn on_boundary(&self, x: usize, y: usize, z: usize) -> bool {
        x == 0 || y == 0 || z == 0 || x == self.nx - 1 || y == self.ny - 1 || z == self.nz - 1
    }

    /// Borrow the raw data.
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the raw data.
    pub fn raw_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Root-mean-square difference against another field of the same shape.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn rmse(&self, other: &Field3) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        let ss: f64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        (ss / self.data.len() as f64).sqrt()
    }

    /// Maximum absolute difference against another field of the same shape.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Field3) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let f = Field3::new(4, 5, 6, 0.0);
        for i in 0..f.len() {
            let (x, y, z) = f.coords(i);
            assert_eq!(f.idx(x, y, z), i);
        }
    }

    #[test]
    fn get_set() {
        let mut f = Field3::new(3, 3, 3, 1.0);
        f.set(1, 2, 0, 7.5);
        assert_eq!(f.get(1, 2, 0), 7.5);
        assert_eq!(f.get(0, 0, 0), 1.0);
    }

    #[test]
    fn boundary_detection() {
        let f = Field3::new(4, 4, 4, 0.0);
        assert!(f.on_boundary(0, 2, 2));
        assert!(f.on_boundary(3, 2, 2));
        assert!(f.on_boundary(2, 2, 3));
        assert!(!f.on_boundary(1, 2, 2));
    }

    #[test]
    fn rmse_and_max_diff() {
        let a = Field3::new(2, 2, 2, 1.0);
        let mut b = Field3::new(2, 2, 2, 1.0);
        b.set(0, 0, 0, 3.0);
        assert!((a.rmse(&b) - (4.0f64 / 8.0).sqrt()).abs() < 1e-12);
        assert_eq!(a.max_abs_diff(&b), 2.0);
        assert_eq!(a.rmse(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn rmse_rejects_shape_mismatch() {
        Field3::new(2, 2, 2, 0.0).rmse(&Field3::new(2, 2, 3, 0.0));
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_dim_rejected() {
        Field3::new(0, 2, 2, 0.0);
    }
}
