//! `pg-grid` — the wired Grid substrate: heterogeneous compute nodes, a job
//! scheduler, and the numerical kernels the "Complex Queries" of the paper
//! need.
//!
//! §4's motivating complex query: *"finding the temperature distribution
//! inside the building. To answer this query, a 3D partial differential
//! equation needs to be set up, grid points populated by data from the
//! sensors and static data about building material and boundary conditions,
//! and then solved. It is simply not feasible to perform the computation for
//! solving such a query inside the network."*
//!
//! * [`field3`] — flat-indexed 3-D scalar fields.
//! * [`pde`] — the temperature-reconstruction problem (Laplace with sensor
//!   readings as interior Dirichlet constraints) and three matrix-free
//!   solvers: Jacobi, red-black Gauss–Seidel, and conjugate gradient, all
//!   rayon-parallel over z-slabs per the hpc-parallel guides.
//! * [`reduction`] — the paper's accuracy/data trade-off: "instead of
//!   sending each sensor reading to the grid, one might only send the
//!   average reading from a region (the size of the region depending on the
//!   level of accuracy needed)".
//! * [`sched`] — heterogeneous grid nodes and an earliest-finish-time job
//!   scheduler, used by `pg-partition` to estimate grid-side compute time.

//! # Example
//!
//! ```
//! use pg_grid::pde::{Problem, Solver};
//! use pg_net::geom::Point;
//!
//! // Reconstruct a field from one hot sensor in a 10 m cube at 20 C walls.
//! let mut p = Problem::new(11, 11, 11, Point::flat(0.0, 0.0), 1.0, 20.0);
//! p.add_constraint(&Point::new(5.0, 5.0, 5.0), 300.0);
//! let (field, stats) = p.solve(Solver::ConjugateGradient, 1e-6, 5_000);
//! assert!(stats.converged);
//! assert_eq!(field.get(5, 5, 5), 300.0);          // pinned reading
//! assert!(field.get(6, 5, 5) > 20.0);             // heat spreads
//! assert!(field.get(6, 5, 5) < 300.0);            // maximum principle
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod field3;
pub mod mining;
pub mod pde;
pub mod reduction;
pub mod sched;

pub use field3::Field3;
pub use pde::{Problem, SolveStats, Solver};
pub use sched::{GridCluster, GridNode, Job};
