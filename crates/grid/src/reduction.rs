//! Region-averaging data reduction: the accuracy ↔ data-volume trade-off.
//!
//! §4: "depending upon the accuracy of results required, instead of sending
//! each sensor reading to the grid, one might only send the average reading
//! from a region (the size of the region depending on the level of accuracy
//! needed)." [`reduce_readings`] bins sensor readings into cubic cells of a
//! given factor and replaces each bin by its centroid + mean — fewer
//! constraints shipped to the grid, coarser reconstruction.

use pg_net::geom::Point;

/// One (position, value) sensor reading.
pub type Reading = (Point, f64);

/// Bin readings into cubes of side `cell` metres; each non-empty cube is
/// replaced by (centroid of members, mean of values). `cell <= 0` is the
/// identity (no reduction).
pub fn reduce_readings(readings: &[Reading], cell: f64) -> Vec<Reading> {
    if cell <= 0.0 || readings.is_empty() {
        return readings.to_vec();
    }
    // Deterministic binning: BTreeMap over integer cube coordinates.
    use std::collections::BTreeMap;
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct Key(i64, i64, i64);
    let mut bins: BTreeMap<Key, (Point, f64, usize)> = BTreeMap::new();
    for (p, v) in readings {
        let k = Key(
            (p.x / cell).floor() as i64,
            (p.y / cell).floor() as i64,
            (p.z / cell).floor() as i64,
        );
        let e = bins.entry(k).or_insert((Point::flat(0.0, 0.0), 0.0, 0));
        e.0.x += p.x;
        e.0.y += p.y;
        e.0.z += p.z;
        e.1 += v;
        e.2 += 1;
    }
    bins.into_values()
        .map(|(sum_p, sum_v, n)| {
            let n = n as f64;
            (Point::new(sum_p.x / n, sum_p.y / n, sum_p.z / n), sum_v / n)
        })
        .collect()
}

/// Bytes on the backhaul for a set of readings (id dropped after reduction;
/// 3 coords + value, 8 bytes each).
pub fn wire_bytes(count: usize) -> u64 {
    count as u64 * 32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_readings(n: usize, spacing: f64) -> Vec<Reading> {
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                out.push((
                    Point::flat(i as f64 * spacing, j as f64 * spacing),
                    (i + j) as f64,
                ));
            }
        }
        out
    }

    #[test]
    fn zero_cell_is_identity() {
        let rs = grid_readings(4, 1.0);
        assert_eq!(reduce_readings(&rs, 0.0), rs);
    }

    #[test]
    fn reduction_shrinks_count_monotonically() {
        let rs = grid_readings(8, 1.0); // 64 readings over 7x7 m
        let r2 = reduce_readings(&rs, 2.0);
        let r4 = reduce_readings(&rs, 4.0);
        let r100 = reduce_readings(&rs, 100.0);
        assert!(r2.len() < rs.len());
        assert!(r4.len() < r2.len());
        assert_eq!(r100.len(), 1);
        assert!(wire_bytes(r4.len()) < wire_bytes(rs.len()));
    }

    #[test]
    fn global_mean_is_preserved_for_balanced_bins() {
        // Cell size 2 on a unit grid of even side: every bin holds exactly
        // 4 readings, so the mean of bin-means equals the global mean.
        let rs = grid_readings(8, 1.0);
        let reduced = reduce_readings(&rs, 2.0);
        let mean = |v: &[Reading]| v.iter().map(|r| r.1).sum::<f64>() / v.len() as f64;
        assert!((mean(&rs) - mean(&reduced)).abs() < 1e-9);
    }

    #[test]
    fn centroid_lies_inside_bin() {
        let rs = vec![(Point::flat(0.1, 0.1), 1.0), (Point::flat(0.9, 0.9), 3.0)];
        let r = reduce_readings(&rs, 1.0);
        assert_eq!(r.len(), 1);
        assert!((r[0].0.x - 0.5).abs() < 1e-12);
        assert_eq!(r[0].1, 2.0);
    }
}
