//! Heterogeneous grid nodes and an earliest-finish-time job scheduler.
//!
//! The paper's Grid is "heterogeneous networked hardware (from the ASCI
//! terraflop machines to workstations)". [`GridCluster`] models a set of
//! nodes with different sustained FLOP rates and a wired backhaul;
//! [`GridCluster::schedule`] places a batch of jobs greedily on the node
//! that finishes each job soonest (list scheduling), which `pg-partition`
//! uses to estimate grid-side response time for offloaded queries.

use pg_net::link::LinkModel;
use pg_sim::fault::FaultPlan;
use pg_sim::{Duration, SimTime};

/// One compute node in the grid.
#[derive(Debug, Clone)]
pub struct GridNode {
    /// Human-readable node name.
    pub name: String,
    /// Sustained throughput, floating-point operations per second.
    pub flops: f64,
}

impl GridNode {
    /// Construct a node.
    ///
    /// # Panics
    /// Panics on non-positive FLOP rate.
    pub fn new(name: impl Into<String>, flops: f64) -> Self {
        assert!(flops > 0.0, "flops must be positive");
        GridNode {
            name: name.into(),
            flops,
        }
    }

    /// Time for this node to execute `ops` operations.
    pub fn compute_time(&self, ops: u64) -> Duration {
        Duration::from_secs_f64(ops as f64 / self.flops)
    }
}

/// A unit of work shipped to the grid.
#[derive(Debug, Clone)]
pub struct Job {
    /// Label for reports.
    pub name: String,
    /// Operation count.
    pub ops: u64,
    /// Input payload that must cross the backhaul first, bytes.
    pub input_bytes: u64,
    /// Result payload returned over the backhaul, bytes.
    pub output_bytes: u64,
}

/// Placement of one job produced by the scheduler.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Index into the cluster's node list.
    pub node: usize,
    /// When the job starts on that node (relative to batch submission).
    pub start: Duration,
    /// When the job's result is back at the base station.
    pub done: Duration,
}

/// A set of grid nodes behind one wired backhaul link.
#[derive(Debug, Clone)]
pub struct GridCluster {
    nodes: Vec<GridNode>,
    backhaul: LinkModel,
    faults: FaultPlan,
}

impl GridCluster {
    /// Build a cluster.
    ///
    /// # Panics
    /// Panics when `nodes` is empty.
    pub fn new(nodes: Vec<GridNode>, backhaul: LinkModel) -> Self {
        assert!(!nodes.is_empty(), "cluster needs at least one node");
        GridCluster {
            nodes,
            backhaul,
            faults: FaultPlan::none(),
        }
    }

    /// Install a fault plan; worker-outage windows (by node index) make
    /// workers unavailable while they last. The empty plan changes nothing.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// The installed fault plan (the empty plan when none was set).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// A small campus grid: one fast cluster node, two workstations.
    pub fn campus() -> Self {
        GridCluster::new(
            vec![
                GridNode::new("cluster-head", 50e9),
                GridNode::new("workstation-1", 5e9),
                GridNode::new("workstation-2", 5e9),
            ],
            LinkModel::wired_backhaul(),
        )
    }

    /// The node list.
    pub fn nodes(&self) -> &[GridNode] {
        &self.nodes
    }

    /// The backhaul link model.
    pub fn backhaul(&self) -> &LinkModel {
        &self.backhaul
    }

    /// Aggregate FLOP rate of the cluster.
    pub fn total_flops(&self) -> f64 {
        self.nodes.iter().map(|n| n.flops).sum()
    }

    /// End-to-end time for a single job on the best node: upload, compute,
    /// download. Ignores worker outages (submission time unknown); see
    /// [`single_job_time_at`][Self::single_job_time_at].
    pub fn single_job_time(&self, job: &Job) -> Duration {
        self.single_job_time_at(job, SimTime::ZERO)
            .unwrap_or(Duration::ZERO)
    }

    /// End-to-end time for a single job submitted at absolute instant `at`:
    /// a worker inside one of the plan's outage windows only starts the job
    /// once it recovers (the job queues — §3's graceful degradation: the
    /// cost of a dead worker is latency, not a lost answer). Returns `None`
    /// only when *every* worker is down forever past `at` (impossible with
    /// finite windows).
    pub fn single_job_time_at(&self, job: &Job, at: SimTime) -> Option<Duration> {
        let upload = self.backhaul.tx_time(job.input_bytes);
        let download = self.backhaul.tx_time(job.output_bytes);
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let ready = at + upload;
                let start = self.faults.worker_up_at(i, ready);
                start.since(at) + n.compute_time(job.ops) + download
            })
            .min()
    }

    /// Greedy earliest-finish-time list scheduling of a batch. Jobs are
    /// placed in the order given; uploads share the backhaul serially (one
    /// pipe into the machine room), computation overlaps across nodes.
    /// Returns per-job placements and the batch makespan.
    pub fn schedule(&self, jobs: &[Job]) -> (Vec<Placement>, Duration) {
        self.schedule_at(jobs, SimTime::ZERO)
    }

    /// [`schedule`][Self::schedule] for a batch submitted at absolute
    /// instant `at`: workers inside plan outage windows accept no work
    /// until they recover. With the empty plan this is exactly `schedule`.
    // The constructor rejects empty clusters, so min_by_key always finds
    // a node.
    #[allow(clippy::expect_used)]
    pub fn schedule_at(&self, jobs: &[Job], at: SimTime) -> (Vec<Placement>, Duration) {
        let mut node_free = vec![Duration::ZERO; self.nodes.len()];
        let mut uplink_free = Duration::ZERO;
        let mut placements = Vec::with_capacity(jobs.len());
        let mut makespan = Duration::ZERO;
        // Earliest start on node `i` once its queue frees at `free` (relative
        // to `at`), pushed past any outage window covering that instant.
        let earliest_start = |i: usize, free: Duration, upload_done: Duration| {
            let queued = if free > upload_done {
                free
            } else {
                upload_done
            };
            self.faults.worker_up_at(i, at + queued).since(at)
        };
        for job in jobs {
            // Upload serializes on the shared backhaul.
            let upload_done = uplink_free + self.backhaul.tx_time(job.input_bytes);
            uplink_free = upload_done;
            // Pick the node that finishes the job soonest.
            let (best, finish) = node_free
                .iter()
                .enumerate()
                .map(|(i, &free)| {
                    let start = earliest_start(i, free, upload_done);
                    (i, start + self.nodes[i].compute_time(job.ops))
                })
                .min_by_key(|&(_, f)| f)
                .expect("non-empty cluster");
            let start = earliest_start(best, node_free[best], upload_done);
            node_free[best] = finish;
            let done = finish + self.backhaul.tx_time(job.output_bytes);
            if done > makespan {
                makespan = done;
            }
            placements.push(Placement {
                node: best,
                start,
                done,
            });
        }
        (placements, makespan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(name: &str, ops: u64) -> Job {
        Job {
            name: name.into(),
            ops,
            input_bytes: 1_000,
            output_bytes: 100,
        }
    }

    #[test]
    fn compute_time_scales_inversely_with_flops() {
        let fast = GridNode::new("fast", 10e9);
        let slow = GridNode::new("slow", 1e9);
        assert_eq!(fast.compute_time(10_000_000_000).as_secs_f64(), 1.0);
        assert_eq!(slow.compute_time(10_000_000_000).as_secs_f64(), 10.0);
    }

    #[test]
    fn single_job_includes_transfer_both_ways() {
        let c = GridCluster::campus();
        let j = job("j", 50_000_000_000); // 1 s on the 50 GF head
        let t = c.single_job_time(&j);
        let expect =
            c.backhaul().tx_time(1_000) + Duration::from_secs(1) + c.backhaul().tx_time(100);
        assert_eq!(t, expect);
    }

    #[test]
    fn batch_overlaps_across_nodes() {
        // Three equal jobs on a 3-node cluster finish ~in parallel.
        let nodes = vec![
            GridNode::new("a", 1e9),
            GridNode::new("b", 1e9),
            GridNode::new("c", 1e9),
        ];
        let c = GridCluster::new(nodes, LinkModel::wired_backhaul());
        let jobs: Vec<Job> = (0..3)
            .map(|i| job(&format!("j{i}"), 2_000_000_000))
            .collect();
        let (placements, makespan) = c.schedule(&jobs);
        // All three nodes used.
        let mut used: Vec<usize> = placements.iter().map(|p| p.node).collect();
        used.sort_unstable();
        assert_eq!(used, vec![0, 1, 2]);
        // Makespan well under serial time (3 x 2 s).
        assert!(makespan.as_secs_f64() < 3.0, "makespan {makespan}");
    }

    #[test]
    fn fast_node_attracts_work() {
        let c = GridCluster::campus();
        let (p, _) = c.schedule(&[job("big", 10_000_000_000)]);
        assert_eq!(p[0].node, 0, "the 50 GF head should win");
    }

    #[test]
    fn uploads_serialize_on_the_backhaul() {
        let c = GridCluster::campus();
        let jobs: Vec<Job> = (0..4)
            .map(|i| Job {
                name: format!("j{i}"),
                ops: 1,
                input_bytes: 100_000_000, // 8 s each at 100 Mbit/s
                output_bytes: 0,
            })
            .collect();
        let (_, makespan) = c.schedule(&jobs);
        assert!(
            makespan.as_secs_f64() > 30.0,
            "4 uploads x 8 s must serialize: {makespan}"
        );
    }

    #[test]
    fn dead_workers_queue_jobs_until_recovery() {
        let mut c = GridCluster::campus();
        let j = job("j", 50_000_000_000); // 1 s on the 50 GF head
        let clean = c.single_job_time(&j);
        // Kill every node for the first 100 s: the job waits, then runs.
        let mut b = FaultPlan::builder(1);
        for i in 0..c.nodes().len() {
            b = b.worker_outage(i, SimTime::ZERO, SimTime::from_secs(100));
        }
        c.set_fault_plan(b.build().unwrap());
        let t = c
            .single_job_time_at(&j, SimTime::ZERO)
            .expect("cluster answers eventually");
        assert!(t.as_secs_f64() > 100.0, "must wait out the outage: {t}");
        assert!(t.as_secs_f64() < 100.0 + clean.as_secs_f64() + 1.0);
        // Submitting after recovery costs nothing extra.
        let after = c
            .single_job_time_at(&j, SimTime::from_secs(200))
            .expect("cluster answers");
        assert_eq!(after, clean);
    }

    #[test]
    fn outage_on_the_fast_node_diverts_work() {
        let mut c = GridCluster::campus();
        c.set_fault_plan(
            FaultPlan::builder(1)
                .worker_outage(0, SimTime::ZERO, SimTime::from_secs(1_000))
                .build()
                .unwrap(),
        );
        // With the 50 GF head dead, a workstation takes the job rather
        // than waiting 1000 s.
        let (p, _) = c.schedule_at(&[job("big", 10_000_000_000)], SimTime::ZERO);
        assert_ne!(p[0].node, 0, "head is down, work must divert");
    }

    #[test]
    fn empty_plan_leaves_schedule_unchanged() {
        let c = GridCluster::campus();
        let jobs: Vec<Job> = (0..5)
            .map(|i| job(&format!("j{i}"), 1_000_000_000))
            .collect();
        let (p1, m1) = c.schedule(&jobs);
        let (p2, m2) = c.schedule_at(&jobs, SimTime::from_secs(777));
        assert_eq!(m1, m2);
        for (a, b) in p1.iter().zip(&p2) {
            assert_eq!((a.node, a.start, a.done), (b.node, b.start, b.done));
        }
    }

    #[test]
    fn makespan_bounds_every_placement() {
        let c = GridCluster::campus();
        let jobs: Vec<Job> = (0..10)
            .map(|i| job(&format!("j{i}"), 1_000_000_000))
            .collect();
        let (p, makespan) = c.schedule(&jobs);
        assert!(p.iter().all(|x| x.done <= makespan));
        assert!(p.iter().all(|x| x.start < x.done));
    }
}
