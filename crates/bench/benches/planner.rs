//! Microbenchmark: HTN decomposition and plan execution bookkeeping.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use pg_compose::htn::MethodLibrary;
use pg_compose::manager::{execute, ManagerKind, ServiceWorld};
use pg_discovery::description::ServiceDescription;
use pg_discovery::ontology::Ontology;
use pg_net::churn::ChurnSchedule;
use pg_sim::SimTime;

fn bench_decompose(c: &mut Criterion) {
    let lib = MethodLibrary::pervasive_grid();
    c.bench_function("htn_decompose_temperature_distribution", |b| {
        b.iter(|| lib.decompose("temperature-distribution").unwrap().len());
    });
    c.bench_function("htn_decompose_recursive_toxin", |b| {
        b.iter(|| lib.decompose("toxin-correlation").unwrap().len());
    });
}

fn bench_execute(c: &mut Criterion) {
    let onto = Ontology::pervasive_grid();
    let mut world = ServiceWorld::new();
    for class in [
        "TemperatureSensor",
        "MapService",
        "WeatherService",
        "PdeSolverService",
        "DisplayService",
    ] {
        for i in 0..4 {
            world.add_service(
                ServiceDescription::new(format!("{class}-{i}"), onto.class(class).unwrap()),
                ChurnSchedule::always_up(),
            );
        }
    }
    let plan = MethodLibrary::pervasive_grid()
        .decompose("temperature-distribution")
        .unwrap();
    c.bench_function("compose_execute_reactive_20_services", |b| {
        b.iter(|| {
            execute(
                &world,
                &onto,
                &plan,
                ManagerKind::DistributedReactive,
                SimTime::ZERO,
            )
            .utility
        });
    });
}

criterion_group!(benches, bench_decompose, bench_execute);
criterion_main!(benches);
