//! Microbenchmark: decision-maker inference (k-NN prediction + choice)
//! and the query front end (parse + classify).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_bench::standard_world;
use pg_partition::decide::{DecisionConfig, DecisionMaker, Policy};
use pg_partition::exec::ExecContext;
use pg_partition::features::QueryFeatures;
use pg_partition::learn::{
    BanditConfig, CandidateArm, LearnContext, Learner, LinUcbLearner, Reward,
};
use pg_partition::model::{CostVector, CostWeights, SolutionModel};

fn bench_parse_classify(c: &mut Criterion) {
    let text = "SELECT {MAX(temp), temp} from sensors WHERE {region(floor2) AND temp > 40} \
                COST {energy <= 0.5, time <= 2} EPOCH DURATION 500 ms";
    c.bench_function("query_parse_classify", |b| {
        b.iter(|| {
            let q = pg_query::parse(text).unwrap();
            pg_query::classify(&q)
        });
    });
}

fn bench_choose(c: &mut Criterion) {
    let mut w = standard_world(100, 4);
    let query = pg_query::parse("SELECT AVG(temp) FROM sensors").unwrap();
    let features = {
        let ctx = ExecContext {
            net: &mut w.net,
            grid: &w.grid,
            field: &w.field,
            regions: &w.regions,
            now: w.now,
        };
        QueryFeatures::extract(&ctx, &query).unwrap()
    };
    let mut g = c.benchmark_group("decision_maker");
    for &history in &[0usize, 100, 1_000] {
        let mut dm = DecisionMaker::with_config(
            Policy::Adaptive,
            5,
            DecisionConfig::builder().epsilon(0.0).build(),
        );
        for i in 0..history {
            let mut f = features;
            f.members = 10 + (i % 90);
            dm.record(
                &w.net,
                &w.grid,
                f,
                SolutionModel::candidates(f.members)[i % 4],
                CostVector {
                    energy_j: 0.001 * (i as f64 + 1.0),
                    time_s: 0.1,
                    bytes: 100.0,
                    ops: 100.0,
                },
            );
        }
        g.bench_with_input(
            BenchmarkId::new("choose_with_history", history),
            &history,
            |b, _| {
                b.iter(|| dm.choose(&w.net, &w.grid, &query, &features).unwrap());
            },
        );
    }
    g.finish();
}

fn bench_bandit(c: &mut Criterion) {
    let mut w = standard_world(100, 4);
    let query = pg_query::parse("SELECT AVG(temp) FROM sensors").unwrap();
    let features = {
        let ctx = ExecContext {
            net: &mut w.net,
            grid: &w.grid,
            field: &w.field,
            regions: &w.regions,
            now: w.now,
        };
        QueryFeatures::extract(&ctx, &query).unwrap()
    };
    let ctx = LearnContext {
        features,
        health: Default::default(),
        energy_bound: None,
        time_bound: None,
    };
    let arm = |key: usize| {
        let cost = CostVector {
            energy_j: 0.001 * (key as f64 + 1.0),
            time_s: 0.1 * (key as f64 + 1.0),
            bytes: 100.0,
            ops: 100.0,
        };
        CandidateArm {
            key,
            model: SolutionModel::candidates(features.members)[key % 5],
            analytic: cost,
            predicted: cost,
            score: key as f64 + 1.0,
        }
    };
    let mut g = c.benchmark_group("decision_maker");
    for &n in &[8usize, 64] {
        let arms: Vec<CandidateArm> = (0..n).map(arm).collect();
        // Warm every arm so select pays the full per-arm UCB cost.
        let mut learner = LinUcbLearner::new(BanditConfig::default(), CostWeights::default(), 5);
        for a in &arms {
            learner.observe(&ctx, a, &Reward::from_cost(a.analytic));
        }
        g.bench_with_input(BenchmarkId::new("bandit_select", n), &n, |b, _| {
            b.iter(|| learner.select(&ctx, &arms).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("bandit_observe", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let a = &arms[i % n];
                learner.observe(&ctx, a, &Reward::from_cost(a.analytic));
                i += 1;
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parse_classify, bench_choose, bench_bandit);
criterion_main!(benches);
