//! Microbenchmark: decision-maker inference (k-NN prediction + choice)
//! and the query front end (parse + classify).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_bench::standard_world;
use pg_partition::decide::{DecisionMaker, Policy};
use pg_partition::exec::ExecContext;
use pg_partition::features::QueryFeatures;
use pg_partition::model::{CostVector, SolutionModel};

fn bench_parse_classify(c: &mut Criterion) {
    let text = "SELECT {MAX(temp), temp} from sensors WHERE {region(floor2) AND temp > 40} \
                COST {energy <= 0.5, time <= 2} EPOCH DURATION 500 ms";
    c.bench_function("query_parse_classify", |b| {
        b.iter(|| {
            let q = pg_query::parse(text).unwrap();
            pg_query::classify(&q)
        });
    });
}

fn bench_choose(c: &mut Criterion) {
    let mut w = standard_world(100, 4);
    let query = pg_query::parse("SELECT AVG(temp) FROM sensors").unwrap();
    let features = {
        let ctx = ExecContext {
            net: &mut w.net,
            grid: &w.grid,
            field: &w.field,
            regions: &w.regions,
            now: w.now,
        };
        QueryFeatures::extract(&ctx, &query).unwrap()
    };
    let mut g = c.benchmark_group("decision_maker");
    for &history in &[0usize, 100, 1_000] {
        let mut dm = DecisionMaker::new(Policy::Adaptive, 5);
        dm.epsilon = 0.0;
        for i in 0..history {
            let mut f = features;
            f.members = 10 + (i % 90);
            dm.record(
                &w.net,
                &w.grid,
                f,
                SolutionModel::candidates(f.members)[i % 4],
                CostVector {
                    energy_j: 0.001 * (i as f64 + 1.0),
                    time_s: 0.1,
                    bytes: 100.0,
                    ops: 100.0,
                },
            );
        }
        g.bench_with_input(
            BenchmarkId::new("choose_with_history", history),
            &history,
            |b, _| {
                b.iter(|| dm.choose(&w.net, &w.grid, &query, &features).unwrap());
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_parse_classify, bench_choose);
criterion_main!(benches);
