//! Microbenchmark: semantic-match throughput vs registry size, and the
//! syntactic baselines for perspective.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pg_discovery::baselines::jini_match;
use pg_discovery::corpus::mixed_corpus;
use pg_discovery::description::{Preference, ServiceRequest};
use pg_discovery::matcher;
use pg_discovery::ontology::Ontology;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_matcher(c: &mut Criterion) {
    let onto = Ontology::pervasive_grid();
    let solver = onto.class("SolverService").unwrap();
    let mut g = c.benchmark_group("matcher");
    for &n in &[100usize, 1_000, 10_000] {
        let mut rng = StdRng::seed_from_u64(2);
        let corpus = mixed_corpus(&onto, n, &mut rng);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("semantic_ranked", n), &n, |b, _| {
            let req = ServiceRequest::for_class(solver)
                .with_preference(Preference::Minimize("cost".into()));
            b.iter(|| matcher::rank(&onto, &req, &corpus).len());
        });
        g.bench_with_input(BenchmarkId::new("jini_interface", n), &n, |b, _| {
            b.iter(|| jini_match(&corpus, "invoke").len());
        });
    }
    g.finish();
}

fn bench_subsumption(c: &mut Criterion) {
    let onto = Ontology::pervasive_grid();
    let service = onto.class("Service").unwrap();
    let leaf = onto.class("PdeSolverService").unwrap();
    c.bench_function("ontology_subsumption", |b| {
        b.iter(|| onto.up_distance(leaf, service));
    });
}

criterion_group!(benches, bench_matcher, bench_subsumption);
criterion_main!(benches);
