//! Microbenchmark: one epoch of each collection strategy.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_bench::standard_world;
use pg_sensornet::aggregate::AggFn;
use pg_sensornet::epoch::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_epoch(c: &mut Criterion) {
    let mut g = c.benchmark_group("collection_epoch");
    g.sample_size(20);
    for &n in &[50usize, 200] {
        for strategy in [
            Strategy::Direct,
            Strategy::Tree,
            Strategy::Cluster { heads: 5 },
        ] {
            g.bench_with_input(BenchmarkId::new(strategy.name(), n), &n, |b, &n| {
                b.iter_batched(
                    || {
                        let w = standard_world(n, 3);
                        let members: Vec<_> = w
                            .net
                            .topology()
                            .nodes()
                            .filter(|&x| x != w.net.base())
                            .collect();
                        (w, members)
                    },
                    |(mut w, members)| {
                        let mut rng = StdRng::seed_from_u64(9);
                        strategy.run_epoch(
                            &mut w.net,
                            &members,
                            &w.field,
                            w.now,
                            AggFn::Avg,
                            &mut rng,
                        )
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
    }
    g.finish();
}

fn bench_partial_merge(c: &mut Criterion) {
    use pg_sensornet::aggregate::Partial;
    let parts: Vec<Partial> = (0..1_000).map(|i| Partial::of(i as f64)).collect();
    c.bench_function("partial_merge_1000", |b| {
        b.iter(|| {
            let mut acc = Partial::empty();
            for p in &parts {
                acc.merge(p);
            }
            acc.finalize(AggFn::StdDev)
        });
    });
}

criterion_group!(benches, bench_epoch, bench_partial_merge);
criterion_main!(benches);
