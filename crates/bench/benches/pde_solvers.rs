//! Microbenchmark: the three PDE solvers on the reconstruction problem.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_grid::pde::{Problem, Solver};
use pg_net::geom::Point;

fn make_problem(n: usize) -> Problem {
    let mut p = Problem::new(n, n, n, Point::flat(0.0, 0.0), 1.0, 20.0);
    let c = (n / 2) as f64;
    p.add_constraint(&Point::new(c, c, c), 400.0);
    p
}

fn bench_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("pde");
    g.sample_size(10);
    for &n in &[16usize, 24] {
        let p = make_problem(n);
        for solver in [
            Solver::Jacobi,
            Solver::RedBlackGaussSeidel,
            Solver::Sor { omega_x100: 185 },
            Solver::ConjugateGradient,
        ] {
            g.bench_with_input(
                BenchmarkId::new(solver.name(), format!("{n}^3")),
                &n,
                |b, _| {
                    b.iter(|| {
                        let (_, stats) = p.solve(solver, 1e-5, 20_000);
                        assert!(stats.converged);
                        stats.iterations
                    });
                },
            );
        }
    }
    g.finish();
}

fn bench_residual(c: &mut Criterion) {
    let p = make_problem(32);
    let (field, _) = p.solve(Solver::ConjugateGradient, 1e-4, 5_000);
    c.bench_function("pde_residual_32", |b| b.iter(|| p.residual(&field)));
}

criterion_group!(benches, bench_solvers, bench_residual);
criterion_main!(benches);
