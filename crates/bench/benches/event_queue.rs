//! Microbenchmark: DES kernel event-queue throughput.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pg_sim::{Scheduler, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_schedule_pop(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for &n in &[1_000usize, 10_000, 100_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("schedule_then_drain", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            let times: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1_000_000)).collect();
            b.iter(|| {
                let mut s = Scheduler::new();
                for (i, &t) in times.iter().enumerate() {
                    s.schedule_at(SimTime::from_nanos(t), i);
                }
                let mut sum = 0usize;
                while let Some((_, i)) = s.pop() {
                    sum = sum.wrapping_add(i);
                }
                sum
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schedule_pop);
criterion_main!(benches);
