//! Microbenchmark: the journal-replay hot path. `open_queries` folds the
//! whole append-only record stream into the set of still-open admissions
//! every time a crashed cell restarts, so its cost lands squarely inside
//! the recovery window — while the cell's users are already waiting.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_runtime::{JournalRecord, QueryId, QueryJournal};
use pg_sim::SimTime;

/// A journal with `n` admissions in a realistic mix: most queries closed
/// (completed / shed / migrated away), a tail still open at the crash.
fn journal_with(n: u64) -> QueryJournal {
    let mut j = QueryJournal::new();
    for i in 0..n {
        j.append(JournalRecord::Admitted {
            id: QueryId(i),
            text: "SELECT AVG(temp) FROM sensors".into(),
            submitted_at: SimTime::from_secs(i),
            deadline_abs: (i % 3 == 0).then(|| SimTime::from_secs(i + 600)),
            estimate_j: 1.5,
            priority: (i % 3) as u8,
        });
        // Close 7 of every 8: completions dominate, with shed and
        // migration records interleaved the way a live cell writes them.
        if i % 8 != 5 {
            j.append(match i % 3 {
                0 => JournalRecord::Completed { id: QueryId(i) },
                1 => JournalRecord::Shed { id: QueryId(i) },
                _ => JournalRecord::MigratedOut { id: QueryId(i) },
            });
        }
    }
    j
}

fn bench_open_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("journal");
    for &n in &[1_000u64, 10_000] {
        let j = journal_with(n);
        g.bench_with_input(BenchmarkId::new("open_queries", n), &n, |b, _| {
            b.iter(|| j.open_queries());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_open_queries);
criterion_main!(benches);
