//! Microbenchmark: the shedding-decision hot path. `shed_victims` runs a
//! policy-ordered survivor scan over the whole waiting queue at the top of
//! every service round while the runtime is in the Shed state, so its cost
//! lands on the overloaded path — exactly where there is no headroom.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_core::PervasiveGrid;
use pg_runtime::{
    MultiQueryRuntime, OverloadConfig, OverloadPolicy, QueryOpts, RuntimeConfig, SchedPolicy,
};
use pg_sim::Duration;

/// A runtime whose queue holds `depth` deadline-carrying queries, mixed so
/// the survivor scan sees both doomed and rescuable entries.
fn backlogged(depth: usize) -> MultiQueryRuntime<PervasiveGrid> {
    let cfg = RuntimeConfig::builder()
        .capacity(depth + 1)
        .epoch(Duration::from_secs(30))
        .slots_per_epoch(4)
        .policy(SchedPolicy::Edf)
        .overload(OverloadConfig::watermarks(
            OverloadPolicy::Shed,
            0,
            0,
            depth + 1,
            depth + 1,
        ))
        .build();
    let pg = PervasiveGrid::building(1, 6, 7).build();
    let mut rt = MultiQueryRuntime::new(cfg, pg);
    for i in 0..depth {
        let deadline = Duration::from_secs(30 + (i as u64 * 37) % 600);
        let adm = rt.submit(
            "SELECT AVG(temp) FROM sensors",
            QueryOpts::with_deadline(deadline).priority((i % 3) as u8),
        );
        assert!(adm.is_accepted());
    }
    rt
}

fn bench_shed_victims(c: &mut Criterion) {
    let mut g = c.benchmark_group("overload");
    for &depth in &[64usize, 256] {
        let rt = backlogged(depth);
        g.bench_with_input(BenchmarkId::new("shed_victims", depth), &depth, |b, _| {
            b.iter(|| rt.shed_victims());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_shed_victims);
criterion_main!(benches);
