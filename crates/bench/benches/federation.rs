//! Microbenchmarks: the federation control plane. One gossip round is the
//! recurring cost every cell pays forever, and handoff-ledger merges ride
//! on every gossip contact — both scale with federation size, so they are
//! measured at 64 and 256 cells.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pg_federation::handoff::{HandoffId, HandoffKind, HandoffPhase, HandoffRecord, HandoffStore};
use pg_federation::{gossip_round, CellId, GossipConfig, LoadDigest, Membership};
use pg_sim::SimTime;

/// Rounds of warm-up gossip before measurement starts.
const WARM_ROUNDS: u64 = 32;

/// A federation of `n` cells with fully converged membership views (the
/// steady state: every digest carries all `n` entries). Callers must keep
/// advancing sim time from `WARM_ROUNDS` — a gap larger than the eviction
/// timeout would mass-evict the whole table and measure a frozen world.
fn converged(n: usize) -> (Vec<Membership>, Vec<HandoffStore>, Vec<bool>) {
    let mut members: Vec<Membership> = (0..n)
        .map(|i| Membership::new(CellId(i as u32), &[CellId(0)], SimTime::ZERO))
        .collect();
    let mut handoffs: Vec<HandoffStore> = (0..n).map(|_| HandoffStore::new()).collect();
    let up = vec![true; n];
    let cfg = GossipConfig::default();
    for round in 1..=WARM_ROUNDS {
        let now = SimTime::from_secs(30 * round);
        for m in &mut members {
            m.beat(now, LoadDigest::default());
        }
        gossip_round(&mut members, &mut handoffs, &up, now, &cfg, 7, round);
    }
    assert!(
        members.iter().all(|m| m.live_set().len() == n),
        "warm-up did not converge: the bench would measure a degraded world"
    );
    (members, handoffs, up)
}

/// A ledger holding `n` handoff records spread across `cells` cells.
fn ledger(cells: u32, n: u64) -> HandoffStore {
    let mut store = HandoffStore::new();
    for seq in 0..n {
        let from = CellId((seq % u64::from(cells)) as u32);
        let to = CellId(((seq + 1) % u64::from(cells)) as u32);
        store.open(HandoffRecord {
            id: HandoffId::mint(from, seq),
            user: seq,
            from,
            to,
            kind: if seq % 3 == 0 {
                HandoffKind::ForwardHome
            } else {
                HandoffKind::Migrate
            },
            phase: match seq % 3 {
                0 => HandoffPhase::Pending,
                1 => HandoffPhase::InProgress,
                _ => HandoffPhase::Completed,
            },
            opened_at: SimTime::from_secs(seq),
            completed_at: None,
            latency_s: None,
            warm: seq % 2 == 0,
        });
    }
    store
}

fn bench_gossip_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("federation");
    for &n in &[64usize, 256] {
        let (mut members, mut handoffs, up) = converged(n);
        let cfg = GossipConfig::default();
        // Continue sim time from the warm-up rounds: a time jump here would
        // exceed `evict_after` and silently bench a mass-evicted table.
        let mut round = WARM_ROUNDS;
        g.bench_with_input(BenchmarkId::new("gossip_round", n), &n, |b, _| {
            b.iter(|| {
                round += 1;
                let now = SimTime::from_secs(30 * round);
                for m in &mut members {
                    m.beat(now, LoadDigest::default());
                }
                gossip_round(&mut members, &mut handoffs, &up, now, &cfg, 7, round);
            });
        });
    }
    g.finish();
}

fn bench_handoff_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("federation");
    for &cells in &[64u32, 256] {
        // Steady-state anti-entropy: merging a full peer snapshot into a
        // replica that already knows every record (4 records per cell).
        let snapshot = ledger(cells, u64::from(cells) * 4).snapshot();
        let mut replica = ledger(cells, u64::from(cells) * 4);
        g.bench_with_input(BenchmarkId::new("handoff_merge", cells), &cells, |b, _| {
            b.iter(|| replica.merge(&snapshot));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gossip_round, bench_handoff_merge);
criterion_main!(benches);
