//! Determinism properties of the chaos harness: the reliable-messaging
//! retry counts are a pure function of the seed, so a rayon-parallel
//! multi-seed sweep must emit a report byte-identical to the serial
//! sweep's — the same contract `replicate_par` already guarantees for
//! float summaries, here exercised through the full agent stack under
//! 30 % message loss.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_agent::deputy::DirectDeputy;
use pg_agent::envelope::Payload;
use pg_agent::profile::{AgentAttribute, AgentProfile};
use pg_agent::{Agent, AgentSystem, Envelope, ReliableConfig};
use pg_bench::{replicate, replicate_par};
use pg_net::link::LinkModel;
use pg_sim::fault::FaultPlan;
use pg_sim::SimTime;

struct Echo {
    profile: AgentProfile,
}

impl Agent for Echo {
    fn profile(&self) -> &AgentProfile {
        &self.profile
    }
    fn handle(&mut self, _now: SimTime, env: Envelope) -> Vec<Envelope> {
        if env.content_type == "acl/ping" {
            vec![env.reply("acl/pong", Payload::Text("pong".into()))]
        } else {
            Vec::new()
        }
    }
}

struct Sink {
    profile: AgentProfile,
}

impl Agent for Sink {
    fn profile(&self) -> &AgentProfile {
        &self.profile
    }
    fn handle(&mut self, _now: SimTime, _env: Envelope) -> Vec<Envelope> {
        Vec::new()
    }
}

/// Total reliable-delivery retries for one seeded lossy ping run.
fn retries_for_seed(seed: u64) -> f64 {
    let mut sys = AgentSystem::new();
    sys.enable_reliability(ReliableConfig::default(), seed);
    sys.set_fault_plan(
        FaultPlan::builder(seed)
            .message_loss(0.3)
            .build()
            .expect("valid plan"),
    );
    let client = sys.register(
        Box::new(Sink {
            profile: AgentProfile::new().with_attr(AgentAttribute::Client),
        }),
        Box::new(DirectDeputy::new(LinkModel::wifi())),
    );
    let server = sys.register(
        Box::new(Echo {
            profile: AgentProfile::new(),
        }),
        Box::new(DirectDeputy::new(LinkModel::wifi())),
    );
    for _ in 0..12 {
        sys.send(Envelope::text(client, server, "acl/ping", "ping"));
    }
    sys.run_to_quiescence();
    // Lossy runs must actually complete: retries absorb the loss.
    assert_eq!(sys.metrics().counter("reliable.dead_letter"), 0);
    sys.metrics().counter("reliable.retries") as f64
}

#[test]
fn retry_totals_are_identical_parallel_and_serial() {
    let serial = replicate(8, retries_for_seed);
    let parallel = replicate_par(8, retries_for_seed);
    let render = |s: &pg_sim::metrics::Summary| {
        let mut r = pg_sim::report::Report::new("chaos_retry_probe");
        r.set_meta("mode", "test");
        r.record_summary("retries", s);
        r.to_json().expect("finite")
    };
    assert_eq!(render(&serial), render(&parallel));
    // And the per-seed function really is seed-sensitive, not constant.
    assert!(serial.max() > serial.min(), "retries should vary with seed");
}

#[test]
fn identical_seeds_identical_retry_totals() {
    assert_eq!(retries_for_seed(3), retries_for_seed(3));
    assert_eq!(retries_for_seed(9), retries_for_seed(9));
}
