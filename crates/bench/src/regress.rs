//! Baseline comparison for experiment reports: the logic behind the
//! `regress` binary.
//!
//! A committed baseline `baselines/BENCH_<exp>.json` is diffed against a
//! fresh `results/<exp>.json` metric by metric (the flattened numeric
//! leaves of the report). The simulation is deterministic — seeded RNG,
//! sequential reductions — so the default tolerance is tiny and exists only
//! to absorb libm differences across platforms; per-metric overrides widen
//! it where an experiment is legitimately noisier.

use pg_sim::report::Report;

/// Relative tolerance configuration.
#[derive(Debug, Clone)]
pub struct Tolerances {
    /// Default relative tolerance for every metric.
    pub default_rel: f64,
    /// `(path prefix, rel)` overrides; the longest matching prefix wins.
    pub overrides: Vec<(String, f64)>,
    /// `(path suffix, rel)` overrides — e.g. `.p95` to widen every
    /// percentile leaf across experiments. Checked before the prefix
    /// overrides; the longest matching suffix wins.
    pub suffix_overrides: Vec<(String, f64)>,
    /// Values with magnitude below this floor are compared absolutely
    /// (relative error is meaningless near zero).
    pub abs_floor: f64,
    /// When set, only increases over the baseline count as drift — the
    /// gate for wall-clock metrics, where getting faster is never a
    /// regression. Deterministic simulation metrics keep the default
    /// two-sided comparison.
    pub one_sided: bool,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            default_rel: 1e-9,
            overrides: Vec::new(),
            suffix_overrides: Vec::new(),
            abs_floor: 1e-12,
            one_sided: false,
        }
    }
}

impl Tolerances {
    /// The relative tolerance applying to `path`: the longest matching
    /// suffix override, else the longest matching prefix override, else
    /// the default.
    pub fn rel_for(&self, path: &str) -> f64 {
        self.suffix_overrides
            .iter()
            .filter(|(suffix, _)| path.ends_with(suffix.as_str()))
            .max_by_key(|(suffix, _)| suffix.len())
            .map(|&(_, rel)| rel)
            .or_else(|| {
                self.overrides
                    .iter()
                    .filter(|(prefix, _)| path.starts_with(prefix.as_str()))
                    .max_by_key(|(prefix, _)| prefix.len())
                    .map(|&(_, rel)| rel)
            })
            .unwrap_or(self.default_rel)
    }

    /// Install the standard percentile suffix overrides (`.p50`/`.p90`/
    /// `.p95`/`.p99` at `rel`): order statistics sit on sample boundaries,
    /// so they deserve their own (usually wider) tolerance than means.
    pub fn with_percentile_tolerance(mut self, rel: f64) -> Self {
        for q in ["p50", "p90", "p95", "p99"] {
            self.suffix_overrides.push((format!(".{q}"), rel));
        }
        self
    }
}

/// One out-of-tolerance metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// Flattened metric path (`stats.<key>.mean`, `counters.<key>`, …).
    pub path: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub fresh: f64,
    /// Measured relative error.
    pub rel_err: f64,
    /// Tolerance it violated.
    pub tolerance: f64,
}

/// Result of diffing one fresh report against its baseline.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Hard failures: drifted metrics, metrics missing from the fresh
    /// report, or a mode mismatch. Any entry fails the gate.
    pub violations: Vec<String>,
    /// Out-of-tolerance metrics (also mirrored into `violations`).
    pub drifts: Vec<Drift>,
    /// Soft findings: metrics present in the fresh report but absent from
    /// the baseline (the baseline is stale but nothing regressed).
    pub warnings: Vec<String>,
    /// Leaf key paths present in the baseline but absent from the fresh
    /// report (also mirrored into `violations`). A renamed or dropped
    /// metric shows up here by its exact flattened path.
    pub missing: Vec<String>,
    /// Leaf key paths present in the fresh report but absent from the
    /// baseline (also mirrored into `warnings`).
    pub extra: Vec<String>,
    /// Number of metrics compared within tolerance.
    pub matched: usize,
}

impl Comparison {
    /// True when the gate passes for this report.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Diff `fresh` against `baseline` under `tol`.
///
/// Fails on: mode mismatch (a smoke report diffed against a full baseline
/// is a harness misconfiguration, not a regression), any baseline metric
/// missing from the fresh report, and any metric outside tolerance. Metrics
/// only present in the fresh report produce warnings — new instrumentation
/// should not fail the gate, but the baseline wants refreshing.
pub fn compare(baseline: &Report, fresh: &Report, tol: &Tolerances) -> Comparison {
    let mut cmp = Comparison::default();
    let base_mode = baseline.meta.get("mode");
    let fresh_mode = fresh.meta.get("mode");
    if base_mode != fresh_mode {
        cmp.violations.push(format!(
            "mode mismatch: baseline {:?} vs fresh {:?}",
            base_mode.map(String::as_str).unwrap_or("?"),
            fresh_mode.map(String::as_str).unwrap_or("?"),
        ));
        return cmp;
    }
    let fresh_flat: std::collections::BTreeMap<String, f64> = fresh.flatten().into_iter().collect();
    let mut seen = std::collections::BTreeSet::new();
    for (path, base_value) in baseline.flatten() {
        seen.insert(path.clone());
        let Some(&fresh_value) = fresh_flat.get(&path) else {
            cmp.violations.push(format!("missing metric: {path}"));
            cmp.missing.push(path);
            continue;
        };
        let rel = tol.rel_for(&path);
        let denom = base_value.abs().max(tol.abs_floor);
        let err = if tol.one_sided {
            (fresh_value - base_value).max(0.0)
        } else {
            (fresh_value - base_value).abs()
        };
        let rel_err = err / denom;
        if rel_err > rel {
            cmp.violations.push(format!(
                "drift: {path}: baseline {base_value} -> fresh {fresh_value} \
                 (rel err {rel_err:.3e} > tol {rel:.1e})"
            ));
            cmp.drifts.push(Drift {
                path,
                baseline: base_value,
                fresh: fresh_value,
                rel_err,
                tolerance: rel,
            });
        } else {
            cmp.matched += 1;
        }
    }
    for (path, _) in fresh.flatten() {
        if !seen.contains(&path) {
            cmp.warnings
                .push(format!("extra metric (not in baseline): {path}"));
            cmp.extra.push(path);
        }
    }
    cmp
}

/// Render the missing/extra leaf paths of a comparison as explicit
/// labelled blocks — empty string when the key sets match. This is what
/// the `regress` binary prints on a mismatch, so a renamed metric shows
/// up as one line under each heading instead of being buried in the
/// violation stream.
pub fn key_mismatch_report(cmp: &Comparison) -> String {
    let mut out = String::new();
    if !cmp.missing.is_empty() {
        out.push_str(&format!(
            "  missing leaf paths (in baseline, absent from fresh): {}\n",
            cmp.missing.len()
        ));
        for p in &cmp.missing {
            out.push_str(&format!("    - {p}\n"));
        }
    }
    if !cmp.extra.is_empty() {
        out.push_str(&format!(
            "  extra leaf paths (in fresh, absent from baseline): {}\n",
            cmp.extra.len()
        ));
        for p in &cmp.extra {
            out.push_str(&format!("    + {p}\n"));
        }
    }
    out
}

/// Render drifted metrics as an aligned human-readable table.
pub fn drift_table(drifts: &[Drift]) -> String {
    let mut out = String::new();
    let width = drifts
        .iter()
        .map(|d| d.path.len())
        .max()
        .unwrap_or(6)
        .max(6);
    out.push_str(&format!(
        "{:<width$}  {:>14}  {:>14}  {:>10}  {:>8}\n",
        "metric", "baseline", "fresh", "rel err", "tol"
    ));
    for d in drifts {
        out.push_str(&format!(
            "{:<width$}  {:>14.6e}  {:>14.6e}  {:>10.3e}  {:>8.1e}\n",
            d.path, d.baseline, d.fresh, d.rel_err, d.tolerance
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pg_sim::metrics::Summary;

    fn report(name: &str, mode: &str, scalars: &[(&str, f64)]) -> Report {
        let mut r = Report::new(name);
        r.set_meta("mode", mode);
        for &(k, v) in scalars {
            r.set_scalar(k, v);
        }
        r
    }

    #[test]
    fn identical_reports_pass() {
        let a = report("e", "smoke", &[("x", 1.5), ("y", 0.0)]);
        let cmp = compare(&a, &a.clone(), &Tolerances::default());
        assert!(cmp.ok(), "{:?}", cmp.violations);
        assert_eq!(cmp.matched, 2);
        assert!(cmp.warnings.is_empty());
    }

    #[test]
    fn within_tolerance_passes() {
        let base = report("e", "smoke", &[("x", 100.0)]);
        let fresh = report("e", "smoke", &[("x", 100.0 + 1e-8)]);
        let tol = Tolerances {
            default_rel: 1e-6,
            ..Tolerances::default()
        };
        assert!(compare(&base, &fresh, &tol).ok());
    }

    #[test]
    fn drift_fails_with_table() {
        let base = report("e", "smoke", &[("x", 100.0)]);
        let fresh = report("e", "smoke", &[("x", 101.0)]);
        let cmp = compare(&base, &fresh, &Tolerances::default());
        assert!(!cmp.ok());
        assert_eq!(cmp.drifts.len(), 1);
        let d = &cmp.drifts[0];
        assert_eq!(d.path, "scalars.x");
        assert!((d.rel_err - 0.01).abs() < 1e-12);
        let table = drift_table(&cmp.drifts);
        assert!(table.contains("scalars.x"), "table: {table}");
        assert!(table.contains("baseline"), "table: {table}");
    }

    #[test]
    fn missing_metric_fails() {
        let base = report("e", "smoke", &[("x", 1.0), ("gone", 2.0)]);
        let fresh = report("e", "smoke", &[("x", 1.0)]);
        let cmp = compare(&base, &fresh, &Tolerances::default());
        assert!(!cmp.ok());
        assert!(
            cmp.violations
                .iter()
                .any(|v| v.contains("missing metric: scalars.gone")),
            "{:?}",
            cmp.violations
        );
    }

    #[test]
    fn extra_metric_warns_but_passes() {
        let base = report("e", "smoke", &[("x", 1.0)]);
        let fresh = report("e", "smoke", &[("x", 1.0), ("new", 9.0)]);
        let cmp = compare(&base, &fresh, &Tolerances::default());
        assert!(cmp.ok(), "{:?}", cmp.violations);
        assert!(
            cmp.warnings.iter().any(|w| w.contains("scalars.new")),
            "{:?}",
            cmp.warnings
        );
    }

    #[test]
    fn missing_and_extra_leaf_paths_are_listed_explicitly() {
        // A renamed metric = one missing + one extra; both exact paths
        // must be carried structurally and rendered under headings.
        let base = report("e", "smoke", &[("x", 1.0), ("old_name", 2.0)]);
        let fresh = report("e", "smoke", &[("x", 1.0), ("new_name", 2.0)]);
        let cmp = compare(&base, &fresh, &Tolerances::default());
        assert!(!cmp.ok());
        assert_eq!(cmp.missing, vec!["scalars.old_name".to_string()]);
        assert_eq!(cmp.extra, vec!["scalars.new_name".to_string()]);
        let rendered = key_mismatch_report(&cmp);
        assert!(
            rendered.contains("missing leaf paths") && rendered.contains("- scalars.old_name"),
            "missing block absent: {rendered}"
        );
        assert!(
            rendered.contains("extra leaf paths") && rendered.contains("+ scalars.new_name"),
            "extra block absent: {rendered}"
        );
        // A clean comparison renders nothing.
        let clean = compare(&base, &base.clone(), &Tolerances::default());
        assert_eq!(key_mismatch_report(&clean), "");
    }

    #[test]
    fn mode_mismatch_fails_fast() {
        let base = report("e", "full", &[("x", 1.0)]);
        let fresh = report("e", "smoke", &[("x", 1.0)]);
        let cmp = compare(&base, &fresh, &Tolerances::default());
        assert!(!cmp.ok());
        assert!(cmp.violations[0].contains("mode mismatch"));
    }

    #[test]
    fn one_sided_passes_improvements_and_fails_regressions() {
        let base = report("e", "bench", &[("jacobi_ns", 1000.0)]);
        let tol = Tolerances {
            default_rel: 0.25,
            one_sided: true,
            ..Tolerances::default()
        };
        // 40% faster: fine under one-sided, would drift two-sided.
        let faster = report("e", "bench", &[("jacobi_ns", 600.0)]);
        assert!(compare(&base, &faster, &tol).ok());
        let two_sided = Tolerances {
            default_rel: 0.25,
            ..Tolerances::default()
        };
        assert!(!compare(&base, &faster, &two_sided).ok());
        // 20% slower: inside the 25% band.
        let slower_ok = report("e", "bench", &[("jacobi_ns", 1200.0)]);
        assert!(compare(&base, &slower_ok, &tol).ok());
        // 2x slower: drift.
        let slower = report("e", "bench", &[("jacobi_ns", 2000.0)]);
        let cmp = compare(&base, &slower, &tol);
        assert!(!cmp.ok());
        assert_eq!(cmp.drifts[0].path, "scalars.jacobi_ns");
    }

    #[test]
    fn near_zero_values_compare_absolutely() {
        // 0 vs 1e-15: relative error undefined; abs_floor keeps it passing.
        let base = report("e", "smoke", &[("z", 0.0)]);
        let fresh = report("e", "smoke", &[("z", 1e-15)]);
        let tol = Tolerances {
            default_rel: 1e-2,
            ..Tolerances::default()
        };
        assert!(compare(&base, &fresh, &tol).ok());
    }

    #[test]
    fn longest_prefix_override_wins() {
        let tol = Tolerances {
            default_rel: 1e-9,
            overrides: vec![("stats.".into(), 1e-6), ("stats.latency".into(), 1e-2)],
            ..Tolerances::default()
        };
        assert_eq!(tol.rel_for("counters.tx"), 1e-9);
        assert_eq!(tol.rel_for("stats.energy.mean"), 1e-6);
        assert_eq!(tol.rel_for("stats.latency_s.mean"), 1e-2);
    }

    #[test]
    fn suffix_overrides_beat_prefixes_and_longest_suffix_wins() {
        let tol = Tolerances {
            default_rel: 1e-9,
            overrides: vec![("stats.".into(), 1e-6)],
            suffix_overrides: vec![(".p95".into(), 1e-3), ("latency.p95".into(), 1e-2)],
            ..Tolerances::default()
        };
        // Suffix match wins over the prefix override covering the same path.
        assert_eq!(tol.rel_for("stats.response_s.p95"), 1e-3);
        // The longest matching suffix wins among suffixes.
        assert_eq!(tol.rel_for("stats.latency.p95"), 1e-2);
        // Non-matching paths fall through to prefix, then default.
        assert_eq!(tol.rel_for("stats.response_s.mean"), 1e-6);
        assert_eq!(tol.rel_for("counters.tx"), 1e-9);
    }

    #[test]
    fn percentile_tolerance_covers_every_quantile_leaf() {
        let tol = Tolerances::default().with_percentile_tolerance(1e-6);
        for q in ["p50", "p90", "p95", "p99"] {
            assert_eq!(tol.rel_for(&format!("stats.response_s.{q}")), 1e-6);
        }
        assert_eq!(tol.rel_for("stats.response_s.mean"), 1e-9);
    }

    #[test]
    fn percentile_drift_beyond_tolerance_still_fails() {
        let mut base = Report::new("e");
        base.set_meta("mode", "smoke");
        base.set_scalar("x", 1.0);
        base.stats.insert(
            "response_s".into(),
            pg_sim::report::SummaryStats {
                p95: Some(10.0),
                ..pg_sim::report::SummaryStats::default()
            },
        );
        let mut fresh = base.clone();
        fresh.stats.get_mut("response_s").unwrap().p95 = Some(12.0);
        let tol = Tolerances::default().with_percentile_tolerance(1e-2);
        let cmp = compare(&base, &fresh, &tol);
        assert!(!cmp.ok());
        assert!(
            cmp.drifts.iter().any(|d| d.path == "stats.response_s.p95"),
            "{:?}",
            cmp.violations
        );
        // Within the widened tolerance the same leaf passes.
        fresh.stats.get_mut("response_s").unwrap().p95 = Some(10.05);
        let cmp = compare(
            &base,
            &fresh,
            &Tolerances::default().with_percentile_tolerance(1e-2),
        );
        assert!(cmp.ok(), "{:?}", cmp.violations);
    }

    #[test]
    fn summary_stats_are_compared_per_field() {
        let mut s = Summary::new();
        s.record(1.0);
        s.record(3.0);
        let mut base = Report::new("e");
        base.set_meta("mode", "smoke");
        base.record_summary("m", &s);
        let mut drifted = base.clone();
        drifted.stats.get_mut("m").unwrap().max = 4.0;
        let cmp = compare(&base, &drifted, &Tolerances::default());
        assert!(!cmp.ok());
        assert_eq!(cmp.drifts.len(), 1);
        assert_eq!(cmp.drifts[0].path, "stats.m.max");
    }
}
