//! Shared plumbing for the experiment harness binaries.
//!
//! Every `exp_*` binary in `src/bin/` regenerates one table or figure of
//! EXPERIMENTS.md. This library holds the world builders and the table
//! formatting they share, so each binary is just its sweep — plus the
//! [`experiment`] report plumbing (every binary also writes a
//! machine-readable `results/<exp>.json`) and the [`regress`] comparator
//! that diffs those reports against committed baselines in CI.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod experiment;
pub mod regress;

pub use experiment::{key_part, Experiment};

use pg_grid::sched::GridCluster;
use pg_net::energy::RadioModel;
use pg_net::geom::Point;
use pg_net::link::LinkModel;
use pg_net::topology::Topology;
use pg_sensornet::field::TemperatureField;
use pg_sensornet::network::SensorNetwork;
use pg_sensornet::region::Region;
use pg_sim::metrics::Summary;
use pg_sim::{Duration, SimTime};
use std::collections::BTreeMap;

/// A standard experiment world: an `n`-sensor random-geometric deployment
/// over a fire, lossless radios unless stated otherwise.
pub struct World {
    /// The sensor network.
    pub net: SensorNetwork,
    /// The campus grid.
    pub grid: GridCluster,
    /// The burning-building field.
    pub field: TemperatureField,
    /// Named regions (a quarter-area "room210").
    pub regions: BTreeMap<String, Region>,
    /// Query submission instant (10 min after ignition).
    pub now: SimTime,
}

/// Build the standard world: `n` sensors in a `side × side` metre arena
/// (side scales with sqrt(n) to keep density constant), 2 % link loss.
pub fn standard_world(n: usize, seed: u64) -> World {
    standard_world_with_loss(n, seed, 0.02)
}

/// [`standard_world`] with an explicit link-loss probability.
///
/// # Panics
/// Panics when `loss` is outside `[0, 1)`.
#[allow(clippy::unwrap_used)]
pub fn standard_world_with_loss(n: usize, seed: u64, loss: f64) -> World {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // Constant density: ~1 sensor per 100 m², radio range 18 m.
    let side = ((n as f64) * 100.0).sqrt();
    let topo = loop {
        let t = Topology::random_geometric(n, side, side, 18.0, &mut rng);
        if t.is_connected() {
            break t;
        }
    };
    let base = topo.nearest_to(Point::flat(0.0, 0.0));
    let mut net = SensorNetwork::new(
        topo,
        base,
        RadioModel::mote(),
        LinkModel::new(250e3, Duration::from_millis(5), loss).unwrap(),
        50.0,
    );
    net.noise_sd = 0.5;
    let mut regions = BTreeMap::new();
    regions.insert(
        "room210".to_string(),
        Region::room(0.0, 0.0, side / 2.0, side / 2.0),
    );
    World {
        net,
        grid: GridCluster::campus(),
        field: TemperatureField::building_fire(
            Point::flat(side / 2.0, side / 2.0),
            SimTime::ZERO,
            400.0,
        ),
        regions,
        now: SimTime::from_secs(600),
    }
}

/// Mean over `reps` replications of `f(seed)`.
pub fn replicate(reps: u64, mut f: impl FnMut(u64) -> f64) -> Summary {
    let mut s = Summary::new();
    for seed in 0..reps {
        s.record(f(seed));
    }
    s
}

/// [`replicate`] with the per-seed runs fanned out across the rayon pool.
///
/// Determinism contract: each seed's result is computed independently and
/// the per-seed values are folded into the [`Summary`] **in seed order**
/// after the parallel map completes, so the result is bit-identical to
/// [`replicate`] no matter how the seeds were scheduled across threads.
pub fn replicate_par(reps: u64, f: impl Fn(u64) -> f64 + Sync + Send) -> Summary {
    use rayon::prelude::*;
    let per_seed: Vec<f64> = (0..reps).into_par_iter().map(f).collect();
    let mut s = Summary::new();
    for x in per_seed {
        s.record(x);
    }
    s
}

/// Print a table header: a title line, a rule, and column labels.
pub fn header(title: &str, cols: &[(&str, usize)]) {
    println!("\n{title}");
    let width: usize = cols.iter().map(|(_, w)| w + 2).sum();
    println!("{}", "-".repeat(width));
    let mut line = String::new();
    for (name, w) in cols {
        line.push_str(&format!("{name:>w$}  ", w = w));
    }
    println!("{line}");
    println!("{}", "-".repeat(width));
}

/// Format a float cell compactly (engineering-ish).
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 || x.abs() < 0.001 {
        format!("{x:.2e}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_world_is_connected_and_deterministic() {
        let a = standard_world(100, 1);
        let b = standard_world(100, 1);
        assert!(a.net.topology().is_connected());
        assert_eq!(a.net.topology().edge_count(), b.net.topology().edge_count());
        assert_eq!(a.net.len(), 100);
    }

    #[test]
    fn replicate_accumulates() {
        let s = replicate(10, |seed| seed as f64);
        assert_eq!(s.count(), 10);
        assert!((s.mean() - 4.5).abs() < 1e-12);
    }

    /// The tentpole determinism guarantee: a parallel multi-seed sweep
    /// emits a report byte-identical to the serial sweep's. Uses a
    /// float-heavy per-seed computation whose reduction order would show
    /// in the bytes if `replicate_par` merged out of seed order.
    #[test]
    fn parallel_and_serial_sweeps_emit_identical_reports() {
        use rand::prelude::*;
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
            (0..257).map(|_| rng.gen::<f64>().sin() * 1e3).sum::<f64>()
        };
        let build = |summary: &Summary| {
            let mut r = pg_sim::report::Report::new("determinism_probe");
            r.set_meta("mode", "test");
            r.record_summary("per_seed_sum", summary);
            r.set_scalar("mean", summary.mean());
            r.to_json().expect("finite")
        };
        let serial = build(&replicate(16, run));
        let parallel = build(&replicate_par(16, run));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn fmt_covers_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(12345.0), "1.23e4");
        assert_eq!(fmt(42.0), "42.0");
        assert_eq!(fmt(1.5), "1.5000");
        assert_eq!(fmt(0.0001), "1.00e-4");
    }
}
