//! Per-binary experiment plumbing: CLI flags, smoke scaling, and JSON
//! report emission.
//!
//! Every `exp_*` binary wraps its run in an [`Experiment`]: the table output
//! on stdout stays exactly as before (EXPERIMENTS.md is regenerated from
//! it), and in addition every number that lands in a table row is recorded
//! into a [`Report`] written to `results/<exp>.json`. The committed
//! baselines under `baselines/` are diffed against those files by the
//! `regress` binary, which is what turns the experiment suite into a CI
//! regression gate.
//!
//! Flags understood by every binary:
//!
//! - `--smoke` — run a reduced sweep (fewer seeds, smaller worlds) sized
//!   for CI; the report's `meta.mode` records which mode produced it so
//!   smoke reports are never diffed against full baselines.
//! - `--chaos` — run an *extended* sweep (longer horizons, higher fault
//!   rates, extra seeds) for the nightly chaos-soak job. Chaos reports
//!   carry `meta.mode = "chaos"`, so the regress gate's mode check keeps
//!   them from ever being diffed against smoke or full baselines — the
//!   soak's value is the per-seed asserts inside the binaries, not a
//!   numeric diff.
//! - `--out DIR` — write the JSON report into `DIR` (default `results`,
//!   or `$PG_RESULTS_DIR`).
//!
//! `PG_SMOKE=1` / `PG_CHAOS=1` in the environment are equivalent to the
//! flags; chaos wins when both are set.
//!
//! Wall-clock timings are deliberately **never** recorded into reports
//! (they stay on stdout): reports only carry simulation-deterministic
//! quantities, which is what lets the regression gate run with near-zero
//! tolerances.

use pg_sim::metrics::Summary;
use pg_sim::report::Report;
use std::path::PathBuf;
use std::process::ExitCode;

/// One experiment run: mode flags plus the report being accumulated.
pub struct Experiment {
    report: Report,
    smoke: bool,
    chaos: bool,
    out_dir: PathBuf,
}

impl Experiment {
    /// Set up from the process CLI arguments (see module docs for flags).
    ///
    /// Exits the process with a usage message on unknown arguments — the
    /// `exp_*` binaries take no other flags.
    pub fn from_args(name: &str) -> Experiment {
        let mut smoke = std::env::var("PG_SMOKE").is_ok_and(|v| v == "1");
        let mut chaos = std::env::var("PG_CHAOS").is_ok_and(|v| v == "1");
        let mut out_dir: Option<PathBuf> = std::env::var_os("PG_RESULTS_DIR").map(PathBuf::from);
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--smoke" => smoke = true,
                "--chaos" => chaos = true,
                "--out" => match args.next() {
                    Some(dir) => out_dir = Some(PathBuf::from(dir)),
                    None => {
                        eprintln!("{name}: --out requires a directory argument");
                        std::process::exit(2);
                    }
                },
                other => {
                    eprintln!("{name}: unknown argument {other:?}");
                    eprintln!("usage: {name} [--smoke] [--chaos] [--out DIR]");
                    std::process::exit(2);
                }
            }
        }
        if chaos {
            smoke = false;
        }
        let mut report = Report::new(name);
        report.set_meta(
            "mode",
            if chaos {
                "chaos"
            } else if smoke {
                "smoke"
            } else {
                "full"
            },
        );
        Experiment {
            report,
            smoke,
            chaos,
            out_dir: out_dir.unwrap_or_else(|| PathBuf::from("results")),
        }
    }

    /// True when running the reduced CI sweep.
    pub fn smoke(&self) -> bool {
        self.smoke
    }

    /// True when running the extended nightly chaos soak.
    pub fn chaos(&self) -> bool {
        self.chaos
    }

    /// Pick the full-run or smoke-run value of a sweep parameter. Chaos
    /// runs take the full value; use [`scale3`](Experiment::scale3) where
    /// the soak should push further than full.
    pub fn scale<T>(&self, full: T, smoke: T) -> T {
        if self.smoke {
            smoke
        } else {
            full
        }
    }

    /// Pick the full-, smoke-, or chaos-run value of a sweep parameter
    /// (longer horizons, higher fault rates, extra seeds in the soak).
    pub fn scale3<T>(&self, full: T, smoke: T, chaos: T) -> T {
        if self.chaos {
            chaos
        } else if self.smoke {
            smoke
        } else {
            full
        }
    }

    /// Record free-form metadata (sweep parameters, modal choices, …).
    pub fn set_meta(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.report.set_meta(key, value);
    }

    /// Record an integer metric.
    pub fn set_counter(&mut self, key: impl Into<String>, value: u64) {
        self.report.set_counter(key, value);
    }

    /// Record a single measured value.
    pub fn set_scalar(&mut self, key: impl Into<String>, value: f64) {
        self.report.set_scalar(key, value);
    }

    /// Record a cross-replication summary.
    pub fn record_summary(&mut self, key: impl Into<String>, summary: &Summary) {
        self.report.record_summary(key, summary);
    }

    /// Direct access to the underlying report.
    pub fn report_mut(&mut self) -> &mut Report {
        &mut self.report
    }

    /// Write `results/<name>.json` and finish the run.
    ///
    /// Returns a failing [`ExitCode`] (with a message on stderr) when the
    /// report cannot be serialized or written, so a broken report fails CI
    /// instead of silently producing a table with no JSON behind it.
    #[must_use]
    pub fn finish(self) -> ExitCode {
        let path = self.out_dir.join(format!("{}.json", self.report.name));
        let text = match self.report.to_json() {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{}: report serialization failed: {e}", self.report.name);
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::create_dir_all(&self.out_dir) {
            eprintln!(
                "{}: cannot create {}: {e}",
                self.report.name,
                self.out_dir.display()
            );
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&path, text + "\n") {
            eprintln!("{}: cannot write {}: {e}", self.report.name, path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("report: {}", path.display());
        ExitCode::SUCCESS
    }
}

/// Slugify a table label into a report key segment: lowercase alphanumerics
/// with single underscores (`"in-network tree"` → `"in_network_tree"`).
pub fn key_part(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut last_sep = true;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            last_sep = false;
        } else if c == '.' {
            // Dots separate report-path segments; keep caller-provided ones.
            out.push('.');
            last_sep = true;
        } else if !last_sep {
            out.push('_');
            last_sep = true;
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_part_slugifies() {
        assert_eq!(key_part("in-network tree"), "in_network_tree");
        assert_eq!(key_part("COST energy 0.005"), "cost_energy_0.005");
        assert_eq!(key_part("Gossip { p: 0.7 }"), "gossip_p_0.7");
        assert_eq!(key_part("plain"), "plain");
        assert_eq!(key_part("  spaced  out  "), "spaced_out");
    }
}
