//! **regress** — the CI regression gate: diff fresh experiment reports
//! against the committed baselines.
//!
//! ```sh
//! cargo run --release -p pg-bench --bin regress            # results/ vs baselines/
//! cargo run --release -p pg-bench --bin regress -- \
//!     --baselines baselines --results results --tolerance 1e-9
//! ```
//!
//! For every `baselines/BENCH_<exp>.json` there must be a fresh
//! `results/<exp>.json`; each pair is compared metric-by-metric with
//! relative tolerances (see `pg_bench::regress`). Any drift, any metric
//! missing from a fresh report, or any baseline without a fresh report
//! exits non-zero with a human-readable drift table. Metrics present only
//! in the fresh report warn (the baseline is stale but nothing regressed).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_bench::regress::{compare, drift_table, key_mismatch_report, Tolerances};
use pg_sim::report::Report;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: regress [--baselines DIR] [--results DIR] [--tolerance REL] \
         [--percentile-tolerance REL]\n\
         \n  --baselines DIR   committed BENCH_*.json directory (default: baselines)\
         \n  --results DIR     fresh report directory (default: results)\
         \n  --tolerance REL   default relative tolerance (default: 1e-9)\
         \n  --percentile-tolerance REL\
         \n                    relative tolerance for .p50/.p90/.p95/.p99 leaves\
         \n                    (default: 1e-6 — order statistics sit on sample\
         \n                    boundaries, so they get their own knob)"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut baselines = PathBuf::from("baselines");
    let mut results = PathBuf::from("results");
    let mut tol = Tolerances::default();
    let mut percentile_rel = 1e-6;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baselines" => baselines = args.next().map(PathBuf::from).unwrap_or_else(|| usage()),
            "--results" => results = args.next().map(PathBuf::from).unwrap_or_else(|| usage()),
            "--tolerance" => {
                let Some(v) = args.next().and_then(|s| s.parse::<f64>().ok()) else {
                    usage()
                };
                tol.default_rel = v;
            }
            "--percentile-tolerance" => {
                let Some(v) = args.next().and_then(|s| s.parse::<f64>().ok()) else {
                    usage()
                };
                percentile_rel = v;
            }
            _ => usage(),
        }
    }
    let tol = tol.with_percentile_tolerance(percentile_rel);

    let mut baseline_files: Vec<PathBuf> = match std::fs::read_dir(&baselines) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                // Experiment baselines only: BENCH_micro.json (criterion
                // wall-clock medians) is gated by the `microbench` binary
                // with a one-sided tolerance instead.
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_exp_") && n.ends_with(".json"))
            })
            .collect(),
        Err(e) => {
            eprintln!("regress: cannot read {}: {e}", baselines.display());
            return ExitCode::FAILURE;
        }
    };
    baseline_files.sort();
    if baseline_files.is_empty() {
        eprintln!(
            "regress: no BENCH_exp_*.json baselines in {} — nothing to gate",
            baselines.display()
        );
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    let mut warnings = 0usize;
    let mut compared = 0usize;
    for base_path in &baseline_files {
        let file_name = base_path.file_name().unwrap().to_str().unwrap();
        let exp = file_name
            .strip_prefix("BENCH_")
            .and_then(|n| n.strip_suffix(".json"))
            .unwrap();
        let fresh_path = results.join(format!("{exp}.json"));
        let baseline = match std::fs::read_to_string(base_path)
            .map_err(|e| e.to_string())
            .and_then(|t| Report::from_json(&t))
        {
            Ok(r) => r,
            Err(e) => {
                eprintln!(
                    "FAIL {exp}: unreadable baseline {}: {e}",
                    base_path.display()
                );
                failures += 1;
                continue;
            }
        };
        let fresh = match std::fs::read_to_string(&fresh_path)
            .map_err(|e| e.to_string())
            .and_then(|t| Report::from_json(&t))
        {
            Ok(r) => r,
            Err(e) => {
                eprintln!(
                    "FAIL {exp}: missing or unreadable fresh report {}: {e}",
                    fresh_path.display()
                );
                failures += 1;
                continue;
            }
        };
        let cmp = compare(&baseline, &fresh, &tol);
        compared += cmp.matched;
        for w in &cmp.warnings {
            eprintln!("warn {exp}: {w}");
        }
        warnings += cmp.warnings.len();
        if cmp.ok() {
            println!("ok   {exp}: {} metrics within tolerance", cmp.matched);
            // Key-set drift that does not fail the gate (extra leaves)
            // still prints its explicit paths so a stale baseline is
            // one copy-paste away from being refreshed.
            print!("{}", key_mismatch_report(&cmp));
        } else {
            failures += 1;
            println!("FAIL {exp}: {} violation(s)", cmp.violations.len());
            if !cmp.drifts.is_empty() {
                print!("{}", drift_table(&cmp.drifts));
            }
            // Missing/extra leaf paths, each under its own heading with
            // the exact flattened key — a renamed metric reads as one
            // `-` line plus one `+` line instead of a wall of text.
            print!("{}", key_mismatch_report(&cmp));
            for v in cmp
                .violations
                .iter()
                .filter(|v| !v.starts_with("drift:") && !v.starts_with("missing metric:"))
            {
                println!("  {v}");
            }
        }
    }

    // The reverse direction: a fresh report with no committed baseline is
    // an experiment the gate would silently never cover. Fail loudly with
    // the one-liner that fixes it.
    if let Ok(entries) = std::fs::read_dir(&results) {
        let mut fresh_only: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().to_str().map(String::from))
            .filter(|n| n.starts_with("exp_") && n.ends_with(".json"))
            .filter(|n| {
                let exp = n.strip_suffix(".json").unwrap_or(n);
                !baselines.join(format!("BENCH_{exp}.json")).exists()
            })
            .collect();
        fresh_only.sort();
        for n in &fresh_only {
            let exp = n.strip_suffix(".json").unwrap_or(n);
            eprintln!(
                "FAIL {exp}: fresh report {} has no baseline {} — commit one \
                 via scripts/run_experiments.sh --smoke --rebaseline",
                results.join(n).display(),
                baselines.join(format!("BENCH_{exp}.json")).display(),
            );
            failures += 1;
        }
    }

    println!(
        "\nregress: {} baseline(s), {compared} metric(s) in tolerance, \
         {warnings} warning(s), {failures} failing report(s)",
        baseline_files.len()
    );
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
