//! **T21** — partition tolerance and crash recovery: a bipartitioned
//! federation must heal without membership flapping while the per-peer
//! circuit breaker caps the wire attempts wasted on unreachable cells,
//! and a crash-stopped cell with a write-ahead query journal must beat
//! the same cell restarting with an empty queue.
//!
//! Two scenarios run per seed:
//!
//! * **partition** — six cells split {0,1,2} | {3,4,5} for a window
//!   mid-run, swept over cut duration × breaker on/off. Per-seed
//!   asserts: every cell's membership view reconverges to all-alive
//!   after the heal; no peer is resurrected more than once (evict →
//!   resurrect is allowed exactly once per genuine cut — more is
//!   flapping) and same-side peers are never evicted at all; handoff
//!   accounting stays closed; and when the breaker short-circuits at
//!   all, the wasted wire attempts (retries + dead letters) stay
//!   strictly below the breaker-less run.
//! * **crash** — cell 1 of three crash-stops mid-run (volatile queue
//!   destroyed), journal on/off. Per-seed asserts: the journal recovers
//!   exactly what the crash destroyed, goodput with recovery strictly
//!   beats the recovery-free restart, and the exactly-once conservation
//!   identity (`admitted = completed + cancelled + shed + migrated_out
//!   + lost`) holds per cell in both runs.
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_t21_partition [-- --smoke]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_agent::{BreakerConfig, ReliableConfig};
use pg_bench::{header, Experiment};
use pg_core::PervasiveGrid;
use pg_federation::{commute_traces, CellId, Federation, FederationConfig, RoamingConfig, Trace};
use pg_runtime::{
    MultiQueryRuntime, OverloadConfig, OverloadPolicy, QueryOpts, RuntimeConfig, SchedPolicy,
};
use pg_sim::fault::FaultPlan;
use pg_sim::rng::RngStreams;
use pg_sim::{Duration, SimTime};
use rand::Rng;
use rayon::prelude::*;
use std::process::ExitCode;

/// Per-cell service capacity: 2 slots per 30 s epoch.
const CAPACITY_HZ: f64 = 2.0 / 30.0;
/// Cells in the partition scenario (split down the middle).
const PART_CELLS: usize = 6;
/// Cells in the crash scenario.
const CRASH_CELLS: usize = 3;

fn cell_runtime(seed: u64) -> MultiQueryRuntime<PervasiveGrid> {
    let pg = PervasiveGrid::building(1, 4, seed).build();
    let cfg = RuntimeConfig::builder()
        .capacity(32)
        .epoch(Duration::from_secs(30))
        .slots_per_epoch(2)
        .policy(SchedPolicy::Edf)
        .overload(OverloadConfig::watermarks(
            OverloadPolicy::Shed,
            0,
            0,
            16,
            24,
        ))
        .build();
    MultiQueryRuntime::new(cfg, pg)
}

/// Wire attempts that never earned an ack: every retransmission plus the
/// final dead-letter give-up. This is what the breaker exists to cap.
fn wasted_attempts(fed: &Federation) -> u64 {
    let m = fed.bus_metrics();
    m.counter("reliable.retries") + m.counter("reliable.dead_letter")
}

/// One partition run: {0..cells/2} | {cells/2..cells} cut for
/// `[start, start + dur)`, fast-roaming users at ~60 % aggregate load.
fn run_partition(horizon_s: u64, start_s: u64, dur_s: u64, seed: u64, breaker: bool) -> Federation {
    let cells = PART_CELLS;
    let left: Vec<u64> = (0..cells as u64 / 2).collect();
    let plan = FaultPlan::builder(seed ^ 0x7A21)
        .cell_partition(
            &left,
            SimTime::from_secs(start_s),
            SimTime::from_secs(start_s + dur_s),
        )
        .build()
        .unwrap();
    let runtimes = (0..cells)
        .map(|i| cell_runtime(seed * 1_000 + i as u64))
        .collect();
    let users = 4 * cells;
    let traces = commute_traces(
        seed,
        &RoamingConfig {
            users,
            cells,
            horizon: Duration::from_secs(horizon_s),
            dwell_min: Duration::from_secs(100),
            dwell_max: Duration::from_secs(220),
        },
    );
    let fcfg = FederationConfig {
        seed,
        cell_faults: plan,
        reliable: ReliableConfig {
            // Trip on the first dead letter and cool down for 10 min:
            // half-open probes still burn a full retry budget, so a
            // cooldown shorter than the typical inter-send gap would turn
            // every suppressed send into a probe and cap nothing.
            breaker: breaker.then(|| BreakerConfig {
                failure_threshold: 1,
                open_for: Duration::from_secs(600),
            }),
            ..ReliableConfig::default()
        },
        ..FederationConfig::default()
    };
    let mut fed = Federation::new(fcfg, runtimes, traces);
    let rate_hz = 0.7 * CAPACITY_HZ * cells as f64;
    let mut rng = RngStreams::new(seed).fork("t21-part-arrivals");
    let mut t = 0.0;
    loop {
        t += -rng.gen::<f64>().max(1e-12).ln() / rate_hz;
        if t >= horizon_s as f64 {
            break;
        }
        let user = rng.gen_range(0..users as u64);
        fed.offer(
            SimTime::from_secs_f64(t),
            user,
            "SELECT AVG(temp) FROM sensors",
            QueryOpts::with_deadline(Duration::from_secs(120)),
        );
    }
    fed.run(SimTime::from_secs(horizon_s));
    fed
}

/// One crash run: cell 1 of three crash-stops for the middle third of the
/// run. Moderate base load plus a deterministic arrival burst just before
/// the down edge: deep queues at the crash are what the journal exists to
/// save, while post-restart headroom keeps recovered queries from
/// crowding fresh ones into the shed watermarks. Deadlines are long
/// enough that recovered queries can still complete.
fn run_crash(horizon_s: u64, seed: u64, journal: bool) -> Federation {
    let cells = CRASH_CELLS;
    let plan = FaultPlan::builder(seed ^ 0xC4A5)
        .cell_crash(
            1,
            SimTime::from_secs(horizon_s / 4),
            SimTime::from_secs(7 * horizon_s / 12),
        )
        .build()
        .unwrap();
    let runtimes = (0..cells)
        .map(|i| cell_runtime(seed * 1_000 + i as u64))
        .collect();
    let mut traces = commute_traces(
        seed,
        &RoamingConfig {
            users: 8,
            cells,
            horizon: Duration::from_secs(horizon_s),
            dwell_min: Duration::from_secs(120),
            dwell_max: Duration::from_secs(300),
        },
    );
    // Pin one user to the doomed cell: for some seeds every roamer
    // happens to be elsewhere during the burst window, which would leave
    // the crash with nothing to destroy.
    traces[0] = Trace {
        user: traces[0].user,
        start: CellId(1),
        moves: Vec::new(),
    };
    let mut rng = RngStreams::new(seed).fork("t21-crash-arrivals");
    let mut arrivals: Vec<(f64, u64)> = Vec::new();
    let mut t = 0.0;
    loop {
        // Base load ~40 % of aggregate capacity.
        t += -rng.gen::<f64>().max(1e-12).ln() / (0.4 * CAPACITY_HZ * cells as f64);
        if t >= horizon_s as f64 {
            break;
        }
        arrivals.push((t, rng.gen_range(0..8u64)));
    }
    // Tight burst in the last 45 s before the down edge, aimed at users
    // standing in the doomed cell (a burst routed through other cells
    // proves nothing about the journal) — faster than the cell can
    // drain, so its queue is deep when it dies.
    let crash_start = horizon_s as f64 / 4.0;
    for k in 0..36u64 {
        let jitter: f64 = rng.gen::<f64>();
        let tb = crash_start - 45.0 + 1.2 * k as f64 + jitter;
        let on_doomed: Vec<u64> = traces
            .iter()
            .filter(|tr| tr.cell_at(SimTime::from_secs_f64(tb)) == CellId(1))
            .map(|tr| tr.user)
            .collect();
        let user = if on_doomed.is_empty() {
            rng.gen_range(0..8u64)
        } else {
            on_doomed[k as usize % on_doomed.len()]
        };
        arrivals.push((tb, user));
    }
    arrivals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let fcfg = FederationConfig {
        seed,
        cell_faults: plan,
        journal,
        ..FederationConfig::default()
    };
    let mut fed = Federation::new(fcfg, runtimes, traces);
    for (t, user) in arrivals {
        fed.offer(
            SimTime::from_secs_f64(t),
            user,
            "SELECT AVG(temp) FROM sensors",
            QueryOpts::with_deadline(Duration::from_secs(2 * horizon_s / 3)),
        );
    }
    fed.run(SimTime::from_secs(horizon_s));
    fed
}

/// The exactly-once conservation identity, asserted per cell at drain.
fn assert_conservation(fed: &Federation, ctx: &str) {
    for c in fed.cells() {
        assert_eq!(
            c.rt.admitted,
            c.rt.outcomes().len() as u64
                + c.rt.cancelled
                + c.rt.shed
                + c.rt.migrated_out
                + c.rt.lost,
            "{ctx}: conservation identity broken at cell {}",
            c.id
        );
    }
}

fn main() -> ExitCode {
    let mut exp = Experiment::from_args("exp_t21_partition");
    let reps: u64 = exp.scale3(4, 2, 10);
    let horizon_s: u64 = exp.scale3(3_600, 3_600, 7_200);
    // Cuts start at T/4; the longest ends at 3T/4, leaving a quarter of
    // the run for the views to reconverge after the heal.
    let durations: Vec<u64> = exp.scale3(
        vec![horizon_s / 6, horizon_s / 2],
        vec![horizon_s / 4],
        vec![horizon_s / 6, horizon_s / 4, horizon_s / 2],
    );
    exp.set_meta("reps", reps.to_string());
    exp.set_meta("horizon_s", horizon_s.to_string());

    println!(
        "T21a: bipartition {{0,1,2}}|{{3,4,5}} x cut duration x circuit \
         breaker, {reps} seeds per point ({horizon_s} s horizon, cut starts \
         at T/4, ~60% aggregate load, fast commute-ring mobility)"
    );
    header(
        "wasted = unacked wire attempts (retries + dead letters); views must reconverge per seed",
        &[
            ("cut s", 6),
            ("good brk", 8),
            ("good off", 8),
            ("waste brk", 9),
            ("waste off", 9),
            ("shortcut", 8),
            ("opened", 6),
            ("resurr", 6),
        ],
    );

    for &dur in &durations {
        struct Point {
            met_on: u64,
            met_off: u64,
            wasted_on: u64,
            wasted_off: u64,
            short_circuits: u64,
            opened: u64,
            resurrections: u64,
        }
        let start = horizon_s / 4;
        let points: Vec<Point> = (0..reps)
            .into_par_iter()
            .map(|rep| {
                let seed = rep * 100 + dur;
                let on = run_partition(horizon_s, start, dur, seed, true);
                let off = run_partition(horizon_s, start, dur, seed, false);

                for fed in [&on, &off] {
                    // Every view reconverges to all-alive after the heal,
                    // and nobody flapped: a cross-cut peer is resurrected
                    // at most once, a same-side peer was never evicted.
                    for m in fed.members() {
                        let live = m.live_set();
                        assert_eq!(
                            live.len(),
                            PART_CELLS,
                            "seed {seed} cut {dur}: cell {} did not reconverge: {live:?}",
                            m.me
                        );
                        let half = PART_CELLS as u32 / 2;
                        for j in 0..PART_CELLS as u32 {
                            let r = m.resurrections_of(CellId(j));
                            let same_side = (m.me.0 < half) == (j < half);
                            let cap = if same_side { 0 } else { 1 };
                            assert!(
                                r <= cap,
                                "seed {seed} cut {dur}: cell {} resurrected {:?} {r} times \
                                 (flapping; same_side={same_side})",
                                m.me,
                                CellId(j)
                            );
                        }
                    }
                    // Handoff accounting stays closed across the cut.
                    let s = &fed.stats;
                    assert_eq!(
                        s.migrations_completed + s.migrations_rejected + s.migrations_lost,
                        s.migrations_opened,
                        "seed {seed} cut {dur}: migrations unaccounted for"
                    );
                }
                let resurrections = fed_resurrections(&on);

                // The breaker caps wasted delivery attempts: whenever it
                // short-circuited at all, the unacked wire attempts must
                // come in strictly below the breaker-less run.
                let wasted_on = wasted_attempts(&on);
                let wasted_off = wasted_attempts(&off);
                let short_circuits = on.bus_metrics().counter("breaker.short_circuit");
                let opened = on.bus_metrics().counter("breaker.opened");
                assert_eq!(
                    off.bus_metrics().counter("breaker.short_circuit"),
                    0,
                    "seed {seed} cut {dur}: breaker-off run short-circuited"
                );
                // Per seed the breaker may only tie (a boundary pair that
                // carries exactly one message trips without saving
                // anything); strictly-below is asserted on the sweep-point
                // aggregate where suppressed sends dominate.
                assert!(
                    wasted_on <= wasted_off,
                    "seed {seed} cut {dur}: breaker wasted {wasted_on} attempts, \
                     above breaker-less {wasted_off}"
                );

                let (_, met_on) = on.goodput();
                let (_, met_off) = off.goodput();
                Point {
                    met_on,
                    met_off,
                    wasted_on,
                    wasted_off,
                    short_circuits,
                    opened,
                    resurrections,
                }
            })
            .collect();

        let sum = |f: fn(&Point) -> u64| points.iter().map(f).sum::<u64>();
        let (met_on, met_off) = (sum(|p| p.met_on), sum(|p| p.met_off));
        let (wasted_on, wasted_off) = (sum(|p| p.wasted_on), sum(|p| p.wasted_off));
        let short_circuits = sum(|p| p.short_circuits);
        let opened = sum(|p| p.opened);
        let resurrections = sum(|p| p.resurrections);
        // Across the sweep point the breaker must actually have engaged
        // and saved wire attempts — a cut this long with roaming users
        // always pushes handoffs into the dead window.
        assert!(
            short_circuits > 0,
            "cut {dur}: the breaker never short-circuited over {reps} seeds"
        );
        assert!(
            wasted_on < wasted_off,
            "cut {dur}: breaker did not reduce wasted attempts ({wasted_on} vs {wasted_off})"
        );

        let n = reps as f64;
        let key = format!("part{dur}");
        let per_h = |met: u64| met as f64 * 3_600.0 / (horizon_s as f64 * n);
        exp.set_scalar(format!("{key}.breaker.goodput_per_h"), per_h(met_on));
        exp.set_scalar(format!("{key}.none.goodput_per_h"), per_h(met_off));
        exp.set_counter(format!("{key}.breaker.wasted_attempts"), wasted_on);
        exp.set_counter(format!("{key}.none.wasted_attempts"), wasted_off);
        exp.set_counter(format!("{key}.breaker.short_circuits"), short_circuits);
        exp.set_counter(format!("{key}.breaker.opened"), opened);
        exp.set_counter(format!("{key}.resurrections"), resurrections);
        println!(
            "{dur:>6}  {met_on:>8}  {met_off:>8}  {wasted_on:>9}  {wasted_off:>9}  \
             {short_circuits:>8}  {opened:>6}  {resurrections:>6}"
        );
    }

    // --- T21b: crash-stop × write-ahead journal. ---
    println!(
        "\nT21b: cell 1/3 crash-stops for the middle third, journal on vs \
         off, {reps} seeds (~40% base load plus a pre-crash burst so the \
         dying queue is deep; deadlines at 2T/3 so recovered queries still \
         count)"
    );
    header(
        "recovered must equal crash-lost with the journal; goodput must strictly beat no-journal",
        &[
            ("seed", 5),
            ("good jrnl", 9),
            ("good none", 9),
            ("lost", 5),
            ("recov", 6),
            ("crashes", 7),
        ],
    );

    struct CrashPoint {
        total_j: u64,
        total_n: u64,
        lost_n: u64,
        recovered: u64,
        crashes: u64,
    }
    let crash_points: Vec<CrashPoint> = (0..reps)
        .into_par_iter()
        .map(|rep| {
            let seed = rep * 100 + 21;
            let with = run_crash(horizon_s, seed, true);
            let without = run_crash(horizon_s, seed, false);
            assert!(
                with.stats.crashes >= 1,
                "seed {seed}: the crash window never applied"
            );
            assert!(
                without.stats.crash_lost > 0,
                "seed {seed}: the crash destroyed nothing — the scenario is vacuous"
            );
            // Exactly-once: the journal re-admits precisely what the crash
            // destroyed, never more, and the recovery-free run recovers 0.
            assert_eq!(
                with.stats.journal_recovered, with.stats.crash_lost,
                "seed {seed}: journal recovery incomplete"
            );
            assert_eq!(without.stats.journal_recovered, 0);
            let (total_j, _) = with.goodput();
            let (total_n, _) = without.goodput();
            assert!(
                total_j > total_n,
                "seed {seed}: journal-recovered goodput {total_j} not strictly \
                 above recovery-free restart {total_n}"
            );
            assert_conservation(&with, &format!("seed {seed} journal"));
            assert_conservation(&without, &format!("seed {seed} no-journal"));
            println!(
                "{seed:>5}  {total_j:>9}  {total_n:>9}  {:>5}  {:>6}  {:>7}",
                without.stats.crash_lost, with.stats.journal_recovered, with.stats.crashes
            );
            CrashPoint {
                total_j,
                total_n,
                lost_n: without.stats.crash_lost,
                recovered: with.stats.journal_recovered,
                crashes: with.stats.crashes,
            }
        })
        .collect();

    let n = reps as f64;
    let sum = |f: fn(&CrashPoint) -> u64| crash_points.iter().map(f).sum::<u64>();
    exp.set_scalar(
        "crash.journal.goodput_per_h",
        sum(|p| p.total_j) as f64 * 3_600.0 / (horizon_s as f64 * n),
    );
    exp.set_scalar(
        "crash.none.goodput_per_h",
        sum(|p| p.total_n) as f64 * 3_600.0 / (horizon_s as f64 * n),
    );
    exp.set_counter("crash.journal.recovered", sum(|p| p.recovered));
    exp.set_counter("crash.none.lost", sum(|p| p.lost_n));
    exp.set_counter("crash.crashes", sum(|p| p.crashes));

    println!(
        "\nshape to check: every membership view reconverges after the heal \
         with at most one resurrection per cross-cut pair (sticky-Dead + \
         incarnation guard — no flapping); the breaker cuts wasted wire \
         attempts well below the breaker-less run while short-circuits \
         absorb the difference; with the journal, recovered == crash-lost \
         exactly and restart goodput strictly beats the empty-queue restart \
         on every seed."
    );

    exp.finish()
}

/// Total resurrections observed across every view — the flap budget the
/// per-seed asserts bound pairwise.
fn fed_resurrections(fed: &Federation) -> u64 {
    fed.members()
        .iter()
        .map(|m| {
            (0..PART_CELLS as u32)
                .map(|j| m.resurrections_of(CellId(j)))
                .sum::<u64>()
        })
        .sum()
}
