//! **T17** — the streaming runtime under open-loop load: §4's
//! response-time-vs-approach study with *concurrent users arriving over
//! time* instead of a batch handed over at t=0.
//!
//! T17a sweeps offered load λ (Poisson arrivals) × scheduling mode (FIFO
//! and EDF, each with and without deadline preemption) and measures the
//! open-loop deadline hit-rate, response-time percentiles (p50/p99),
//! energy, bytes, and rejection rate. The tentpole assertion runs per
//! seed: at the overload rate, EDF with preemption must beat FIFO's
//! deadline hit-rate strictly — slack-negative queries jump the policy
//! order into the next service round instead of aging out in the queue.
//! T17b streams shareable aggregates through the three tree-maintenance
//! modes and asserts, per seed, that a persistent shared tree moves fewer
//! wire bytes (data + control beacons) than rebuilding the tree every
//! shared epoch.
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_t17_streaming [-- --smoke]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_bench::{fmt, header, Experiment};
use pg_core::{PervasiveGrid, TreeMaintenance};
use pg_runtime::{MultiQueryRuntime, PoissonArrivals, QueryOpts, RuntimeConfig, SchedPolicy};
use pg_sensornet::region::Region;
use pg_sim::metrics::Samples;
use pg_sim::{Duration, SimTime};
use rayon::prelude::*;
use std::process::ExitCode;

fn grid(seed: u64) -> PervasiveGrid {
    PervasiveGrid::building(1, 6, seed)
        .region("west", Region::room(0.0, 0.0, 14.0, 30.0))
        .region("east", Region::room(10.0, 0.0, 30.0, 30.0))
        .build()
}

/// The four scheduling modes under study: the policy axis × preemption.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Fifo,
    FifoPre,
    Edf,
    EdfPre,
}

impl Mode {
    const ALL: [Mode; 4] = [Mode::Fifo, Mode::FifoPre, Mode::Edf, Mode::EdfPre];

    fn name(self) -> &'static str {
        match self {
            Mode::Fifo => "fifo",
            Mode::FifoPre => "fifo_pre",
            Mode::Edf => "edf",
            Mode::EdfPre => "edf_pre",
        }
    }

    fn cfg(self) -> RuntimeConfig {
        let (policy, preemption) = match self {
            Mode::Fifo => (SchedPolicy::Fifo, false),
            Mode::FifoPre => (SchedPolicy::Fifo, true),
            Mode::Edf => (SchedPolicy::Edf, false),
            Mode::EdfPre => (SchedPolicy::Edf, true),
        };
        RuntimeConfig::builder()
            .capacity(32)
            .epoch(Duration::from_secs(30))
            .slots_per_epoch(4)
            .policy(policy)
            .preemption(preemption)
            .build()
    }
}

/// The streamed query mix: deadline-carrying aggregates competing with a
/// high-priority monitoring feed and background ad-hoc reads — the shape
/// that separates the modes (under EDF, priority still outranks the
/// deadline key, so only preemption rescues slack-negative queries stuck
/// behind the feed).
fn mix() -> Vec<(String, QueryOpts)> {
    vec![
        (
            "SELECT AVG(temp) FROM sensors".to_string(),
            QueryOpts::with_deadline(Duration::from_secs(60)),
        ),
        (
            "SELECT MAX(temp) FROM sensors WHERE region(west)".to_string(),
            QueryOpts::default().priority(2),
        ),
        (
            "SELECT AVG(temp) FROM sensors WHERE region(east)".to_string(),
            QueryOpts::with_deadline(Duration::from_secs(90)),
        ),
        (
            "SELECT temp FROM sensors WHERE sensor_id = 7".to_string(),
            QueryOpts::default(),
        ),
    ]
}

/// One seeded open-loop run, drained to idle after the stream dries up.
struct Cell {
    resp_s: Vec<f64>,
    energy_j: f64,
    bytes: f64,
    arrived: u64,
    rejected: u64,
    completed: u64,
    preemptions: u64,
    dl_total: u64,
    dl_hit: u64,
}

impl Cell {
    fn hit_rate(&self) -> f64 {
        self.dl_hit as f64 / self.dl_total.max(1) as f64
    }
}

fn run_cell(mode: Mode, rate_hz: f64, horizon: SimTime, seed: u64) -> Cell {
    let mut rt = MultiQueryRuntime::new(mode.cfg(), grid(seed));
    let mut arrivals = PoissonArrivals::new(seed, rate_hz, horizon, mix());
    rt.run_stream(&mut arrivals, 100_000);
    assert_eq!(rt.arrived, arrivals.emitted(), "stream fully delivered");

    let mut cell = Cell {
        resp_s: Vec::new(),
        energy_j: rt.energy_spent_j(),
        bytes: 0.0,
        arrived: rt.arrived,
        rejected: rt.rejected,
        completed: 0,
        preemptions: rt.preemptions,
        dl_total: 0,
        dl_hit: 0,
    };
    for o in rt.outcomes() {
        cell.completed += 1;
        cell.resp_s.push(o.response_time_s());
        cell.bytes += o.attribution.bytes;
        if o.deadline.is_some() {
            cell.dl_total += 1;
            cell.dl_hit += u64::from(!o.deadline_exceeded());
        }
    }
    cell
}

fn main() -> ExitCode {
    let mut exp = Experiment::from_args("exp_t17_streaming");
    let reps: u64 = exp.scale(6, 2);
    let horizon = SimTime::from_secs(exp.scale(600, 300));
    exp.set_meta("reps", reps.to_string());
    exp.set_meta("horizon_s", horizon.as_secs_f64().to_string());

    // --- T17a: offered load λ × scheduling mode. ---
    println!(
        "T17a: open-loop Poisson load x scheduling mode, {reps} seeds per cell \
         (36-sensor floor, 4 slots/epoch, 30 s epochs, queue capacity 32, \
         {:.0} s horizon)",
        horizon.as_secs_f64()
    );
    header(
        "hit = deadline-carrying queries answered in time; service capacity is 0.133 q/s",
        &[
            ("lambda", 6),
            ("mode", 8),
            ("p50 s", 8),
            ("p99 s", 8),
            ("hit", 5),
            ("energy J", 9),
            ("bytes", 10),
            ("reject", 7),
            ("preempt", 8),
        ],
    );
    // Below capacity (queue stays shallow) and sustained overload (the
    // queue backlogs; only the service order decides who makes it).
    let rates = [("low", 0.04f64), ("high", 0.2f64)];
    for (rate_name, rate_hz) in rates {
        // All four modes per seed so the tentpole assertion can compare
        // within one seed; rayon folds back in seed order.
        let per_seed: Vec<[Cell; 4]> = (0..reps)
            .into_par_iter()
            .map(|seed| {
                let cells = Mode::ALL.map(|m| run_cell(m, rate_hz, horizon, seed));
                let (fifo, edf_pre) = (&cells[0], &cells[3]);
                // Same arrivals, same admission stream: the modes differ
                // only in who gets serviced when the queue backs up.
                assert_eq!(fifo.arrived, edf_pre.arrived);
                assert_eq!(fifo.rejected, edf_pre.rejected);
                if rate_name == "high" {
                    // The tentpole acceptance assertion, per seed: under
                    // overload, EDF with preemption must strictly beat
                    // FIFO on deadline adherence.
                    assert!(
                        edf_pre.hit_rate() > fifo.hit_rate(),
                        "seed {seed}: edf_pre hit {:.3} must beat fifo {:.3}",
                        edf_pre.hit_rate(),
                        fifo.hit_rate()
                    );
                }
                cells
            })
            .collect();
        for (m, mode) in Mode::ALL.into_iter().enumerate() {
            let mut resp = Samples::new();
            let (mut energy, mut bytes) = (0.0f64, 0.0f64);
            let (mut arrived, mut rejected, mut preempt) = (0u64, 0u64, 0u64);
            let (mut dl_total, mut dl_hit) = (0u64, 0u64);
            for cells in &per_seed {
                let c = &cells[m];
                for &r in &c.resp_s {
                    resp.record(r);
                }
                energy += c.energy_j;
                bytes += c.bytes;
                arrived += c.arrived;
                rejected += c.rejected;
                preempt += c.preemptions;
                dl_total += c.dl_total;
                dl_hit += c.dl_hit;
            }
            let n = reps as f64;
            let hit = dl_hit as f64 / dl_total.max(1) as f64;
            let reject_rate = rejected as f64 / arrived.max(1) as f64;
            let cell = format!("{rate_name}.{}", mode.name());
            let p50 = resp.quantile(0.5).unwrap_or(0.0);
            let p99 = resp.quantile(0.99).unwrap_or(0.0);
            exp.report_mut()
                .record_samples(format!("{cell}.response_s"), &mut resp);
            exp.set_scalar(format!("{cell}.hit_rate"), hit);
            exp.set_scalar(format!("{cell}.energy_j"), energy / n);
            exp.set_scalar(format!("{cell}.bytes"), bytes / n);
            exp.set_scalar(format!("{cell}.reject_rate"), reject_rate);
            exp.set_counter(format!("{cell}.preemptions"), preempt);
            println!(
                "{rate_hz:>6}  {:>8}  {p50:>8.1}  {p99:>8.1}  {hit:>5.2}  {:>9}  {:>10}  {reject_rate:>7.2}  {preempt:>8}",
                mode.name(),
                fmt(energy / n),
                fmt(bytes / n),
            );
        }
        println!();
    }
    println!(
        "shape to check: at low lambda every mode hits ~every deadline (the \
         queue never backs up); at high lambda the 0.2 q/s offered load \
         swamps the 0.133 q/s service rate and FIFO ages deadline queries \
         out behind the backlog while EDF+preemption holds the hit-rate \
         high (asserted strictly above FIFO per seed); preemptions only \
         fire in the *_pre modes, where slack-negative queries jump the \
         high-priority feed."
    );

    // --- T17b: persistent shared trees vs per-epoch rebuilds. ---
    println!("\nT17b: streamed shareable aggregates x tree maintenance ({reps} seeds)");
    header(
        "wire bytes = data plane + tree-construction beacons, attributed per query",
        &[
            ("mode", 10),
            ("wire bytes", 10),
            ("energy J", 9),
            ("rebuilds", 8),
            ("answered", 8),
        ],
    );
    let tree_modes = [
        TreeMaintenance::Free,
        TreeMaintenance::PerEpoch,
        TreeMaintenance::Persistent,
    ];
    // All arrivals shareable: overlapping aggregates only, offered fast
    // enough that every epoch batches at least two into a shared chunk.
    let tree_mix: Vec<(String, QueryOpts)> = [
        "SELECT AVG(temp) FROM sensors",
        "SELECT MAX(temp) FROM sensors WHERE region(west)",
        "SELECT AVG(temp) FROM sensors WHERE region(east)",
        "SELECT MAX(temp) FROM sensors",
    ]
    .into_iter()
    .map(|t| (t.to_string(), QueryOpts::default()))
    .collect();
    let tree_stats: Vec<[(f64, f64, u64, u64); 3]> = (0..reps)
        .into_par_iter()
        .map(|seed| {
            let out = tree_modes.map(|tm| {
                let pg = PervasiveGrid::building(1, 6, seed)
                    .region("west", Region::room(0.0, 0.0, 14.0, 30.0))
                    .region("east", Region::room(10.0, 0.0, 30.0, 30.0))
                    .tree_maintenance(tm)
                    .build();
                let cfg = RuntimeConfig::builder()
                    .capacity(32)
                    .epoch(Duration::from_secs(30))
                    .slots_per_epoch(4)
                    .build();
                let mut rt = MultiQueryRuntime::new(cfg, pg);
                let mut arrivals = PoissonArrivals::new(seed, 0.2, horizon, tree_mix.clone());
                rt.run_stream(&mut arrivals, 100_000);
                let bytes: f64 = rt.outcomes().iter().map(|o| o.attribution.bytes).sum();
                let energy: f64 = rt.outcomes().iter().map(|o| o.attribution.energy_j).sum();
                (
                    bytes,
                    energy,
                    rt.engine().tree_session.rebuilds,
                    rt.outcomes().len() as u64,
                )
            });
            // The second acceptance assertion, per seed: keeping the tree
            // alive across epochs must move fewer wire bytes than
            // rebuilding it for every shared chunk.
            assert!(
                out[2].0 < out[1].0,
                "seed {seed}: persistent {} wire bytes must beat per_epoch {}",
                out[2].0,
                out[1].0
            );
            assert!(out[2].2 < out[1].2, "persistent must rebuild less often");
            out
        })
        .collect();
    for (m, tm) in tree_modes.into_iter().enumerate() {
        let (mut bytes, mut energy, mut rebuilds, mut answered) = (0.0, 0.0, 0u64, 0u64);
        for s in &tree_stats {
            bytes += s[m].0;
            energy += s[m].1;
            rebuilds += s[m].2;
            answered += s[m].3;
        }
        let n = reps as f64;
        exp.set_scalar(format!("tree.{}.wire_bytes", tm.name()), bytes / n);
        exp.set_scalar(format!("tree.{}.energy_j", tm.name()), energy / n);
        exp.set_counter(format!("tree.{}.rebuilds", tm.name()), rebuilds);
        println!(
            "{:>10}  {:>10}  {:>9}  {rebuilds:>8}  {answered:>8}",
            tm.name(),
            fmt(bytes / n),
            fmt(energy / n),
        );
    }
    let per_epoch: f64 = tree_stats.iter().map(|s| s[1].0).sum();
    let persistent: f64 = tree_stats.iter().map(|s| s[2].0).sum();
    exp.set_scalar("tree.byte_ratio", persistent / per_epoch);
    println!(
        "shape to check: free pays no control cost (the v1 accounting); \
         per_epoch re-floods tree beacons for every shared chunk; \
         persistent pays one build per seed (plus rebuilds only on node \
         death, none here) so its wire bytes land strictly between — \
         asserted below per_epoch on every seed (the byte_ratio scalar)."
    );

    exp.finish()
}
