//! **T16** — the multi-query runtime: N concurrent in-flight queries over
//! one shared sensor network (§2's many-handhelds scenario).
//!
//! T16a sweeps offered load (1–64 queries submitted at once) × scheduling
//! policy (FIFO, EDF, energy-weighted fair share) through a bounded
//! admission queue, measuring per-query response time (with percentiles),
//! total energy, bytes on air, admission-rejection rate, and the fraction
//! of queries that rode a shared collection epoch. T16b is the tentpole
//! assertion: 16 overlapping-region aggregates through the runtime reuse
//! one aggregation tree and must spend measurably fewer bytes on air than
//! the same 16 queries submitted serially — the experiment *asserts* the
//! reduction rather than just reporting it. T16c pushes a concurrent
//! workload through the unified fault plan: every admitted query must come
//! back `Ok` with its own degradation report, never an error.
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_t16_multiquery [-- --smoke]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_bench::{fmt, header, Experiment};
use pg_core::PervasiveGrid;
use pg_partition::decide::Policy;
use pg_partition::model::SolutionModel;
use pg_runtime::{MultiQueryRuntime, QueryOpts, RuntimeConfig, SchedPolicy};
use pg_sensornet::region::Region;
use pg_sim::fault::FaultPlan;
use pg_sim::metrics::Samples;
use pg_sim::{Duration, SimTime};
use rayon::prelude::*;
use std::process::ExitCode;

/// The rotating query mix: aggregates over overlapping scopes (shareable)
/// interleaved with targeted simple reads (never shared).
const MIX: [&str; 8] = [
    "SELECT AVG(temp) FROM sensors",
    "SELECT MAX(temp) FROM sensors WHERE region(west)",
    "SELECT AVG(temp) FROM sensors WHERE region(east)",
    "SELECT temp FROM sensors WHERE sensor_id = 7",
    "SELECT MAX(temp) FROM sensors",
    "SELECT AVG(temp) FROM sensors WHERE region(west)",
    "SELECT temp FROM sensors WHERE sensor_id = 11",
    "SELECT MAX(temp) FROM sensors WHERE region(east)",
];

fn grid(seed: u64) -> PervasiveGrid {
    PervasiveGrid::building(1, 6, seed)
        .region("west", Region::room(0.0, 0.0, 14.0, 30.0))
        .region("east", Region::room(10.0, 0.0, 30.0, 30.0))
        .build()
}

fn sched_cfg(policy: SchedPolicy) -> RuntimeConfig {
    RuntimeConfig::builder()
        .capacity(48)
        .epoch(Duration::from_secs(30))
        .slots_per_epoch(8)
        .policy(policy)
        .build()
}

/// Per-cell accumulator, folded across seeds in seed order.
#[derive(Default)]
struct Cell {
    resp_s: Vec<f64>,
    energy_j: f64,
    bytes: f64,
    admitted: u64,
    rejected: u64,
    completed: u64,
    shared: u64,
    errors: u64,
    missed: u64,
    epochs: u64,
}

/// One seeded run: submit `load` queries up front (staggered deadlines),
/// then run epochs until the queue drains.
fn run_cell(load: usize, policy: SchedPolicy, seed: u64) -> Cell {
    let mut rt = MultiQueryRuntime::new(sched_cfg(policy), grid(seed));
    for i in 0..load {
        let deadline = Duration::from_secs(45 + (i as u64 % 16) * 15);
        rt.submit(MIX[i % MIX.len()], QueryOpts::with_deadline(deadline));
    }
    let mut cell = Cell {
        epochs: rt.run_until_idle(64) as u64,
        admitted: rt.admitted,
        rejected: rt.rejected,
        energy_j: rt.energy_spent_j(),
        ..Cell::default()
    };
    for o in rt.outcomes() {
        cell.completed += 1;
        match &o.response {
            Ok(_) => {
                cell.resp_s.push(o.response_time_s());
                cell.bytes += o.attribution.bytes;
                cell.shared += u64::from(o.attribution.shared);
                cell.missed += u64::from(o.deadline_exceeded());
            }
            Err(_) => cell.errors += 1,
        }
    }
    cell
}

fn main() -> ExitCode {
    let mut exp = Experiment::from_args("exp_t16_multiquery");
    let reps: u64 = exp.scale(8, 2);
    exp.set_meta("reps", reps.to_string());

    // --- T16a: offered load × scheduling policy. ---
    println!("T16a: offered load x policy, {reps} seeds per cell (36-sensor floor, 8 slots/epoch, 30 s epochs, queue capacity 48)");
    header(
        "per-query response time includes queue wait; reject = admission queue full",
        &[
            ("load", 5),
            ("policy", 6),
            ("p50 s", 8),
            ("p95 s", 8),
            ("energy J", 9),
            ("bytes", 10),
            ("reject", 7),
            ("shared", 7),
            ("missed", 7),
        ],
    );
    let policies = [SchedPolicy::Fifo, SchedPolicy::Edf, SchedPolicy::EnergyFair];
    for load in [1usize, 4, 16, 64] {
        for policy in policies {
            let per_seed: Vec<Cell> = (0..reps)
                .into_par_iter()
                .map(|seed| run_cell(load, policy, seed))
                .collect();
            // Seed-order fold: bit-identical to a serial sweep.
            let mut st = Cell::default();
            let mut resp = Samples::new();
            for c in per_seed {
                for &r in &c.resp_s {
                    resp.record(r);
                }
                st.energy_j += c.energy_j;
                st.bytes += c.bytes;
                st.admitted += c.admitted;
                st.rejected += c.rejected;
                st.completed += c.completed;
                st.shared += c.shared;
                st.errors += c.errors;
                st.missed += c.missed;
                st.epochs += c.epochs;
            }
            let n = reps as f64;
            let submitted = (st.admitted + st.rejected) as f64;
            let reject_rate = st.rejected as f64 / submitted;
            let ok = (st.completed - st.errors).max(1) as f64;
            let cell = format!("load{load}.{}", policy.name());
            let p50 = resp.quantile(0.5).unwrap_or(0.0);
            let p95 = resp.quantile(0.95).unwrap_or(0.0);
            exp.report_mut()
                .record_samples(format!("{cell}.response_s"), &mut resp);
            exp.set_scalar(format!("{cell}.energy_j"), st.energy_j / n);
            exp.set_scalar(format!("{cell}.bytes"), st.bytes / n);
            exp.set_scalar(format!("{cell}.reject_rate"), reject_rate);
            exp.set_scalar(format!("{cell}.shared_frac"), st.shared as f64 / ok);
            exp.set_scalar(format!("{cell}.missed_frac"), st.missed as f64 / ok);
            exp.set_counter(format!("{cell}.errors"), st.errors);
            exp.set_scalar(format!("{cell}.epochs"), st.epochs as f64 / n);
            println!(
                "{load:>5}  {:>6}  {:>8.1}  {:>8.1}  {:>9}  {:>10}  {reject_rate:>7.2}  {:>7.2}  {:>7.2}",
                policy.name(),
                p50,
                p95,
                fmt(st.energy_j / n),
                fmt(st.bytes / n),
                st.shared as f64 / ok,
                st.missed as f64 / ok,
            );
        }
        println!();
    }
    println!(
        "shape to check: at load 1 every policy is identical (one query, one \
         epoch); response p95 climbs with load as the backlog queues; load 64 \
         overflows the 48-query queue so reject rate goes positive; EDF \
         trades tail latency for deadline adherence (missed stays lowest); \
         shared_frac grows with load as overlapping aggregates batch into \
         common epochs."
    );

    // --- T16b: shared-tree reuse vs 16 serial submissions. ---
    println!("\nT16b: 16 overlapping-region aggregates, concurrent (one shared tree) vs serial (16 tree epochs)");
    header(
        "same queries, same seeds, placement pinned to the in-network tree",
        &[("mode", 10), ("bytes", 10), ("energy J", 9), ("answers", 8)],
    );
    let b_reps: u64 = exp.scale(8, 2);
    let build = |seed: u64| {
        PervasiveGrid::building(1, 6, seed)
            .policy(Policy::Static(SolutionModel::InNetworkTree))
            .region("west", Region::room(0.0, 0.0, 14.0, 30.0))
            .region("east", Region::room(10.0, 0.0, 30.0, 30.0))
            .build()
    };
    let texts: Vec<&str> = (0..16)
        .map(|i| {
            [
                "SELECT AVG(temp) FROM sensors",
                "SELECT MAX(temp) FROM sensors WHERE region(west)",
                "SELECT AVG(temp) FROM sensors WHERE region(east)",
                "SELECT MAX(temp) FROM sensors",
            ][i % 4]
        })
        .collect();
    let pairs: Vec<(f64, f64, f64, f64, u64)> = (0..b_reps)
        .into_par_iter()
        .map(|seed| {
            let mut serial = build(seed);
            let (mut s_bytes, mut s_energy) = (0.0, 0.0);
            for t in &texts {
                let r = serial.submit(t).expect("serial aggregate answers");
                s_bytes += r.cost.bytes;
                s_energy += r.cost.energy_j;
            }
            let cfg = RuntimeConfig::builder()
                .capacity(16)
                .slots_per_epoch(16)
                .build();
            let mut rt = MultiQueryRuntime::new(cfg, build(seed));
            for t in &texts {
                assert!(rt.submit(t, QueryOpts::default()).is_accepted());
            }
            rt.run_epoch();
            let mut answers = 0u64;
            let (mut c_bytes, mut c_energy) = (0.0, 0.0);
            for o in rt.outcomes() {
                let r = o.response.as_ref().expect("concurrent aggregate answers");
                assert!(o.attribution.shared, "all 16 must ride the shared tree");
                answers += u64::from(r.value.is_some());
                c_bytes += o.attribution.bytes;
                c_energy += o.attribution.energy_j;
            }
            // The tentpole acceptance assertion: shared-tree reuse must
            // measurably cut the bytes on air versus serial execution.
            assert!(
                c_bytes < s_bytes,
                "seed {seed}: shared {c_bytes} bytes must beat serial {s_bytes}"
            );
            (s_bytes, s_energy, c_bytes, c_energy, answers)
        })
        .collect();
    let (mut s_bytes, mut s_energy, mut c_bytes, mut c_energy, mut answers) =
        (0.0, 0.0, 0.0, 0.0, 0u64);
    for (sb, se, cb, ce, a) in pairs {
        s_bytes += sb;
        s_energy += se;
        c_bytes += cb;
        c_energy += ce;
        answers += a;
    }
    let n = b_reps as f64;
    exp.set_scalar("reuse.serial_bytes", s_bytes / n);
    exp.set_scalar("reuse.shared_bytes", c_bytes / n);
    exp.set_scalar("reuse.serial_energy_j", s_energy / n);
    exp.set_scalar("reuse.shared_energy_j", c_energy / n);
    exp.set_scalar("reuse.byte_ratio", c_bytes / s_bytes);
    exp.set_counter("reuse.answers", answers);
    println!(
        "{:>10}  {:>10}  {:>9}  {:>8}",
        "serial",
        fmt(s_bytes / n),
        fmt(s_energy / n),
        16 * b_reps,
    );
    println!(
        "{:>10}  {:>10}  {:>9}  {answers:>8}",
        "concurrent",
        fmt(c_bytes / n),
        fmt(c_energy / n),
    );
    println!(
        "shape to check: the concurrent bytes land well under serial (the \
         byte_ratio scalar, asserted < 1 per seed): overlapping member sets \
         collapse into shared strata so each tree edge carries one packet \
         for the whole workload."
    );

    // --- T16c: concurrent workload under the unified fault plan. ---
    println!("\nT16c: 16 concurrent queries under chaos (30 % loss + base outage)");
    header(
        "degrade per query, never fail the batch",
        &[
            ("answered", 9),
            ("errors", 7),
            ("retries", 8),
            ("degraded", 9),
        ],
    );
    let c_reps: u64 = exp.scale(8, 2);
    let chaos: Vec<(u64, u64, u64, u64)> = (0..c_reps)
        .into_par_iter()
        .map(|seed| {
            let plan = FaultPlan::builder(seed ^ 0x716C)
                .message_loss(0.3)
                .base_outage(SimTime::from_secs(30), SimTime::from_secs(90))
                .build()
                .expect("valid chaos plan");
            let pg = PervasiveGrid::building(1, 6, seed)
                .region("west", Region::room(0.0, 0.0, 14.0, 30.0))
                .region("east", Region::room(10.0, 0.0, 30.0, 30.0))
                .faults(plan)
                .build();
            let mut rt = MultiQueryRuntime::new(sched_cfg(SchedPolicy::Fifo), pg);
            for i in 0..16 {
                rt.submit(MIX[i % MIX.len()], QueryOpts::default());
            }
            rt.run_until_idle(32);
            let (mut answered, mut errors, mut retries, mut degraded) = (0u64, 0u64, 0u64, 0u64);
            for o in rt.outcomes() {
                match &o.response {
                    Ok(r) => {
                        answered += u64::from(r.value.is_some());
                        retries += r.degradation.retries;
                        degraded += u64::from(r.degradation.is_degraded());
                    }
                    Err(_) => errors += 1,
                }
            }
            (answered, errors, retries, degraded)
        })
        .collect();
    let (mut answered, mut errors, mut retries, mut degraded) = (0u64, 0u64, 0u64, 0u64);
    for (a, e, r, d) in chaos {
        answered += a;
        errors += e;
        retries += r;
        degraded += d;
    }
    assert_eq!(errors, 0, "faults must degrade queries, never error them");
    exp.set_counter("chaos.answered", answered);
    exp.set_counter("chaos.errors", errors);
    exp.set_counter("chaos.retries", retries);
    exp.set_counter("chaos.degraded", degraded);
    println!("{answered:>9}  {errors:>7}  {retries:>8}  {degraded:>9}");
    println!(
        "shape to check: zero errors under chaos — every admitted query \
         returns an answer plus its own degradation report (retries spent, \
         outage wait paid in latency)."
    );

    exp.finish()
}
