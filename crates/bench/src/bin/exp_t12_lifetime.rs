//! **T12** — continuous queries and network lifetime: EPOCH duration vs.
//! how long the network keeps answering, per collection strategy (§4's
//! Continuous/Windowed class; the lifetime framing is TAG's).
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_t12_lifetime [-- --smoke]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_bench::{header, key_part, standard_world, Experiment};
use pg_net::energy::RadioModel;
use pg_net::link::LinkModel;
use pg_sensornet::aggregate::AggFn;
use pg_sensornet::epoch::{run_continuous, Strategy};
use pg_sensornet::network::SensorNetwork;
use pg_sim::Duration;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

const N: usize = 100;
/// Small batteries so lifetimes are reachable in simulation.
const BATTERY_J: f64 = 0.3;
const MAX_EPOCHS: usize = 5_000;

fn main() -> ExitCode {
    let mut exp = Experiment::from_args("exp_t12_lifetime");
    let reps: u64 = exp.scale(5, 2);
    let epochs: &[u64] = exp.scale(&[1, 5, 20, 60], &[5, 60]);
    exp.set_meta("reps", reps.to_string());
    println!(
        "T12: continuous AVG query, {N} sensors, {BATTERY_J} J batteries; \
         lifetime = epochs until first sensor death / until blackout"
    );
    header(
        &format!("mean of {reps} seeds"),
        &[
            ("epoch s", 8),
            ("strategy", 14),
            ("1st death", 10),
            ("blackout", 10),
            ("lifetime s", 11),
            ("delivery", 9),
        ],
    );
    for &epoch_s in epochs {
        for strategy in [
            Strategy::Direct,
            Strategy::Cluster { heads: 5 },
            Strategy::Tree,
        ] {
            let mut death = pg_sim::metrics::Summary::new();
            let mut blackout = pg_sim::metrics::Summary::new();
            let mut life_s = pg_sim::metrics::Summary::new();
            let mut deliv = pg_sim::metrics::Summary::new();
            for seed in 0..reps {
                let w = standard_world(N, seed);
                // Re-deploy with the small experiment battery.
                let mut net = SensorNetwork::new(
                    w.net.topology().clone(),
                    w.net.base(),
                    RadioModel::mote(),
                    LinkModel::new(250e3, Duration::from_millis(5), 0.02).unwrap(),
                    BATTERY_J,
                );
                net.noise_sd = 0.5;
                let members: Vec<_> = net
                    .topology()
                    .nodes()
                    .filter(|&x| x != net.base())
                    .collect();
                let mut rng = StdRng::seed_from_u64(seed ^ 0x12);
                let r = run_continuous(
                    &mut net,
                    &members,
                    &w.field,
                    AggFn::Avg,
                    strategy,
                    Duration::from_secs(epoch_s),
                    MAX_EPOCHS,
                    &mut rng,
                );
                death.record(r.first_death_epoch.unwrap_or(r.epochs_run) as f64);
                blackout.record(r.blackout_epoch.unwrap_or(r.epochs_run) as f64);
                life_s.record(r.epochs_run as f64 * epoch_s as f64);
                deliv.record(r.mean_delivery);
            }
            let cell = format!("epoch{epoch_s}.{}", key_part(&strategy.name()));
            exp.record_summary(format!("{cell}.first_death_epoch"), &death);
            exp.record_summary(format!("{cell}.blackout_epoch"), &blackout);
            exp.record_summary(format!("{cell}.lifetime_s"), &life_s);
            exp.record_summary(format!("{cell}.delivery"), &deliv);
            println!(
                "{epoch_s:>8}  {:>14}  {:>10}  {:>10}  {:>11}  {:>9}",
                strategy.name(),
                pg_bench::fmt(death.mean()),
                pg_bench::fmt(blackout.mean()),
                pg_bench::fmt(life_s.mean()),
                format!("{:.2}", deliv.mean()),
            );
        }
        println!();
    }
    println!(
        "shape to check: longer epochs extend wall-clock lifetime roughly \
         linearly (idle power dominates at long epochs, so strategies \
         converge); at short epochs radio traffic dominates and tree/cluster \
         outlive direct by a clear margin."
    );
    exp.finish()
}
