//! **microbench** — the CI perf-regression gate for the criterion
//! microbenches.
//!
//! `cargo bench` prints one `bench: <name> <ns> ns/iter` line per target
//! (the vendored criterion reports the median over its sample blocks).
//! This binary parses those lines into a pg-report/v1 JSON (`micro`),
//! writes it next to the experiment reports, and compares it against the
//! committed `baselines/BENCH_micro.json` with a **one-sided** relative
//! tolerance: getting faster never fails, getting more than the tolerance
//! slower does. Wall-clock numbers are noisy where simulation counters are
//! not, so the default tolerance is 25% instead of the experiment gate's
//! 1e-9.
//!
//! A bench name appearing more than once folds to the **min**: scheduler
//! noise on a shared runner is strictly additive, so the minimum of
//! several runs' medians tracks the true cost while a one-run contention
//! spike is discarded — a genuine regression slows *every* run and
//! survives the fold. CI therefore runs the suite a few times and
//! concatenates the output before gating:
//!
//! ```sh
//! for i in 1 2 3; do cargo bench -p pg-bench; done > bench.txt
//! cargo run --release -p pg-bench --bin microbench -- --input bench.txt
//! cargo run --release -p pg-bench --bin microbench -- --input bench.txt --write-baseline
//! ```
//!
//! Reading from stdin works too; `--input` may be repeated.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_bench::key_part;
use pg_bench::regress::{compare, drift_table, Tolerances};
use pg_sim::report::Report;
use std::collections::BTreeMap;
use std::io::Read;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: microbench [--input FILE]... [--baseline FILE] [--out DIR] \
         [--tolerance REL] [--write-baseline]\n\
         \n  --input FILE      `bench:` lines to parse; repeatable (default: stdin)\
         \n  --baseline FILE   committed medians (default: baselines/BENCH_micro.json)\
         \n  --out DIR         where to write micro.json (default: results)\
         \n  --tolerance REL   one-sided slowdown tolerance (default: 0.25)\
         \n  --write-baseline  write the parsed report over the baseline\
         \n                    instead of comparing"
    );
    std::process::exit(2);
}

/// Parse `bench: <name> <ns> ns/iter ...` lines; a name seen more than
/// once (the suite run several times) folds to its minimum.
fn parse_bench_lines(text: &str) -> BTreeMap<String, f64> {
    let mut best: BTreeMap<String, f64> = BTreeMap::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("bench:") else {
            continue;
        };
        let mut tokens = rest.split_whitespace();
        let (Some(name), Some(ns), Some("ns/iter")) = (tokens.next(), tokens.next(), tokens.next())
        else {
            continue;
        };
        let Ok(ns) = ns.parse::<f64>() else { continue };
        best.entry(name.to_string())
            .and_modify(|b| *b = b.min(ns))
            .or_insert(ns);
    }
    best
}

fn main() -> ExitCode {
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut baseline_path = PathBuf::from("baselines/BENCH_micro.json");
    let mut out_dir: PathBuf = std::env::var_os("PG_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    let mut tolerance = 0.25f64;
    let mut write_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--input" => inputs.push(args.next().map(PathBuf::from).unwrap_or_else(|| usage())),
            "--baseline" => {
                baseline_path = args.next().map(PathBuf::from).unwrap_or_else(|| usage())
            }
            "--out" => out_dir = args.next().map(PathBuf::from).unwrap_or_else(|| usage()),
            "--tolerance" => {
                let Some(v) = args.next().and_then(|s| s.parse::<f64>().ok()) else {
                    usage()
                };
                tolerance = v;
            }
            "--write-baseline" => write_baseline = true,
            _ => usage(),
        }
    }

    let mut text = String::new();
    if inputs.is_empty() {
        if let Err(e) = std::io::stdin().read_to_string(&mut text) {
            eprintln!("microbench: cannot read stdin: {e}");
            return ExitCode::FAILURE;
        }
    }
    for path in &inputs {
        match std::fs::read_to_string(path) {
            Ok(t) => text.push_str(&t),
            Err(e) => {
                eprintln!("microbench: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let parsed = parse_bench_lines(&text);
    if parsed.is_empty() {
        eprintln!("microbench: no `bench: ... ns/iter` lines found in the input");
        return ExitCode::FAILURE;
    }

    let mut fresh = Report::new("micro");
    fresh.set_meta("mode", "bench");
    for (name, ns) in &parsed {
        fresh.set_scalar(key_part(name), *ns);
    }
    let json = match fresh.to_json() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("microbench: report serialization failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("microbench: cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let fresh_path = out_dir.join("micro.json");
    if let Err(e) = std::fs::write(&fresh_path, format!("{json}\n")) {
        eprintln!("microbench: cannot write {}: {e}", fresh_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!(
        "report: {} ({} benches)",
        fresh_path.display(),
        parsed.len()
    );

    if write_baseline {
        if let Err(e) = std::fs::write(&baseline_path, format!("{json}\n")) {
            eprintln!("microbench: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!("baseline written: {}", baseline_path.display());
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path)
        .map_err(|e| e.to_string())
        .and_then(|t| Report::from_json(&t))
    {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "microbench: missing or unreadable baseline {} — create one with \
                 --write-baseline: {e}",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let tol = Tolerances {
        default_rel: tolerance,
        one_sided: true,
        // Sub-microsecond benches sit at the timer's resolution under the
        // CI sample counts; flooring the denominator at 1 µs compares them
        // absolutely (±250 ns of slack at the default tolerance) instead
        // of flapping on scheduler jitter.
        abs_floor: 1_000.0,
        ..Tolerances::default()
    };
    let cmp = compare(&baseline, &fresh, &tol);
    for w in &cmp.warnings {
        eprintln!("warn micro: {w}");
    }
    if cmp.ok() {
        println!(
            "ok   micro: {} bench(es) within the {:.0}% one-sided budget",
            cmp.matched,
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        println!("FAIL micro: {} violation(s)", cmp.violations.len());
        if !cmp.drifts.is_empty() {
            print!("{}", drift_table(&cmp.drifts));
        }
        for v in cmp.violations.iter().filter(|v| !v.starts_with("drift:")) {
            println!("  {v}");
        }
        ExitCode::FAILURE
    }
}
