//! **T15** — chaos: graceful end-to-end degradation under the unified
//! fault-injection harness (§3: the system must be "tolerant to failures"
//! — sensors die, the center goes dark, links black out — and degrade
//! gracefully rather than fail).
//!
//! T15a sweeps fault intensity × decision policy through the full runtime:
//! every query must come back `Ok` with a populated `DegradationReport`,
//! never an error, and the sweep records what the chaos cost (success,
//! delivered fraction, response time, retries, energy). T15b puts the
//! reliable agent messaging layer under rising message loss: ack/retry
//! keeps delivery total until the wire is fully cut, at which point
//! bounded retries dead-letter instead of spinning.
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_t15_chaos [-- --smoke]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_agent::deputy::DirectDeputy;
use pg_agent::profile::AgentAttribute;
use pg_agent::{Agent, AgentProfile, AgentSystem, Envelope, Payload, ReliableConfig};
use pg_bench::{fmt, header, key_part, Experiment};
use pg_core::PervasiveGrid;
use pg_net::link::LinkModel;
use pg_partition::decide::Policy;
use pg_partition::model::SolutionModel;
use pg_sim::fault::FaultPlan;
use pg_sim::{Duration, SimTime};
use std::process::ExitCode;

/// The four chaos intensities of the sweep. Level 0 is the control (the
/// empty plan — byte-identical behaviour to a faultless build); each later
/// level layers on more of §3's failure modes.
fn chaos_plan(level: usize, seed: u64) -> FaultPlan {
    let b = FaultPlan::builder(seed);
    let plan = match level {
        0 => return FaultPlan::none(),
        1 => b.message_loss(0.1).build(),
        2 => b
            .message_loss(0.3)
            .base_outage(SimTime::from_secs(60), SimTime::from_secs(120))
            .random_node_crashes(25, 0.1, SimTime::from_secs(600), Duration::from_secs(120))
            .build(),
        _ => b
            .message_loss(0.5)
            .base_outage(SimTime::from_secs(60), SimTime::from_secs(150))
            .link_blackout(SimTime::from_secs(200), SimTime::from_secs(210))
            .random_node_crashes(25, 0.2, SimTime::from_secs(600), Duration::from_secs(180))
            .worker_outage(0, SimTime::ZERO, SimTime::from_secs(600))
            .build(),
    };
    plan.expect("static chaos parameters are valid")
}

fn level_name(level: usize) -> &'static str {
    ["none", "mild", "heavy", "extreme"][level]
}

/// Per-cell accumulator, folded across seeds in seed order.
#[derive(Default)]
struct CellStats {
    answered: u64,
    errors: u64,
    total: u64,
    delivered: f64,
    time_s: f64,
    retries: u64,
    outage_wait_s: f64,
    fallbacks: u64,
    energy_j: f64,
}

impl CellStats {
    fn fold(mut self, o: &CellStats) -> CellStats {
        self.answered += o.answered;
        self.errors += o.errors;
        self.total += o.total;
        self.delivered += o.delivered;
        self.time_s += o.time_s;
        self.retries += o.retries;
        self.outage_wait_s += o.outage_wait_s;
        self.fallbacks += o.fallbacks;
        self.energy_j += o.energy_j;
        self
    }
}

/// One seeded run of the query batch against a faulted runtime.
fn run_cell(level: usize, policy: Policy, seed: u64) -> CellStats {
    let mut pg = PervasiveGrid::building(1, 5, seed)
        .policy(policy)
        .faults(chaos_plan(level, seed ^ 0xC0A5))
        .deadline(Duration::from_secs(600))
        .build();
    let queries = [
        "SELECT temp FROM sensors WHERE sensor_id = 7",
        "SELECT AVG(temp) FROM sensors",
        "SELECT MAX(temp) FROM sensors",
        "SELECT AVG(temp) FROM sensors COST time 120",
    ];
    let mut st = CellStats::default();
    for q in queries {
        match pg.submit(q) {
            Ok(r) => {
                if r.value.is_some() {
                    st.answered += 1;
                }
                st.delivered += r.delivered_frac;
                st.time_s += r.cost.time_s;
                st.retries += r.degradation.retries;
                st.outage_wait_s += r.degradation.base_outage_wait_s;
                st.fallbacks += u64::from(r.degradation.fallback_model);
            }
            Err(_) => st.errors += 1,
        }
        st.total += 1;
        // Spread the batch across the outage windows.
        pg.advance(Duration::from_secs(45));
    }
    st.energy_j = pg.energy_consumed();
    st
}

fn policy_key(policy: &Policy) -> String {
    match policy {
        Policy::Adaptive => "adaptive".into(),
        Policy::Bandit => "bandit".into(),
        Policy::Random => "random".into(),
        Policy::Static(m) => key_part(&format!("static_{}", m.name())),
    }
}

fn main() -> ExitCode {
    let mut exp = Experiment::from_args("exp_t15_chaos");
    let reps: u64 = exp.scale3(12, 4, 32);
    exp.set_meta("reps", reps.to_string());

    // --- T15a: fault intensity × policy through the full runtime. ---
    println!("T15a: end-to-end degradation, {reps} seeds x 4 queries per cell (25 sensors)");
    header(
        "success = answered queries / submitted; errors must stay 0",
        &[
            ("chaos", 8),
            ("policy", 22),
            ("success", 8),
            ("errors", 7),
            ("deliv", 7),
            ("time s", 9),
            ("retries", 8),
            ("wait s", 7),
            ("energy J", 9),
        ],
    );
    let policies = [
        Policy::Adaptive,
        Policy::Static(SolutionModel::BaseStation),
        Policy::Static(SolutionModel::InNetworkTree),
    ];
    for level in 0..4 {
        for policy in policies {
            let per_seed: Vec<CellStats> = {
                use rayon::prelude::*;
                (0..reps)
                    .into_par_iter()
                    .map(|seed| run_cell(level, policy, seed))
                    .collect()
            };
            // Seed-order fold: bit-identical to a serial sweep (the same
            // contract as `replicate_par`).
            let st = per_seed.iter().fold(CellStats::default(), CellStats::fold);
            let n = st.total as f64;
            let success = st.answered as f64 / n;
            let cell = format!("{}.{}", level_name(level), policy_key(&policy));
            exp.set_scalar(format!("{cell}.success"), success);
            exp.set_counter(format!("{cell}.errors"), st.errors);
            exp.set_scalar(format!("{cell}.delivered"), st.delivered / n);
            exp.set_scalar(format!("{cell}.time_s"), st.time_s / n);
            exp.set_scalar(format!("{cell}.retries"), st.retries as f64 / reps as f64);
            exp.set_scalar(
                format!("{cell}.outage_wait_s"),
                st.outage_wait_s / reps as f64,
            );
            exp.set_scalar(
                format!("{cell}.fallbacks"),
                st.fallbacks as f64 / reps as f64,
            );
            exp.set_scalar(format!("{cell}.energy_j"), st.energy_j / reps as f64);
            println!(
                "{:>8}  {:>22}  {success:>8.2}  {:>7}  {:>7.2}  {:>9.2}  {:>8.1}  {:>7.1}  {:>9}",
                level_name(level),
                policy_key(&policy),
                st.errors,
                st.delivered / n,
                st.time_s / n,
                st.retries as f64 / reps as f64,
                st.outage_wait_s / reps as f64,
                fmt(st.energy_j / reps as f64),
            );
        }
        println!();
    }
    println!(
        "shape to check: errors stay 0 at every intensity (degrade, never \
         fail); delivered falls and retries/wait climb with intensity; the \
         base-outage wait shows up in response time, not in success."
    );

    // --- T15b: reliable agent messaging under rising loss. ---
    let pings: u32 = exp.scale3(40, 15, 120);
    println!("\nT15b: ack/retry agent messaging, {pings} request/reply pairs per cell");
    header(
        "reliable delivery vs wire loss (5 retries, exp. backoff)",
        &[
            ("loss", 6),
            ("got", 6),
            ("acked", 7),
            ("retries", 8),
            ("dead", 6),
            ("dup", 6),
        ],
    );
    for loss in [0.0f64, 0.1, 0.3, 0.5, 1.0] {
        let mut sys = AgentSystem::new();
        sys.enable_reliability(ReliableConfig::default(), 7);
        if loss > 0.0 {
            sys.set_fault_plan(
                FaultPlan::builder(7)
                    .message_loss(loss)
                    .build()
                    .expect("valid loss"),
            );
        }
        let pinger = sys.register(Box::new(Pinger::default()), direct());
        let ponger = sys.register(Box::new(Ponger::default()), direct());
        for _ in 0..pings {
            sys.send(Envelope::text(pinger, ponger, "acl/ping", "ping"));
        }
        sys.run_to_quiescence();
        let got = sys
            .agent(pinger)
            .and_then(|a| a.downcast_ref::<Pinger>())
            .map_or(0, |p| p.pongs);
        let m = sys.metrics();
        let (acked, retries, dead, dup) = (
            m.counter("reliable.acked"),
            m.counter("reliable.retries"),
            m.counter("reliable.dead_letter"),
            m.counter("reliable.duplicate"),
        );
        let cell = format!("loss{loss}");
        exp.set_scalar(
            format!("{cell}.got_frac"),
            f64::from(got) / f64::from(pings),
        );
        exp.set_counter(format!("{cell}.acked"), acked);
        exp.set_counter(format!("{cell}.retries"), retries);
        exp.set_counter(format!("{cell}.dead_letter"), dead);
        exp.set_counter(format!("{cell}.duplicate"), dup);
        println!("{loss:>6.1}  {got:>6}  {acked:>7}  {retries:>8}  {dead:>6}  {dup:>6}");
    }
    println!(
        "shape to check: replies stay complete through 50 % loss (retries \
         absorb it); total loss dead-letters after the bounded retry budget \
         instead of retrying forever."
    );

    exp.finish()
}

fn direct() -> Box<DirectDeputy> {
    Box::new(DirectDeputy::new(LinkModel::wifi()))
}

/// Replies to every ping with a pong.
#[derive(Default)]
struct Ponger {
    profile: AgentProfile,
}

impl Agent for Ponger {
    fn profile(&self) -> &AgentProfile {
        &self.profile
    }
    fn handle(&mut self, _now: SimTime, env: Envelope) -> Vec<Envelope> {
        if env.content_type == "acl/ping" {
            vec![env.reply("acl/pong", Payload::Text("pong".into()))]
        } else {
            Vec::new()
        }
    }
}

/// Counts the pongs that make it back.
struct Pinger {
    profile: AgentProfile,
    pongs: u32,
}

impl Default for Pinger {
    fn default() -> Self {
        Pinger {
            profile: AgentProfile::new().with_attr(AgentAttribute::Client),
            pongs: 0,
        }
    }
}

impl Agent for Pinger {
    fn profile(&self) -> &AgentProfile {
        &self.profile
    }
    fn handle(&mut self, _now: SimTime, env: Envelope) -> Vec<Envelope> {
        if env.content_type == "acl/pong" {
            self.pongs += 1;
        }
        Vec::new()
    }
}
