//! **T14** — packet-level MAC validation: the event-driven simulation
//! (GloMoSim-class substrate) against the analytic link model it replaces
//! at light load, and the contention behaviour only the packet level can
//! show. All timings here are *simulated* time, so they are deterministic
//! and belong in the report.
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_t14_mac [-- --smoke]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_bench::{fmt, header, key_part, Experiment};
use pg_net::energy::RadioModel;
use pg_net::geom::Point;
use pg_net::packetsim::{MacParams, PacketSim};
use pg_net::topology::{NodeId, Topology};
use pg_sim::fault::FaultPlan;
use pg_sim::SimTime;
use std::process::ExitCode;

fn line(n: usize) -> Topology {
    let pts = (0..n).map(|i| Point::flat(i as f64 * 10.0, 0.0)).collect();
    Topology::from_positions(pts, 15.0)
}

fn main() -> ExitCode {
    let mut exp = Experiment::from_args("exp_t14_mac");
    let mac = MacParams::default();

    // --- T14a: light-load agreement with the analytic model. ---
    println!("T14a: packet level vs analytic at light load (single flow, idle channel)");
    header(
        "one 100-byte packet over h hops",
        &[("hops", 5), ("analytic ms", 12), ("packet-level ms", 16)],
    );
    for hops in [1usize, 3, 6] {
        let topo = line(hops + 1);
        let mut sim = PacketSim::new(topo, RadioModel::mote(), mac, 1);
        let route: Vec<NodeId> = (0..=hops as u32).map(NodeId).collect();
        sim.inject(1, 100, route, SimTime::ZERO);
        let r = sim.run();
        let analytic_ms = mac.frame_time(100).as_secs_f64() * hops as f64 * 1e3;
        let measured_ms = r.delivered[0].at.as_secs_f64() * 1e3;
        exp.set_scalar(format!("light.h{hops}.analytic_ms"), analytic_ms);
        exp.set_scalar(format!("light.h{hops}.packet_ms"), measured_ms);
        println!(
            "{hops:>5}  {:>12}  {:>16}",
            fmt(analytic_ms),
            fmt(measured_ms)
        );
    }

    // --- T14b: contention around one sink. ---
    println!("\nT14b: star of s senders, 4 packets each, to one sink");
    header(
        "channel efficiency = total airtime / completion time",
        &[
            ("senders", 8),
            ("delivered", 10),
            ("collisions", 11),
            ("deferrals", 10),
            ("complete ms", 12),
            ("efficiency", 11),
        ],
    );
    let sender_sweep: &[usize] = exp.scale(&[2, 4, 8, 16], &[2, 8]);
    for &senders in sender_sweep {
        let mut pts = vec![Point::flat(0.0, 0.0)];
        for i in 0..senders {
            let a = i as f64 * std::f64::consts::TAU / senders as f64;
            pts.push(Point::flat(10.0 * a.cos(), 10.0 * a.sin()));
        }
        // Mutual range: everyone hears everyone (no hidden terminals).
        let topo = Topology::from_positions(pts, 25.0);
        let mut sim = PacketSim::new(topo, RadioModel::mote(), mac, 2);
        let mut id = 0;
        for s in 1..=senders as u32 {
            for k in 0..4u64 {
                sim.inject(id, 100, vec![NodeId(s), NodeId(0)], SimTime::from_micros(k));
                id += 1;
            }
        }
        let r = sim.run();
        let airtime = mac.frame_time(100).as_secs_f64() * (senders * 4) as f64;
        let cell = format!("star.s{senders}");
        exp.set_counter(format!("{cell}.delivered"), r.delivered.len() as u64);
        exp.set_counter(
            format!("{cell}.collisions"),
            r.metrics.counter("mac.collisions"),
        );
        exp.set_counter(
            format!("{cell}.deferrals"),
            r.metrics.counter("mac.deferrals"),
        );
        exp.set_scalar(
            format!("{cell}.complete_ms"),
            r.finished_at.as_secs_f64() * 1e3,
        );
        exp.set_scalar(
            format!("{cell}.efficiency"),
            airtime / r.finished_at.as_secs_f64(),
        );
        println!(
            "{senders:>8}  {:>10}  {:>11}  {:>10}  {:>12}  {:>11}",
            r.delivered.len(),
            r.metrics.counter("mac.collisions"),
            r.metrics.counter("mac.deferrals"),
            fmt(r.finished_at.as_secs_f64() * 1e3),
            format!("{:.2}", airtime / r.finished_at.as_secs_f64()),
        );
    }

    // --- T14c: hidden terminals. ---
    println!("\nT14c: hidden terminals (A - sink - B line: A and B cannot hear each other)");
    header(
        "4 packets each from both ends, simultaneously",
        &[("scenario", 18), ("collisions", 11), ("complete ms", 12)],
    );
    // Exposed: triangle, everyone in range (carrier sense works).
    let tri = Topology::from_positions(
        vec![
            Point::flat(0.0, 0.0),
            Point::flat(10.0, 0.0),
            Point::flat(5.0, 8.0),
        ],
        15.0,
    );
    // Hidden: line, senders out of range of each other.
    let hidden = line(3);
    for (name, topo, a, b, sink) in [
        ("mutual range", tri, NodeId(1), NodeId(2), NodeId(0)),
        ("hidden terminals", hidden, NodeId(0), NodeId(2), NodeId(1)),
    ] {
        let mut sim = PacketSim::new(topo, RadioModel::mote(), mac, 3);
        for k in 0..4u64 {
            sim.inject(k, 150, vec![a, sink], SimTime::from_micros(k));
            sim.inject(100 + k, 150, vec![b, sink], SimTime::from_micros(k));
        }
        let r = sim.run();
        let cell = format!("hidden.{}", key_part(name));
        exp.set_counter(
            format!("{cell}.collisions"),
            r.metrics.counter("mac.collisions"),
        );
        exp.set_scalar(
            format!("{cell}.complete_ms"),
            r.finished_at.as_secs_f64() * 1e3,
        );
        println!(
            "{name:>18}  {:>11}  {:>12}",
            r.metrics.counter("mac.collisions"),
            fmt(r.finished_at.as_secs_f64() * 1e3),
        );
    }
    // --- T14d: the unified FaultPlan inside the CSMA MAC. ---
    println!("\nT14d: fault injection at the packet level (star of 8 senders, 4 packets each)");
    header(
        "the same FaultPlan that drives the runtime reaches individual frames",
        &[
            ("plan", 10),
            ("delivered", 10),
            ("fault killed", 13),
            ("complete ms", 12),
        ],
    );
    let star = |senders: usize| {
        let mut pts = vec![Point::flat(0.0, 0.0)];
        for i in 0..senders {
            let a = i as f64 * std::f64::consts::TAU / senders as f64;
            pts.push(Point::flat(10.0 * a.cos(), 10.0 * a.sin()));
        }
        Topology::from_positions(pts, 25.0)
    };
    let mut faulted_kills = 0u64;
    for (name, plan) in [
        ("none", FaultPlan::none()),
        (
            "loss30",
            FaultPlan::builder(5)
                .message_loss(0.3)
                .build()
                .expect("valid loss plan"),
        ),
        (
            "blackout",
            FaultPlan::builder(5)
                .message_loss(0.2)
                .link_blackout(SimTime::ZERO, SimTime::from_millis(20))
                .build()
                .expect("valid blackout plan"),
        ),
    ] {
        let mut sim = PacketSim::new(star(8), RadioModel::mote(), mac, 4);
        let faulted = name != "none";
        sim.set_fault_plan(plan);
        let mut id = 0;
        for s in 1..=8u32 {
            for k in 0..4u64 {
                sim.inject(id, 100, vec![NodeId(s), NodeId(0)], SimTime::from_micros(k));
                id += 1;
            }
        }
        let r = sim.run();
        let killed = r.metrics.counter("mac.fault_killed");
        if faulted {
            faulted_kills += killed;
        }
        let cell = format!("faulted.{name}");
        exp.set_counter(format!("{cell}.delivered"), r.delivered.len() as u64);
        exp.set_counter(format!("{cell}.fault_killed"), killed);
        exp.set_scalar(
            format!("{cell}.complete_ms"),
            r.finished_at.as_secs_f64() * 1e3,
        );
        println!(
            "{name:>10}  {:>10}  {killed:>13}  {:>12}",
            r.delivered.len(),
            fmt(r.finished_at.as_secs_f64() * 1e3),
        );
    }
    // Acceptance: the plan must actually kill frames inside the MAC — the
    // proof that fault injection reaches the packet level, not just the
    // expectation-based link model above it.
    assert!(
        faulted_kills > 0,
        "faulted cells must kill frames at the MAC (got {faulted_kills})"
    );

    println!(
        "\nshape to check: light-load packet level matches the analytic hop \
         product exactly; efficiency stays high as mutually-audible senders \
         scale (carrier sense serializes them); hidden terminals collide \
         where mutual-range senders do not — the classic CSMA story, which \
         the expectation-based link model cannot express; the faulted star \
         loses frames to the plan (fault_killed > 0, asserted) while the \
         clean control delivers everything."
    );
    exp.finish()
}
