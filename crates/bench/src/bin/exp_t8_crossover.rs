//! **T8** — partition crossover: where each solution model wins as the
//! computation intensity of the query grows (§4: "Some queries may involve
//! performing a lot of computation … Such queries are best solved by [the
//! grid]. Some very frequent queries may require less computation … The
//! [in-network] approach would work best … Some queries which fall between
//! … may be best solved by [the base station].").
//!
//! The sweep runs the Complex query over growing regions: the PDE problem
//! (and hence ops) scales with region volume while the data volume scales
//! with member count.
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_t8_crossover [-- --smoke]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_bench::{fmt, header, standard_world, Experiment};
use pg_partition::exec::{execute_once, ExecContext};
use pg_partition::model::SolutionModel;
use pg_sensornet::region::Region;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

const MODEL_KEYS: [&str; 3] = ["in_net", "base", "grid"];

fn main() -> ExitCode {
    let mut exp = Experiment::from_args("exp_t8_crossover");
    let n: usize = exp.scale(200, 100);
    let reps: u64 = exp.scale(5, 2);
    exp.set_meta("n", n.to_string());
    exp.set_meta("reps", reps.to_string());
    println!("T8: response time per solution model as computation intensity grows");
    println!("({n} sensors; Complex query over growing regions of the arena)");
    header(
        &format!("response time seconds (mean of {reps} seeds)"),
        &[
            ("region %", 9),
            ("ops", 10),
            ("in-net s", 10),
            ("base s", 10),
            ("grid s", 10),
            ("winner", 8),
        ],
    );
    let fracs: &[f64] = exp.scale(&[0.1, 0.25, 0.5, 0.75, 1.0], &[0.25, 1.0]);
    for &frac in fracs {
        let mut times = [0.0f64; 3];
        let mut ops = 0.0;
        for seed in 0..reps {
            for (i, model) in [
                SolutionModel::InNetworkTree,
                SolutionModel::BaseStation,
                SolutionModel::GridOffload {
                    reduction_cell_m: 0.0,
                },
            ]
            .into_iter()
            .enumerate()
            {
                let mut w = standard_world(n, seed);
                let side = ((n as f64) * 100.0).sqrt();
                w.regions.insert(
                    "sweep".to_string(),
                    Region::room(0.0, 0.0, side * frac, side * frac),
                );
                let query = pg_query::parse(
                    "SELECT temperature_distribution() FROM sensors WHERE region(sweep)",
                )
                .expect("valid query");
                let mut ctx = ExecContext {
                    net: &mut w.net,
                    grid: &w.grid,
                    field: &w.field,
                    regions: &w.regions,
                    now: w.now,
                };
                let mut rng = StdRng::seed_from_u64(seed);
                if let Ok(out) = execute_once(&mut ctx, &query, model, &mut rng) {
                    times[i] += out.cost.time_s / reps as f64;
                    if i == 2 {
                        ops += out.cost.ops / reps as f64;
                    }
                }
            }
        }
        let pct = (frac * 100.0).round() as u32;
        exp.set_scalar(format!("complex.region{pct}.ops"), ops);
        for (i, key) in MODEL_KEYS.iter().enumerate() {
            exp.set_scalar(format!("complex.region{pct}.{key}_time_s"), times[i]);
        }
        let labels = ["in-net", "base", "grid"];
        let winner = labels[times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0];
        exp.set_meta(format!("complex.region{pct}.winner"), winner);
        println!(
            "{:>9}  {:>10}  {:>10}  {:>10}  {:>10}  {:>8}",
            format!("{pct}%"),
            fmt(ops),
            fmt(times[0]),
            fmt(times[1]),
            fmt(times[2]),
            winner,
        );
    }

    // The low end of the spectrum: a cheap aggregate over the same regions.
    println!("\nT8b: the cheap end (Aggregate query, same regions)");
    header(
        &format!("response time seconds (mean of {reps} seeds)"),
        &[
            ("region %", 9),
            ("in-net s", 10),
            ("base s", 10),
            ("grid s", 10),
            ("winner", 8),
        ],
    );
    for frac in [0.25f64, 1.0] {
        let mut times = [0.0f64; 3];
        for seed in 0..reps {
            for (i, model) in [
                SolutionModel::InNetworkTree,
                SolutionModel::BaseStation,
                SolutionModel::GridOffload {
                    reduction_cell_m: 0.0,
                },
            ]
            .into_iter()
            .enumerate()
            {
                let mut w = standard_world(n, seed);
                let side = ((n as f64) * 100.0).sqrt();
                w.regions.insert(
                    "sweep".to_string(),
                    Region::room(0.0, 0.0, side * frac, side * frac),
                );
                let query =
                    pg_query::parse("SELECT AVG(temp) FROM sensors WHERE region(sweep)").unwrap();
                let mut ctx = ExecContext {
                    net: &mut w.net,
                    grid: &w.grid,
                    field: &w.field,
                    regions: &w.regions,
                    now: w.now,
                };
                let mut rng = StdRng::seed_from_u64(seed);
                if let Ok(out) = execute_once(&mut ctx, &query, model, &mut rng) {
                    times[i] += out.cost.time_s / reps as f64;
                }
            }
        }
        let pct = (frac * 100.0).round() as u32;
        for (i, key) in MODEL_KEYS.iter().enumerate() {
            exp.set_scalar(format!("aggregate.region{pct}.{key}_time_s"), times[i]);
        }
        let labels = ["in-net", "base", "grid"];
        let winner = labels[times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0];
        exp.set_meta(format!("aggregate.region{pct}.winner"), winner);
        println!(
            "{:>9}  {:>10}  {:>10}  {:>10}  {:>8}",
            format!("{pct}%"),
            fmt(times[0]),
            fmt(times[1]),
            fmt(times[2]),
            winner,
        );
    }
    println!(
        "\nshape to check: in-network wins the cheap aggregates; the grid \
         pulls ahead of the base station as the PDE grows (its compute-time \
         share shrinks while the PDA's explodes); in-network is never \
         competitive for Complex queries."
    );
    exp.finish()
}
