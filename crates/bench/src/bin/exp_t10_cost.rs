//! **T10** — the COST clause: how budgets steer (and gate) placement
//! ("We have also introduced the COST clause to specify the cost within
//! which the function is to be evaluated. Cost could be in terms of sensor
//! energy, response time or accuracy of the result." — §4).
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_t10_cost [-- --smoke]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_bench::{header, key_part, standard_world, Experiment};
use pg_partition::decide::{DecisionConfig, DecisionMaker, Policy};
use pg_partition::exec::{execute_once, ExecContext};
use pg_partition::features::QueryFeatures;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

const N: usize = 100;

fn run_bound(clause: &str, reps: u64) -> (f64, String, f64, f64) {
    // Returns (acceptance rate, modal model, mean energy, mean time).
    let mut accepted = 0u32;
    let mut models: Vec<String> = Vec::new();
    let mut energy = 0.0;
    let mut time = 0.0;
    for seed in 0..reps {
        let mut w = standard_world(N, seed);
        let mut dm = DecisionMaker::with_config(
            Policy::Adaptive,
            seed,
            DecisionConfig::builder().epsilon(0.0).build(),
        );
        let text = format!("SELECT AVG(temp) FROM sensors{clause}");
        let query = pg_query::parse(&text).expect("valid query");
        let features = {
            let ctx = ExecContext {
                net: &mut w.net,
                grid: &w.grid,
                field: &w.field,
                regions: &w.regions,
                now: w.now,
            };
            QueryFeatures::extract(&ctx, &query).expect("members")
        };
        // Warm the learner with three unbounded runs so its predictions are
        // grounded in actuals before the bounded decision.
        let warm = pg_query::parse("SELECT AVG(temp) FROM sensors").unwrap();
        for i in 0..3u64 {
            if let Ok(m) = dm.choose(&w.net, &w.grid, &warm, &features) {
                let mut ctx = ExecContext {
                    net: &mut w.net,
                    grid: &w.grid,
                    field: &w.field,
                    regions: &w.regions,
                    now: w.now,
                };
                let mut rng = StdRng::seed_from_u64(seed * 100 + i);
                if let Ok(out) = execute_once(&mut ctx, &warm, m, &mut rng) {
                    dm.record(&w.net, &w.grid, features, m, out.cost);
                }
            }
        }
        if let Ok(model) = dm.choose(&w.net, &w.grid, &query, &features) {
            accepted += 1;
            models.push(model.name());
            let mut ctx = ExecContext {
                net: &mut w.net,
                grid: &w.grid,
                field: &w.field,
                regions: &w.regions,
                now: w.now,
            };
            let mut rng = StdRng::seed_from_u64(seed);
            if let Ok(out) = execute_once(&mut ctx, &query, model, &mut rng) {
                energy += out.cost.energy_j;
                time += out.cost.time_s;
            }
        }
    }
    let modal = if models.is_empty() {
        "(rejected)".to_string()
    } else {
        let mut counts = std::collections::BTreeMap::new();
        for m in &models {
            *counts.entry(m.clone()).or_insert(0u32) += 1;
        }
        counts
            .into_iter()
            .max_by_key(|&(_, c)| c)
            .map(|(m, _)| m)
            .unwrap()
    };
    let k = accepted.max(1) as f64;
    (accepted as f64 / reps as f64, modal, energy / k, time / k)
}

fn main() -> ExitCode {
    let mut exp = Experiment::from_args("exp_t10_cost");
    let reps: u64 = exp.scale(10, 3);
    exp.set_meta("reps", reps.to_string());
    println!("T10: COST-bounded aggregate query on a {N}-sensor network ({reps} seeds)");
    header(
        "acceptance and steering per bound",
        &[
            ("COST clause", 32),
            ("accepted", 9),
            ("modal model", 22),
            ("energy J", 10),
            ("time s", 9),
        ],
    );
    for clause in [
        "",
        " COST energy 1.0",
        " COST energy 0.005",
        " COST energy 0.0005",
        " COST energy 0.000000001",
        " COST time 60",
        " COST time 0.3",
        " COST time 0.00001",
        " COST energy 0.01, time 1.0",
    ] {
        let (acc, modal, e, t) = run_bound(clause, reps);
        let label = if clause.is_empty() {
            "(none)"
        } else {
            clause.trim()
        };
        let cell = if clause.is_empty() {
            "unbounded".to_string()
        } else {
            key_part(clause)
        };
        exp.set_scalar(format!("{cell}.acceptance"), acc);
        exp.set_scalar(format!("{cell}.energy_j"), e);
        exp.set_scalar(format!("{cell}.time_s"), t);
        exp.set_meta(format!("{cell}.modal_model"), modal.clone());
        println!(
            "{label:>32}  {acc:>9.2}  {modal:>22}  {:>10}  {:>9}",
            pg_bench::fmt(e),
            pg_bench::fmt(t),
        );
    }
    println!(
        "\nshape to check: generous bounds accept with the unconstrained \
         choice; a tight energy bound steers toward in-network aggregation; \
         a tight time bound steers away from slow placements; impossible \
         bounds are rejected outright (acceptance 0) without draining the \
         network."
    );
    exp.finish()
}
