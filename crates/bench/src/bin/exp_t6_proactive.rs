//! **T6** — proactive vs. reactive composition: mean setup latency per
//! request as request frequency varies; the crossover §3 predicts.
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_t6_proactive [-- --smoke]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_bench::{fmt, header, Experiment};
use pg_compose::htn::MethodLibrary;
use pg_compose::proactive::{mean_setup_latency, CacheResult, ComposeCosts, PlanCache};
use pg_sim::{Duration, SimTime};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut exp = Experiment::from_args("exp_t6_proactive");
    let reqs: u32 = exp.scale(500, 120);
    exp.set_meta("requests", reqs.to_string());
    let costs = ComposeCosts::default();
    let ttl = Duration::from_secs(60);

    // --- Measured: drive a PlanCache with request streams. ---
    println!("T6: proactive (plan cache, 60 s TTL) vs reactive composition setup latency");
    header(
        &format!("{reqs} requests per row"),
        &[
            ("period s", 9),
            ("hit rate", 9),
            ("proactive ms", 13),
            ("reactive ms", 12),
            ("winner", 10),
        ],
    );
    let periods: &[f64] = exp.scale(
        &[1.0, 5.0, 20.0, 60.0, 120.0, 600.0, 3_600.0],
        &[1.0, 60.0, 600.0],
    );
    for &period_s in periods {
        let mut cache = PlanCache::new(MethodLibrary::pervasive_grid(), ttl);
        let mut total = Duration::ZERO;
        let mut hits = 0u32;
        for i in 0..reqs {
            let now = SimTime::from_secs_f64(period_s * i as f64);
            let (_, res, lat) = cache
                .request("temperature-distribution", now, &costs)
                .expect("library task");
            if res == CacheResult::Hit {
                hits += 1;
            }
            total += lat;
            // The proactive maintainer refreshes expired entries in the
            // background; charge its amortized cost per request.
            if period_s > ttl.as_secs_f64() {
                total += costs
                    .refresh_cost
                    .mul_f64(period_s / ttl.as_secs_f64() - 1.0);
            }
        }
        let pro_ms = total.as_secs_f64() * 1e3 / reqs as f64;
        let re_ms = (costs.plan_time + costs.discovery_sweep).as_secs_f64() * 1e3;
        let cell = format!("period{period_s}");
        exp.set_scalar(format!("{cell}.hit_rate"), hits as f64 / reqs as f64);
        exp.set_scalar(format!("{cell}.proactive_ms"), pro_ms);
        exp.set_scalar(format!("{cell}.reactive_ms"), re_ms);
        println!(
            "{period_s:>9}  {:>9}  {:>13}  {:>12}  {:>10}",
            format!("{:.2}", hits as f64 / reqs as f64),
            fmt(pro_ms),
            fmt(re_ms),
            if pro_ms < re_ms {
                "proactive"
            } else {
                "reactive"
            },
        );
    }

    // --- Analytic crossover. ---
    println!("\nT6b: analytic crossover (same cost model)");
    header(
        "mean setup latency per request",
        &[("period s", 9), ("proactive ms", 13), ("reactive ms", 12)],
    );
    for period_s in [1.0f64, 10.0, 60.0, 300.0, 1_800.0] {
        let p = mean_setup_latency(&costs, Duration::from_secs_f64(period_s), ttl, true);
        let r = mean_setup_latency(&costs, Duration::from_secs_f64(period_s), ttl, false);
        let cell = format!("analytic.period{period_s}");
        exp.set_scalar(format!("{cell}.proactive_ms"), p.as_secs_f64() * 1e3);
        exp.set_scalar(format!("{cell}.reactive_ms"), r.as_secs_f64() * 1e3);
        println!(
            "{period_s:>9}  {:>13}  {:>12}",
            fmt(p.as_secs_f64() * 1e3),
            fmt(r.as_secs_f64() * 1e3)
        );
    }
    println!(
        "\nshape to check: proactive wins at high request frequency (cache \
         hits amortize the refresh), reactive wins for rare requests — the \
         crossover sits near the cache TTL."
    );
    exp.finish()
}
