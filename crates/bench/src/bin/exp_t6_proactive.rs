//! **T6** — proactive vs. reactive composition: mean setup latency per
//! request as request frequency varies; the crossover §3 predicts.
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_t6_proactive
//! ```

use pg_bench::{fmt, header};
use pg_compose::htn::MethodLibrary;
use pg_compose::proactive::{mean_setup_latency, CacheResult, ComposeCosts, PlanCache};
use pg_sim::{Duration, SimTime};

fn main() {
    let costs = ComposeCosts::default();
    let ttl = Duration::from_secs(60);

    // --- Measured: drive a PlanCache with request streams. ---
    println!("T6: proactive (plan cache, 60 s TTL) vs reactive composition setup latency");
    header(
        "500 requests per row",
        &[
            ("period s", 9),
            ("hit rate", 9),
            ("proactive ms", 13),
            ("reactive ms", 12),
            ("winner", 10),
        ],
    );
    for period_s in [1.0f64, 5.0, 20.0, 60.0, 120.0, 600.0, 3_600.0] {
        let mut cache = PlanCache::new(MethodLibrary::pervasive_grid(), ttl);
        let mut total = Duration::ZERO;
        let mut hits = 0u32;
        const REQS: u32 = 500;
        for i in 0..REQS {
            let now = SimTime::from_secs_f64(period_s * i as f64);
            let (_, res, lat) = cache
                .request("temperature-distribution", now, &costs)
                .expect("library task");
            if res == CacheResult::Hit {
                hits += 1;
            }
            total += lat;
            // The proactive maintainer refreshes expired entries in the
            // background; charge its amortized cost per request.
            if period_s > ttl.as_secs_f64() {
                total += costs.refresh_cost.mul_f64(period_s / ttl.as_secs_f64() - 1.0);
            }
        }
        let pro_ms = total.as_secs_f64() * 1e3 / REQS as f64;
        let re_ms = (costs.plan_time + costs.discovery_sweep).as_secs_f64() * 1e3;
        println!(
            "{period_s:>9}  {:>9}  {:>13}  {:>12}  {:>10}",
            format!("{:.2}", hits as f64 / REQS as f64),
            fmt(pro_ms),
            fmt(re_ms),
            if pro_ms < re_ms { "proactive" } else { "reactive" },
        );
    }

    // --- Analytic crossover. ---
    println!("\nT6b: analytic crossover (same cost model)");
    header(
        "mean setup latency per request",
        &[("period s", 9), ("proactive ms", 13), ("reactive ms", 12)],
    );
    for period_s in [1.0f64, 10.0, 60.0, 300.0, 1_800.0] {
        let p = mean_setup_latency(&costs, Duration::from_secs_f64(period_s), ttl, true);
        let r = mean_setup_latency(&costs, Duration::from_secs_f64(period_s), ttl, false);
        println!(
            "{period_s:>9}  {:>13}  {:>12}",
            fmt(p.as_secs_f64() * 1e3),
            fmt(r.as_secs_f64() * 1e3)
        );
    }
    println!(
        "\nshape to check: proactive wins at high request frequency (cache \
         hits amortize the refresh), reactive wins for rare requests — the \
         crossover sits near the cache TTL."
    );
}
