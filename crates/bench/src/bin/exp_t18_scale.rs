//! **T18** — scale: the 10k-node arena, incremental tree repair under
//! churn, and the indexed discovery matcher.
//!
//! T18a builds the flat CSR node arena at 1k/10k (and 50k in full mode)
//! nodes and records its deterministic shape counters — edges, degrees,
//! canonical-tree height and coverage. The cell-binned adjacency build is
//! O(n + m), which is what makes the 10k-node smoke run fit the CI budget.
//! T18b is the tentpole sweep: node count × churn rate × seeds, running the
//! same forced-death schedule through a `Persistent` session (full rebuild
//! whenever the tree goes stale) and an `Incremental` session (localized
//! repair). Per seed and per churn level it asserts the incremental arm
//! strictly beats the full rebuild on repair wire bytes AND on repair
//! latency (control waves). T18c registers a mixed service corpus at scale
//! and checks the class-indexed matcher returns bit-identical hits to the
//! linear scan while consulting only a fraction of the registry.
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_t18_scale [-- --smoke]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_bench::{fmt, header, Experiment};
use pg_discovery::corpus::mixed_corpus;
use pg_discovery::{Ontology, Preference, Registry, ServiceRequest};
use pg_net::energy::RadioModel;
use pg_net::link::LinkModel;
use pg_net::{NodeId, Topology};
use pg_sensornet::aggregate::{AggFn, ValueFilter};
use pg_sensornet::{
    SensorNetwork, SharedQuery, SharedTreeSession, TemperatureField, TreeMaintenance,
};
use pg_sim::{Duration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::process::ExitCode;
use std::time::Instant;

/// One sweep size: a building of `floors × cols × rows` sensors.
#[derive(Clone, Copy)]
struct Size {
    label: &'static str,
    floors: usize,
    cols: usize,
    rows: usize,
}

impl Size {
    fn nodes(&self) -> usize {
        self.floors * self.cols * self.rows
    }

    /// 10 m in-plane pitch, 4 m floor height, 11 m radio range: in-plane
    /// 4-neighbours plus same- and adjacent-column links across floors.
    fn topology(&self) -> Topology {
        Topology::building(self.floors, self.cols, self.rows, 10.0, 4.0, 11.0)
    }
}

const K1: Size = Size {
    label: "1k",
    floors: 4,
    cols: 16,
    rows: 16,
};
const K10: Size = Size {
    label: "10k",
    floors: 4,
    cols: 50,
    rows: 50,
};
const K50: Size = Size {
    label: "50k",
    floors: 5,
    cols: 100,
    rows: 100,
};

fn network(size: Size) -> SensorNetwork {
    let mut net = SensorNetwork::new(
        size.topology(),
        NodeId(0),
        RadioModel::mote(),
        LinkModel::new(250e3, Duration::from_millis(5), 0.0).unwrap(),
        // Oversized battery: deaths in this experiment come only from the
        // forced churn schedule, never from drain, so both arms see the
        // exact same death sequence.
        1e9,
    );
    net.noise_sd = 0.0;
    net
}

/// Kill schedule: `per_epoch` distinct victims per epoch for `epochs`
/// epochs, drawn without replacement from the non-base sensors.
fn kill_schedule(n: usize, epochs: usize, per_epoch: usize, seed: u64) -> Vec<Vec<NodeId>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x517c_c1b7_2722_0a95);
    let mut pool: Vec<NodeId> = (1..n as u32).map(NodeId).collect();
    (0..epochs)
        .map(|_| {
            (0..per_epoch)
                .map(|_| pool.swap_remove(rng.gen_range(0..pool.len())))
                .collect()
        })
        .collect()
}

/// Accumulated control-plane cost of one maintenance arm over a churn run,
/// counted **after** the initial build (the two arms pay the same first
/// flood; the sweep compares what churn costs from then on).
struct ArmCost {
    repair_bytes: u64,
    repair_waves: u64,
    rebuilds: u64,
    repairs: u64,
}

fn run_arm(size: Size, mode: TreeMaintenance, schedule: &[Vec<NodeId>], seed: u64) -> ArmCost {
    let mut net = network(size);
    let field = TemperatureField::calm(25.0);
    let members: Vec<NodeId> = (1..size.nodes() as u32).map(NodeId).collect();
    let queries = [SharedQuery {
        members,
        filter: ValueFilter::all(),
        agg: AggFn::Avg,
    }];
    let mut session = SharedTreeSession::new(mode);
    let mut rng = StdRng::seed_from_u64(seed);

    // Epoch 0: initial build, excluded from the churn cost.
    let t0 = SimTime::from_secs(0);
    let first = session.collect(&mut net, &queries, &field, t0, &mut rng);
    assert!(first.tree_rebuilt, "first epoch must build the tree");

    let mut cost = ArmCost {
        repair_bytes: 0,
        repair_waves: 0,
        rebuilds: 0,
        repairs: 0,
    };
    for (e, victims) in schedule.iter().enumerate() {
        for &v in victims {
            net.drain(v, f64::INFINITY);
            assert!(!net.is_alive(v), "forced drain must kill {v:?}");
        }
        let t = SimTime::from_secs(30 * (e as u64 + 1));
        let report = session.collect(&mut net, &queries, &field, t, &mut rng);
        cost.repair_bytes += report.control_bytes;
        cost.repair_waves += u64::from(report.control_waves);
        cost.rebuilds += u64::from(report.tree_rebuilt);
        cost.repairs += u64::from(report.tree_repaired);
    }
    cost
}

fn main() -> ExitCode {
    let mut exp = Experiment::from_args("exp_t18_scale");
    let sizes: Vec<Size> = if exp.smoke() {
        vec![K1, K10]
    } else {
        vec![K1, K10, K50]
    };
    let reps: u64 = exp.scale(5, 2);
    let epochs = 8usize;
    exp.set_meta("reps", reps.to_string());
    exp.set_meta("epochs", epochs.to_string());

    // --- T18a: arena build at scale. ---
    println!(
        "T18a: CSR node arena build (building topology, 10 m pitch, 11 m range), \
         cell-binned O(n+m) adjacency"
    );
    header(
        "build wall-time on stdout only; reports carry shape counters",
        &[
            ("size", 5),
            ("nodes", 7),
            ("edges", 8),
            ("maxdeg", 6),
            ("height", 6),
            ("covered", 7),
            ("build ms", 8),
        ],
    );
    for &size in &sizes {
        let start = Instant::now();
        let topo = size.topology();
        let build_ms = start.elapsed().as_secs_f64() * 1e3;
        let tree = topo.canonical_tree(NodeId(0));
        let max_deg = (0..topo.len() as u32)
            .map(|i| topo.degree(NodeId(i)))
            .max()
            .unwrap_or(0);
        let net = network(size);
        assert_eq!(net.alive_sensors(), size.nodes() - 1);
        let key = format!("arena.{}", size.label);
        exp.set_counter(format!("{key}.nodes"), topo.len() as u64);
        exp.set_counter(format!("{key}.edges"), topo.edge_count() as u64);
        exp.set_counter(format!("{key}.max_degree"), max_deg as u64);
        exp.set_counter(format!("{key}.tree_height"), u64::from(tree.height()));
        exp.set_counter(format!("{key}.tree_covered"), tree.covered() as u64);
        println!(
            "{:>5}  {:>7}  {:>8}  {max_deg:>6}  {:>6}  {:>7}  {build_ms:>8.1}",
            size.label,
            topo.len(),
            topo.edge_count(),
            tree.height(),
            tree.covered(),
        );
    }

    // --- T18b: churn sweep, incremental repair vs full rebuild. ---
    let churn_rates = [("0.1%", 0.001f64), ("1%", 0.01f64)];
    println!(
        "\nT18b: churn sweep x tree maintenance, {reps} seeds per cell, {epochs} \
         churn epochs; costs counted after the initial build"
    );
    header(
        "bytes = repair beacons on the wire; waves = control-plane latency rounds",
        &[
            ("size", 5),
            ("churn", 6),
            ("mode", 12),
            ("bytes", 10),
            ("waves", 7),
            ("rebuilds", 8),
            ("repairs", 8),
        ],
    );
    for &size in &sizes {
        for (rate_label, rate) in churn_rates {
            let per_epoch = ((size.nodes() as f64 * rate).round() as usize).max(1);
            // Both arms per seed so the tentpole assertion compares within
            // one seed; rayon folds back in seed order.
            let per_seed: Vec<[ArmCost; 2]> = (0..reps)
                .into_par_iter()
                .map(|seed| {
                    let schedule = kill_schedule(size.nodes(), epochs, per_epoch, seed);
                    let full = run_arm(size, TreeMaintenance::Persistent, &schedule, seed);
                    let incr = run_arm(size, TreeMaintenance::Incremental, &schedule, seed);
                    // The tentpole acceptance assertions, per seed and per
                    // churn level: localized repair must strictly beat the
                    // full rebuild on wire bytes AND on repair latency.
                    assert!(
                        incr.repair_bytes < full.repair_bytes,
                        "{} churn {rate_label} seed {seed}: incremental {} repair bytes \
                         must beat full rebuild {}",
                        size.label,
                        incr.repair_bytes,
                        full.repair_bytes
                    );
                    assert!(
                        incr.repair_waves < full.repair_waves,
                        "{} churn {rate_label} seed {seed}: incremental {} repair waves \
                         must beat full rebuild {}",
                        size.label,
                        incr.repair_waves,
                        full.repair_waves
                    );
                    assert_eq!(incr.rebuilds, 0, "incremental must never re-flood");
                    assert_eq!(incr.repairs, epochs as u64, "every churn epoch repairs");
                    [full, incr]
                })
                .collect();
            for (m, mode) in [TreeMaintenance::Persistent, TreeMaintenance::Incremental]
                .into_iter()
                .enumerate()
            {
                let (mut bytes, mut waves, mut rebuilds, mut repairs) = (0u64, 0u64, 0u64, 0u64);
                for arms in &per_seed {
                    bytes += arms[m].repair_bytes;
                    waves += arms[m].repair_waves;
                    rebuilds += arms[m].rebuilds;
                    repairs += arms[m].repairs;
                }
                let n = reps as f64;
                let key = format!(
                    "churn.{}.{}.{}",
                    size.label,
                    rate_label.trim_end_matches('%').replace('.', "_"),
                    mode.name()
                );
                exp.set_scalar(format!("{key}.repair_bytes"), bytes as f64 / n);
                exp.set_scalar(format!("{key}.repair_waves"), waves as f64 / n);
                exp.set_counter(format!("{key}.rebuilds"), rebuilds);
                exp.set_counter(format!("{key}.repairs"), repairs);
                println!(
                    "{:>5}  {rate_label:>6}  {:>12}  {:>10}  {:>7.1}  {rebuilds:>8}  {repairs:>8}",
                    size.label,
                    mode.name(),
                    fmt(bytes as f64 / n),
                    waves as f64 / n,
                );
            }
            let full_bytes: u64 = per_seed.iter().map(|a| a[0].repair_bytes).sum();
            let incr_bytes: u64 = per_seed.iter().map(|a| a[1].repair_bytes).sum();
            let key = format!(
                "churn.{}.{}",
                size.label,
                rate_label.trim_end_matches('%').replace('.', "_")
            );
            exp.set_scalar(
                format!("{key}.byte_ratio"),
                incr_bytes as f64 / full_bytes.max(1) as f64,
            );
        }
    }
    println!(
        "shape to check: the full-rebuild arm re-floods every sensor whenever a \
         carried node dies, so its repair bytes scale with n and its latency with \
         tree height x epochs; the incremental arm pays only for re-parented \
         nodes and one or two wavefronts per churn epoch — asserted strictly \
         cheaper on both axes for every seed at every churn level (byte_ratio \
         is the headline compression)."
    );

    // --- T18c: indexed matcher vs linear scan at scale. ---
    let n_services = exp.scale(20_000usize, 4_000);
    let onto = Ontology::pervasive_grid();
    let mut rng = StdRng::seed_from_u64(42);
    let mut reg = Registry::new();
    let now = SimTime::from_secs(300);
    for (i, desc) in mixed_corpus(&onto, n_services, &mut rng)
        .into_iter()
        .enumerate()
    {
        // A fifth of the corpus holds an expired lease: the indexed path
        // must apply the same liveness filter the linear scan does.
        if i % 5 == 0 {
            reg.register_leased(desc, SimTime::from_secs(100));
        } else {
            reg.register(desc);
        }
    }
    println!("\nT18c: class-indexed matcher vs linear scan, {n_services} services");
    header(
        "identical hits asserted bit-for-bit; candidates = services consulted",
        &[
            ("request class", 20),
            ("cand", 7),
            ("of", 7),
            ("hits", 6),
            ("idx ms", 7),
            ("lin ms", 7),
        ],
    );
    let request_classes = [
        "PrinterService",
        "TemperatureSensor",
        "SensorService",
        "PdeSolverService",
        "Service",
    ];
    for class_name in request_classes {
        let class = onto.class(class_name).unwrap();
        let req =
            ServiceRequest::for_class(class).with_preference(Preference::Minimize("cost".into()));
        let start = Instant::now();
        let hits_idx = reg.query_at(&onto, &req, now);
        let idx_ms = start.elapsed().as_secs_f64() * 1e3;
        let start = Instant::now();
        let hits_lin = reg.query_linear_at(&onto, &req, now);
        let lin_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(hits_idx.len(), hits_lin.len(), "{class_name}: hit count");
        for (a, b) in hits_idx.iter().zip(&hits_lin) {
            assert_eq!(a.id, b.id, "{class_name}: hit order");
            assert_eq!(
                a.m.score.to_bits(),
                b.m.score.to_bits(),
                "{class_name}: score of {:?}",
                a.id
            );
        }
        let cand = reg.candidates(&onto, class).len();
        assert!(cand <= reg.len());
        let key = format!("matcher.{}", pg_bench::key_part(class_name));
        exp.set_counter(format!("{key}.candidates"), cand as u64);
        exp.set_counter(format!("{key}.hits"), hits_idx.len() as u64);
        exp.set_scalar(
            format!("{key}.candidate_fraction"),
            cand as f64 / reg.len() as f64,
        );
        println!(
            "{class_name:>20}  {cand:>7}  {:>7}  {:>6}  {idx_ms:>7.2}  {lin_ms:>7.2}",
            reg.len(),
            hits_idx.len(),
        );
    }
    exp.set_counter("matcher.registry_size", reg.len() as u64);
    println!(
        "shape to check: specific classes consult only their ancestor/descendant \
         buckets (a few percent of the registry) yet return exactly the hits the \
         full scan finds; the root-class row is the control — its candidate set \
         is the whole registry by construction."
    );

    exp.finish()
}
