//! **A1** — ablation of the adaptive decision maker's design choices
//! (DESIGN.md §3): distance-weighted estimator blending and safe
//! exploration, on the T3 query stream.
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_a1_ablation [-- --smoke]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_bench::{fmt, header, standard_world, Experiment};
use pg_partition::decide::{DecisionConfig, DecisionMaker, Policy};
use pg_partition::exec::{execute_once, ExecContext};
use pg_partition::features::QueryFeatures;
use pg_partition::model::CostWeights;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::process::ExitCode;

const N: usize = 100;

fn stream(seed: u64, len: usize) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| match rng.gen_range(0..10) {
            0..=3 => "SELECT AVG(temp) FROM sensors".to_string(),
            4..=5 => format!(
                "SELECT temp FROM sensors WHERE sensor_id = {}",
                rng.gen_range(1..N as u32)
            ),
            6..=7 => "SELECT MAX(temp) FROM sensors WHERE region(room210)".to_string(),
            _ => "SELECT temperature_distribution() FROM sensors WHERE region(room210)".to_string(),
        })
        .collect()
}

fn run(blend: bool, safe: bool, epsilon: f64, seed: u64, len: usize) -> f64 {
    let weights = CostWeights::default();
    let mut w = standard_world(N, seed);
    let mut dm = DecisionMaker::with_config(
        Policy::Adaptive,
        seed,
        DecisionConfig::builder()
            .blend(blend)
            .safe_explore(safe)
            .epsilon(epsilon)
            .build(),
    );
    let mut total = 0.0;
    for (i, text) in stream(seed, len).iter().enumerate() {
        let query = pg_query::parse(text).expect("valid query");
        let features = {
            let ctx = ExecContext {
                net: &mut w.net,
                grid: &w.grid,
                field: &w.field,
                regions: &w.regions,
                now: w.now,
            };
            match QueryFeatures::extract(&ctx, &query) {
                Some(f) => f,
                None => continue,
            }
        };
        let Ok(model) = dm.choose(&w.net, &w.grid, &query, &features) else {
            continue;
        };
        let mut ctx = ExecContext {
            net: &mut w.net,
            grid: &w.grid,
            field: &w.field,
            regions: &w.regions,
            now: w.now,
        };
        let mut rng = StdRng::seed_from_u64(i as u64);
        let Ok(out) = execute_once(&mut ctx, &query, model, &mut rng) else {
            continue;
        };
        total += weights.scalar(&out.cost);
        dm.record(&w.net, &w.grid, features, model, out.cost);
    }
    total
}

fn main() -> ExitCode {
    let mut exp = Experiment::from_args("exp_a1_ablation");
    let stream_len: usize = exp.scale(400, 100);
    let seeds: u64 = exp.scale(3, 2);
    exp.set_meta("stream_len", stream_len.to_string());
    exp.set_meta("seeds", seeds.to_string());
    println!("A1: decision-maker ablation on a {stream_len}-query stream ({N} sensors)");
    header(
        &format!("mean total scalar cost over {seeds} seeds"),
        &[("variant", 38), ("total cost", 11), ("vs full", 9)],
    );
    let mean = |blend, safe, eps| {
        (0..seeds)
            .map(|s| run(blend, safe, eps, 11 + s, stream_len))
            .sum::<f64>()
            / seeds as f64
    };
    let full = mean(true, true, 0.1);
    let rows = [
        ("full", "full (blend + safe eps-greedy)", full),
        ("no_blend", "no estimator blending (pure k-NN)", {
            mean(false, true, 0.1)
        }),
        ("no_safe", "no safe exploration (uniform eps)", {
            mean(true, false, 0.1)
        }),
        ("neither", "neither", mean(false, false, 0.1)),
        ("eps0", "no exploration at all (eps = 0)", {
            mean(true, true, 0.0)
        }),
        ("eps0.5", "heavy exploration (eps = 0.5)", {
            mean(true, true, 0.5)
        }),
    ];
    for (key, name, cost) in rows {
        exp.set_scalar(format!("{key}.total_cost"), cost);
        exp.set_scalar(format!("{key}.vs_full"), (cost - full) / full);
        println!(
            "{name:>38}  {:>11}  {:>9}",
            fmt(cost),
            format!("{:+.0}%", 100.0 * (cost - full) / full)
        );
    }
    println!(
        "\nshape to check: removing blending costs the most (the first \
         Complex query is placed by extrapolated k-NN and lands in-network); \
         removing safe exploration costs every exploratory complex query; \
         eps = 0 is competitive here because the estimator's ranking is \
         already correct for this workload — exploration buys robustness, \
         not raw cost."
    );
    exp.finish()
}
