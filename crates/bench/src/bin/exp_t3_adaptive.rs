//! **T3** — the adaptive decision maker vs. static policies and the oracle
//! over a mixed query stream (§4's machine-learning proposal).
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_t3_adaptive [-- --smoke]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_bench::{fmt, header, key_part, standard_world, Experiment};
use pg_partition::decide::{oracle_choice, DecisionMaker, Policy};
use pg_partition::exec::{execute_once, ExecContext};
use pg_partition::features::QueryFeatures;
use pg_partition::model::{CostWeights, SolutionModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::process::ExitCode;

const N: usize = 100;

fn stream(seed: u64, len: usize) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| match rng.gen_range(0..10) {
            // Continuous queries are deliberately absent: their idle-energy
            // cost is identical under every placement and would wash out
            // the comparison (T12 studies them separately).
            0..=3 => "SELECT AVG(temp) FROM sensors".to_string(),
            4..=5 => format!(
                "SELECT temp FROM sensors WHERE sensor_id = {}",
                rng.gen_range(1..N as u32)
            ),
            6..=7 => "SELECT MAX(temp) FROM sensors WHERE region(room210)".to_string(),
            _ => "SELECT temperature_distribution() FROM sensors WHERE region(room210)".to_string(),
        })
        .collect()
}

/// Run the stream under one policy; returns (total scalar cost, oracle
/// family agreement over the last `judge_window` decisions, mean regret
/// ratio — scalar(chosen)/scalar(oracle) — over the same window).
fn run(
    policy: Policy,
    report_agreement: bool,
    stream_len: usize,
    judge_window: usize,
) -> (f64, f64, f64) {
    let weights = CostWeights::default();
    let mut w = standard_world(N, 7);
    let mut dm = DecisionMaker::new(policy, 7);
    let mut total = 0.0;
    let mut agree = 0u32;
    let mut judged = 0u32;
    let mut regret_sum = 0.0;
    let mut oracle_cost_pending: Option<f64> = None;
    for (i, text) in stream(7, stream_len).iter().enumerate() {
        let query = pg_query::parse(text).expect("valid query");
        let features = {
            let ctx = ExecContext {
                net: &mut w.net,
                grid: &w.grid,
                field: &w.field,
                regions: &w.regions,
                now: w.now,
            };
            // A randomly drawn sensor id can land on the base station —
            // such queries are invalid and skipped under every policy.
            match QueryFeatures::extract(&ctx, &query) {
                Some(f) => f,
                None => continue,
            }
        };
        let Ok(model) = dm.choose(&w.net, &w.grid, &query, &features) else {
            continue;
        };
        // Judge the decision against the clairvoyant oracle (on a clone) for
        // the tail of the stream.
        if report_agreement && i >= stream_len - judge_window {
            if let Some((best, best_cost)) = oracle_choice(
                &w.net, &w.grid, &w.field, &w.regions, w.now, &query, &weights, i as u64,
            ) {
                judged += 1;
                if best.family() == model.family() {
                    agree += 1;
                }
                oracle_cost_pending = Some(weights.scalar(&best_cost));
            }
        }
        let mut ctx = ExecContext {
            net: &mut w.net,
            grid: &w.grid,
            field: &w.field,
            regions: &w.regions,
            now: w.now,
        };
        let mut rng = StdRng::seed_from_u64(i as u64);
        let Ok(out) = execute_once(&mut ctx, &query, model, &mut rng) else {
            continue;
        };
        total += weights.scalar(&out.cost);
        if let Some(oracle) = oracle_cost_pending.take() {
            regret_sum += weights.scalar(&out.cost) / oracle.max(1e-12);
        }
        dm.record(&w.net, &w.grid, features, model, out.cost);
    }
    let agreement = if judged == 0 {
        f64::NAN
    } else {
        agree as f64 / judged as f64
    };
    let regret = if judged == 0 {
        f64::NAN
    } else {
        regret_sum / judged as f64
    };
    (total, agreement, regret)
}

fn main() -> ExitCode {
    let mut exp = Experiment::from_args("exp_t3_adaptive");
    let stream_len: usize = exp.scale(600, 150);
    let judge_window: usize = exp.scale(100, 50);
    exp.set_meta("stream_len", stream_len.to_string());
    exp.set_meta("judge_window", judge_window.to_string());
    println!("T3: {stream_len}-query mixed stream on a {N}-sensor network");
    header(
        "policy comparison (scalar cost = energy/0.1J + 0.5 x time/10s)",
        &[("policy", 26), ("total cost", 12), ("vs adaptive", 12)],
    );
    let (adaptive, agreement, regret) = run(Policy::Adaptive, true, stream_len, judge_window);
    let rows: Vec<(String, f64)> = vec![
        ("adaptive (k-NN + eps)".into(), adaptive),
        (
            "random".into(),
            run(Policy::Random, false, stream_len, judge_window).0,
        ),
        (
            "static: in-network tree".into(),
            run(
                Policy::Static(SolutionModel::InNetworkTree),
                false,
                stream_len,
                judge_window,
            )
            .0,
        ),
        (
            "static: cluster".into(),
            run(
                Policy::Static(SolutionModel::InNetworkCluster { heads: 5 }),
                false,
                stream_len,
                judge_window,
            )
            .0,
        ),
        (
            "static: base station".into(),
            run(
                Policy::Static(SolutionModel::BaseStation),
                false,
                stream_len,
                judge_window,
            )
            .0,
        ),
        (
            "static: grid offload".into(),
            run(
                Policy::Static(SolutionModel::GridOffload {
                    reduction_cell_m: 0.0,
                }),
                false,
                stream_len,
                judge_window,
            )
            .0,
        ),
    ];
    for (name, cost) in &rows {
        exp.set_scalar(format!("{}.total_cost", key_part(name)), *cost);
        println!(
            "{name:>26}  {:>12}  {:>12}",
            fmt(*cost),
            format!("{:+.1}%", 100.0 * (cost - adaptive) / adaptive)
        );
    }
    // NaN when no decision could be judged (never in practice; a NaN would
    // be rejected by the report emitter, so skip rather than fail).
    if agreement.is_finite() {
        exp.set_scalar("oracle.family_agreement", agreement);
    }
    if regret.is_finite() {
        exp.set_scalar("oracle.mean_regret_ratio", regret);
    }
    println!(
        "\nfinal-{judge_window}-decision oracle check: family agreement {:.0}%, mean \
         regret ratio {:.2}x (chosen cost / clairvoyant cost; near-tied \
         families flip agreement without costing regret)",
        agreement * 100.0,
        regret
    );
    println!(
        "shape to check: adaptive beats every static policy and random by a \
         wide margin; the late-stream regret ratio is close to 1.0 (the \
         learner has converged to near-oracle placements)."
    );
    exp.finish()
}
