//! **T5** — composition fault tolerance: success rate and utility under
//! rising service churn, centralized vs. distributed-reactive, with and
//! without replicas (§3's fault-tolerance and graceful-degradation claims).
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_t5_faults [-- --smoke]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_bench::{header, key_part, Experiment};
use pg_compose::htn::MethodLibrary;
use pg_compose::manager::{execute, ManagerKind, ServiceWorld};
use pg_discovery::description::ServiceDescription;
use pg_discovery::ontology::Ontology;
use pg_net::churn::{ChurnProcess, ChurnSchedule};
use pg_sim::rng::RngStreams;
use pg_sim::SimTime;
use std::process::ExitCode;

fn world(onto: &Ontology, replicas: usize, availability: f64, seed: u64) -> ServiceWorld {
    let streams = RngStreams::new(seed);
    let mut rng = streams.fork("churn");
    let horizon = SimTime::from_secs(200_000);
    let mut w = ServiceWorld::new();
    for class in [
        "TemperatureSensor",
        "MapService",
        "WeatherService",
        "PdeSolverService",
        "DisplayService",
    ] {
        for i in 0..replicas {
            let sched = if availability >= 1.0 {
                ChurnSchedule::always_up()
            } else {
                // mean_up/(mean_up+mean_down) = availability, cycle 120 s.
                let up = 120.0 * availability;
                ChurnProcess::new(up.max(1.0), (120.0 - up).max(1.0))
                    .unwrap()
                    .schedule(horizon, &mut rng)
            };
            w.add_service(
                ServiceDescription::new(format!("{class}-{i}"), onto.class(class).unwrap()),
                sched,
            );
        }
    }
    w
}

fn measure(
    w: &ServiceWorld,
    onto: &Ontology,
    kind: ManagerKind,
    runs: u64,
) -> (f64, f64, f64, f64) {
    let plan = MethodLibrary::pervasive_grid()
        .decompose("temperature-distribution")
        .unwrap();
    let mut ok = 0u64;
    let mut utility = 0.0;
    let mut rebinds = 0u64;
    let mut latency = 0.0;
    for i in 0..runs {
        let r = execute(w, onto, &plan, kind, SimTime::from_secs(i * 900));
        if r.success {
            ok += 1;
        }
        utility += r.utility;
        rebinds += r.rebinds as u64;
        latency += r.latency.as_secs_f64();
    }
    (
        ok as f64 / runs as f64,
        utility / runs as f64,
        rebinds as f64 / runs as f64,
        latency / runs as f64,
    )
}

fn main() -> ExitCode {
    let mut exp = Experiment::from_args("exp_t5_faults");
    let runs: u64 = exp.scale(40, 10);
    exp.set_meta("runs", runs.to_string());
    let onto = Ontology::pervasive_grid();
    println!("T5: composition under churn ({runs} runs per cell, 5-step plan)");
    header(
        "success rate / mean utility / rebinds per run",
        &[
            ("availability", 12),
            ("replicas", 8),
            ("manager", 22),
            ("success", 8),
            ("utility", 8),
            ("rebinds", 8),
        ],
    );
    for &avail in &[1.0, 0.9, 0.75, 0.5] {
        for &replicas in &[1usize, 3] {
            for kind in [ManagerKind::Centralized, ManagerKind::DistributedReactive] {
                let w = world(&onto, replicas, avail, 17);
                let (s, u, r, _) = measure(&w, &onto, kind, runs);
                let cell = format!("a{avail}.r{replicas}.{}", key_part(kind.name()));
                exp.set_scalar(format!("{cell}.success"), s);
                exp.set_scalar(format!("{cell}.utility"), u);
                exp.set_scalar(format!("{cell}.rebinds"), r);
                println!(
                    "{avail:>12.2}  {replicas:>8}  {:>22}  {s:>8.2}  {u:>8.2}  {r:>8.2}",
                    kind.name()
                );
            }
        }
        println!();
    }
    println!(
        "shape to check: success degrades gracefully (utility falls slower \
         than success); replication recovers most of the loss; the two \
         managers tie here because the center is up — T5b breaks that."
    );

    // --- T5b: the single point of failure. ---
    println!("\nT5b: center outage sensitivity (service availability fixed at 0.9, 3 replicas)");
    println!("(the centralized manager waits out center outages: the cost is latency)");
    header(
        "center availability sweep",
        &[
            ("center avail", 12),
            ("manager", 22),
            ("success", 8),
            ("latency s", 10),
        ],
    );
    for &center in &[1.0, 0.8, 0.5, 0.2] {
        for kind in [ManagerKind::Centralized, ManagerKind::DistributedReactive] {
            let mut w = world(&onto, 3, 0.9, 31);
            if center < 1.0 {
                let streams = RngStreams::new(31);
                let up: f64 = 300.0 * center;
                w.center_churn = ChurnProcess::new(up.max(1.0), (300.0 - up).max(1.0))
                    .unwrap()
                    .schedule(SimTime::from_secs(200_000), &mut streams.fork("center"));
            }
            let (s, _, _, lat) = measure(&w, &onto, kind, runs);
            let cell = format!("center{center}.{}", key_part(kind.name()));
            exp.set_scalar(format!("{cell}.success"), s);
            exp.set_scalar(format!("{cell}.latency_s"), lat);
            println!(
                "{center:>12.2}  {:>22}  {s:>8.2}  {:>10}",
                kind.name(),
                pg_bench::fmt(lat)
            );
        }
    }
    println!(
        "\nshape to check: the distributed manager's latency is flat across \
         the sweep; the centralized manager's latency blows up as its center \
         spends more time down (every stalled step waits for the center)."
    );
    exp.finish()
}
