//! **T1** — the §4 measurement matrix: computation, data transfer, energy
//! consumption, and response time for every query type × solution model.
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_t1_matrix [-- --smoke]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_bench::{fmt, header, key_part, standard_world, Experiment};
use pg_partition::exec::{execute_once, ExecContext};
use pg_partition::model::SolutionModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut exp = Experiment::from_args("exp_t1_matrix");
    let reps: u64 = exp.scale(10, 3);
    let n: usize = exp.scale(100, 64);
    exp.set_meta("reps", reps.to_string());
    exp.set_meta("n", n.to_string());
    let queries = [
        ("simple", "SELECT temp FROM sensors WHERE sensor_id = 17"),
        ("aggregate", "SELECT AVG(temp) FROM sensors"),
        (
            "complex",
            "SELECT temperature_distribution() FROM sensors WHERE region(room210)",
        ),
        (
            "continuous",
            "SELECT AVG(temp) FROM sensors EPOCH DURATION 10 s",
        ),
    ];
    println!(
        "T1: cost matrix, {n}-sensor network, mean of {reps} seeds \
         (per-epoch costs for continuous)"
    );
    header(
        "query type x solution model",
        &[
            ("query", 10),
            ("model", 22),
            ("energy J", 10),
            ("time s", 10),
            ("bytes", 10),
            ("ops", 10),
            ("delivery", 8),
        ],
    );
    for (qname, qtext) in queries {
        let query = pg_query::parse(qtext).expect("valid query");
        for model in SolutionModel::candidates(n - 1) {
            let mut e = pg_sim::metrics::Summary::new();
            let mut t = pg_sim::metrics::Summary::new();
            let mut b = pg_sim::metrics::Summary::new();
            let mut o = pg_sim::metrics::Summary::new();
            let mut d = pg_sim::metrics::Summary::new();
            for seed in 0..reps {
                let mut w = standard_world(n, seed);
                let mut ctx = ExecContext {
                    net: &mut w.net,
                    grid: &w.grid,
                    field: &w.field,
                    regions: &w.regions,
                    now: w.now,
                };
                let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
                let out = execute_once(&mut ctx, &query, model, &mut rng)
                    .expect("standard world answers all archetypes");
                e.record(out.cost.energy_j);
                t.record(out.cost.time_s);
                b.record(out.cost.bytes);
                o.record(out.cost.ops);
                d.record(out.delivered_frac);
            }
            let cell = format!("{qname}.{}", key_part(&model.name()));
            exp.record_summary(format!("{cell}.energy_j"), &e);
            exp.record_summary(format!("{cell}.time_s"), &t);
            exp.record_summary(format!("{cell}.bytes"), &b);
            exp.record_summary(format!("{cell}.ops"), &o);
            exp.record_summary(format!("{cell}.delivered_frac"), &d);
            println!(
                "{:>10}  {:>22}  {:>10}  {:>10}  {:>10}  {:>10}  {:>8}",
                qname,
                model.name(),
                fmt(e.mean()),
                fmt(t.mean()),
                fmt(b.mean()),
                fmt(o.mean()),
                format!("{:.2}", d.mean()),
            );
        }
        println!();
    }
    println!(
        "shape to check: aggregates cheapest in-network (tree), simple reads \
         cheapest at the base station, complex queries orders of magnitude \
         cheaper on the grid than in-network, and grid offload pure overhead \
         for non-complex queries."
    );
    exp.finish()
}
