//! **T7** — scalability and churn: composition availability as services
//! come and go faster ("smartdust type environments", §3), and matcher
//! cost as the registry population grows.
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_t7_churn [-- --smoke]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_bench::{fmt, header, Experiment};
use pg_compose::htn::MethodLibrary;
use pg_compose::manager::{execute, ManagerKind, ServiceWorld};
use pg_discovery::corpus::mixed_corpus;
use pg_discovery::description::{ServiceDescription, ServiceRequest};
use pg_discovery::ontology::Ontology;
use pg_net::churn::ChurnProcess;
use pg_sim::rng::RngStreams;
use pg_sim::SimTime;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut exp = Experiment::from_args("exp_t7_churn");
    let runs: u64 = exp.scale(40, 10);
    exp.set_meta("runs", runs.to_string());
    let onto = Ontology::pervasive_grid();
    let plan = MethodLibrary::pervasive_grid()
        .decompose("temperature-distribution")
        .unwrap();

    // --- T7a: availability vs churn cycle time (availability fixed 0.75). ---
    println!("T7a: composite availability vs churn speed (availability 0.75, 3 replicas/role)");
    header(
        "distributed reactive manager",
        &[
            ("cycle s", 8),
            ("success", 8),
            ("utility", 8),
            ("rebinds", 8),
        ],
    );
    for cycle in [600.0f64, 120.0, 30.0, 8.0] {
        let streams = RngStreams::new(3);
        let mut rng = streams.fork("churn");
        let mut w = ServiceWorld::new();
        let horizon = SimTime::from_secs(200_000);
        for class in [
            "TemperatureSensor",
            "MapService",
            "WeatherService",
            "PdeSolverService",
            "DisplayService",
        ] {
            for i in 0..3 {
                w.add_service(
                    ServiceDescription::new(format!("{class}-{i}"), onto.class(class).unwrap()),
                    ChurnProcess::new(cycle * 0.75, cycle * 0.25)
                        .unwrap()
                        .schedule(horizon, &mut rng),
                );
            }
        }
        let mut ok = 0u64;
        let mut util = 0.0;
        let mut rebinds = 0u64;
        for i in 0..runs {
            let r = execute(
                &w,
                &onto,
                &plan,
                ManagerKind::DistributedReactive,
                SimTime::from_secs(i * 1_000),
            );
            if r.success {
                ok += 1;
            }
            util += r.utility;
            rebinds += r.rebinds as u64;
        }
        let cell = format!("cycle{cycle}");
        exp.set_scalar(format!("{cell}.success"), ok as f64 / runs as f64);
        exp.set_scalar(format!("{cell}.utility"), util / runs as f64);
        exp.set_scalar(format!("{cell}.rebinds"), rebinds as f64 / runs as f64);
        println!(
            "{cycle:>8}  {:>8.2}  {:>8.2}  {:>8.2}",
            ok as f64 / runs as f64,
            util / runs as f64,
            rebinds as f64 / runs as f64
        );
    }
    println!(
        "(fast churn relative to the 2 s step time breaks executions mid-step \
         even at the same long-run availability)"
    );

    // --- T7b: discovery scalability with registry size. ---
    // Wall clock stays on stdout; the report records the (deterministic)
    // per-composition hit totals.
    println!("\nT7b: composition-time discovery cost vs registry size");
    header(
        "one 5-role composition, wall clock",
        &[("services", 9), ("discovery us", 13)],
    );
    let registry_sizes: &[usize] = exp.scale(&[100, 1_000, 10_000], &[100, 1_000]);
    for &n in registry_sizes {
        let mut rng = StdRng::seed_from_u64(11);
        let corpus = mixed_corpus(&onto, n, &mut rng);
        let mut reg = pg_discovery::registry::Registry::new();
        for d in corpus {
            reg.register(d);
        }
        // Count the hits of the five role queries once (deterministic).
        let mut role_hits = 0u64;
        for step in &plan.steps {
            let class = onto.class(&step.role.class).unwrap();
            let req = ServiceRequest::for_class(class);
            role_hits += reg.query(&onto, &req).len() as u64;
        }
        exp.set_counter(format!("registry.n{n}.role_hits"), role_hits);
        // Time the five role queries of the plan.
        let t0 = Instant::now();
        const ROUNDS: u32 = 20;
        for _ in 0..ROUNDS {
            for step in &plan.steps {
                let class = onto.class(&step.role.class).unwrap();
                let req = ServiceRequest::for_class(class);
                let _ = reg.query(&onto, &req);
            }
        }
        let us = t0.elapsed().as_secs_f64() * 1e6 / ROUNDS as f64;
        println!("{n:>9}  {:>13}", fmt(us));
    }
    println!(
        "\nshape to check: availability degrades with churn *speed* at fixed \
         long-run availability; discovery cost scales linearly with registry \
         size (each composition pays 5 matcher passes)."
    );
    exp.finish()
}
