//! **T4** — semantic vs. syntactic discovery: expressiveness
//! (precision/recall on the paper's printer queries), match latency vs.
//! registry size, and federation traffic vs. a central registry.
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_t4_discovery [-- --smoke]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_bench::{fmt, header, Experiment};
use pg_discovery::baselines::jini_match;
use pg_discovery::broker::BrokerFederation;
use pg_discovery::corpus::{mixed_corpus, precision_recall, printer_corpus};
use pg_discovery::description::{Constraint, Preference, ServiceRequest, Value};
use pg_discovery::matcher;
use pg_discovery::ontology::Ontology;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut exp = Experiment::from_args("exp_t4_discovery");
    let onto = Ontology::pervasive_grid();
    let printer_n: usize = exp.scale(500, 200);
    let corpora: u64 = exp.scale(5, 2);
    exp.set_meta("printer_corpus", printer_n.to_string());
    exp.set_meta("corpora", corpora.to_string());

    // --- Part 1: expressiveness on the paper's own printer queries. ---
    println!("T4a: precision/recall on 'color printing under a cost cap' ({printer_n} printers)");
    header(
        &format!("mean of {corpora} corpora"),
        &[
            ("system", 24),
            ("precision", 10),
            ("recall", 10),
            ("ranked", 7),
        ],
    );
    let mut sem_p = pg_sim::metrics::Summary::new();
    let mut jini_p = pg_sim::metrics::Summary::new();
    for seed in 0..corpora {
        let mut rng = StdRng::seed_from_u64(seed);
        let corpus = printer_corpus(&onto, printer_n, &mut rng);
        let printer = onto.class("PrinterService").unwrap();
        let req = ServiceRequest::for_class(printer)
            .with_constraint(Constraint::Eq("color".into(), Value::Bool(true)))
            .with_constraint(Constraint::Le("cost_per_page".into(), corpus.cost_cap));
        let hits: Vec<usize> = matcher::rank(&onto, &req, &corpus.services)
            .into_iter()
            .map(|m| m.index)
            .collect();
        sem_p.record(precision_recall(&hits, &corpus.relevant).0);
        let jini = jini_match(&corpus.services, "printIt");
        jini_p.record(precision_recall(&jini, &corpus.relevant).0);
    }
    exp.record_summary("printer.semantic_precision", &sem_p);
    exp.record_summary("printer.jini_precision", &jini_p);
    println!(
        "{:>24}  {:>10}  {:>10}  {:>7}",
        "semantic (this work)",
        format!("{:.2}", sem_p.mean()),
        "1.00",
        "yes"
    );
    println!(
        "{:>24}  {:>10}  {:>10}  {:>7}",
        "Jini interface match",
        format!("{:.2}", jini_p.mean()),
        "1.00",
        "no"
    );
    println!(
        "{:>24}  {:>10}  {:>10}  {:>7}",
        "Bluetooth SDP (UUID)", "n/a", "n/a", "no"
    );
    println!("(SDP cannot express the query at all: UUID equality only)");

    // --- Part 2: match latency vs registry size. ---
    // Wall-clock latency stays on stdout only; the report records the
    // (deterministic) hit counts per registry size.
    println!("\nT4b: semantic match latency vs registry size (wall clock, this machine)");
    header(
        "single query, ranked result",
        &[("services", 9), ("latency us", 11), ("hits", 7)],
    );
    let solver = onto.class("SolverService").unwrap();
    let registry_sizes: &[usize] = exp.scale(&[100, 1_000, 10_000, 50_000], &[100, 1_000]);
    for &n in registry_sizes {
        let mut rng = StdRng::seed_from_u64(99);
        let corpus = mixed_corpus(&onto, n, &mut rng);
        let req =
            ServiceRequest::for_class(solver).with_preference(Preference::Minimize("cost".into()));
        // Warm + time.
        let _ = matcher::rank(&onto, &req, &corpus);
        let t0 = Instant::now();
        const ROUNDS: u32 = 10;
        let mut hits = 0;
        for _ in 0..ROUNDS {
            hits = matcher::rank(&onto, &req, &corpus).len();
        }
        let us = t0.elapsed().as_secs_f64() * 1e6 / ROUNDS as f64;
        exp.set_counter(format!("latency_sweep.n{n}.hits"), hits as u64);
        println!("{n:>9}  {:>11}  {hits:>7}", fmt(us));
    }

    // --- Part 3: federation vs central registry. ---
    let fed_n: usize = exp.scale(240, 120);
    println!("\nT4c: federated brokers vs one central registry ({fed_n} services)");
    header(
        "query entering at broker 0",
        &[
            ("deployment", 16),
            ("hops", 5),
            ("brokers", 8),
            ("msgs", 6),
            ("latency ms", 11),
            ("hits", 5),
        ],
    );
    let mut rng = StdRng::seed_from_u64(5);
    let corpus = mixed_corpus(&onto, fed_n, &mut rng);
    let req = ServiceRequest::for_class(solver);
    // Central.
    let mut central = pg_discovery::registry::Registry::new();
    for d in &corpus {
        central.register(d.clone());
    }
    let hits = central.query(&onto, &req).len();
    exp.set_counter("federation.central.hits", hits as u64);
    println!(
        "{:>16}  {:>5}  {:>8}  {:>6}  {:>11}  {hits:>5}",
        "central", "-", 1, 0, "0",
    );
    // Federated ring of 8.
    let mut fed = BrokerFederation::new(8);
    for i in 0..8 {
        fed.link(i, (i + 1) % 8);
    }
    for (i, d) in corpus.iter().enumerate() {
        fed.register_at(i % 8, d.clone());
    }
    for hops in [1u32, 2, 4] {
        let (hits, stats) = fed.query(&onto, 0, &req, hops);
        exp.set_counter(
            format!("federation.hops{hops}.brokers_visited"),
            stats.brokers_visited as u64,
        );
        exp.set_counter(format!("federation.hops{hops}.messages"), stats.messages);
        exp.set_scalar(
            format!("federation.hops{hops}.latency_ms"),
            stats.latency.as_secs_f64() * 1e3,
        );
        exp.set_counter(format!("federation.hops{hops}.hits"), hits.len() as u64);
        println!(
            "{:>16}  {hops:>5}  {:>8}  {:>6}  {:>11}  {:>5}",
            "federated (ring)",
            stats.brokers_visited,
            stats.messages,
            fmt(stats.latency.as_secs_f64() * 1e3),
            hits.len()
        );
    }
    println!(
        "\nshape to check: semantic precision 1.0 vs Jini ~(base rate); match \
         latency linear in registry size; federation coverage grows with hop \
         budget at the price of overlay messages and latency."
    );
    exp.finish()
}
