//! **T9** — the Complex-query substrate: PDE solver comparison, rayon
//! thread scaling, and the accuracy-vs-data-reduction trade §4 describes
//! ("instead of sending each sensor reading to the grid, one might only
//! send the average reading from a region").
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_t9_pde [-- --smoke]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_bench::{fmt, header, standard_world, Experiment};
use pg_grid::pde::{Problem, Solver};
use pg_grid::reduction;
use pg_net::geom::Point;
use pg_partition::exec::{execute_once, ExecContext};
use pg_partition::model::SolutionModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;
use std::time::Instant;

fn make_problem(n: usize) -> Problem {
    let mut p = Problem::new(n, n, n, Point::flat(0.0, 0.0), 1.0, 20.0);
    // A hot spot and a cold spot pin the interior.
    let c = (n / 2) as f64;
    p.add_constraint(&Point::new(c, c, c), 400.0);
    p.add_constraint(&Point::new(c / 2.0, c / 2.0, c), 5.0);
    p
}

fn main() -> ExitCode {
    let mut exp = Experiment::from_args("exp_t9_pde");

    // --- T9a: solver comparison. ---
    // Wall clock stays on stdout; the report records iteration counts and
    // residuals, which are deterministic.
    println!("T9a: solver comparison on the reconstruction problem (tol 1e-6)");
    header(
        "wall clock on this machine, all cores",
        &[
            ("grid", 8),
            ("solver", 8),
            ("iters", 7),
            ("time ms", 9),
            ("residual", 10),
        ],
    );
    let grids: &[usize] = exp.scale(&[24, 32, 48], &[16, 24]);
    for &n in grids {
        let p = make_problem(n);
        for solver in [
            Solver::Jacobi,
            Solver::RedBlackGaussSeidel,
            Solver::Sor { omega_x100: 185 },
            Solver::ConjugateGradient,
        ] {
            let t0 = Instant::now();
            let (_, stats) = p.solve(solver, 1e-6, 20_000);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            let cell = format!("solver.n{n}.{}", pg_bench::key_part(solver.name()));
            exp.set_counter(format!("{cell}.iterations"), stats.iterations as u64);
            exp.set_scalar(format!("{cell}.residual"), stats.residual);
            println!(
                "{:>8}  {:>8}  {:>7}  {:>9}  {:>10}",
                format!("{n}^3"),
                solver.name(),
                stats.iterations,
                fmt(ms),
                fmt(stats.residual),
            );
        }
        println!();
    }

    // --- T9b: rayon thread scaling (wall clock only; not in the report). ---
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "T9b: CG thread scaling (48^3, tol 1e-6) — this machine exposes {cores} core(s); \
         speedup beyond that is impossible and oversubscription costs overhead"
    );
    header(
        "rayon pool size sweep",
        &[("threads", 8), ("time ms", 9), ("speedup", 8)],
    );
    let scaling_n: usize = exp.scale(48, 24);
    let threads_sweep: &[usize] = exp.scale(&[1, 2, 4, 8], &[1, 2]);
    let p = make_problem(scaling_n);
    let mut base_ms = 0.0;
    for &threads in threads_sweep {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        let t0 = Instant::now();
        pool.install(|| {
            let _ = p.solve(Solver::ConjugateGradient, 1e-6, 20_000);
        });
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        if threads == 1 {
            base_ms = ms;
        }
        println!(
            "{threads:>8}  {:>9}  {:>8}",
            fmt(ms),
            format!("{:.2}x", base_ms / ms)
        );
    }

    // --- T9c: accuracy vs region-averaging reduction. ---
    let reps: u64 = exp.scale(5, 2);
    let arena: usize = exp.scale(200, 100);
    exp.set_meta("reps", reps.to_string());
    exp.set_meta("arena_n", arena.to_string());
    println!("\nT9c: accuracy vs data reduction for the grid-offloaded Complex query");
    header(
        &format!(
            "{arena}-sensor arena, mean of {reps} seeds (backhaul B = bytes shipped to the grid)"
        ),
        &[
            ("cell m", 7),
            ("readings", 9),
            ("backhaul B", 11),
            ("rel RMSE", 9),
        ],
    );
    let cells: &[f64] = exp.scale(&[0.0, 10.0, 20.0, 40.0, 80.0], &[0.0, 40.0]);
    for &cell in cells {
        let mut bytes = 0.0;
        let mut err = 0.0;
        let mut count_readings = 0.0;
        for seed in 0..reps {
            let mut w = standard_world(arena, seed);
            let query = pg_query::parse("SELECT temperature_distribution() FROM sensors")
                .expect("valid query");
            let mut ctx = ExecContext {
                net: &mut w.net,
                grid: &w.grid,
                field: &w.field,
                regions: &w.regions,
                now: w.now,
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let out = execute_once(
                &mut ctx,
                &query,
                SolutionModel::GridOffload {
                    reduction_cell_m: cell,
                },
                &mut rng,
            )
            .expect("standard world");
            err += out.accuracy_err.unwrap_or(f64::NAN) / reps as f64;
            // Post-reduction constraint count and backhaul payload,
            // computed analytically over the deployment positions.
            let readings: Vec<(Point, f64)> = (0..arena - 1)
                .map(|i| {
                    (
                        w.net
                            .topology()
                            .position(pg_net::topology::NodeId(i as u32)),
                        0.0,
                    )
                })
                .collect();
            let reduced = reduction::reduce_readings(&readings, cell).len();
            count_readings += reduced as f64 / reps as f64;
            bytes += reduction::wire_bytes(reduced) as f64 / reps as f64;
        }
        let key = format!("reduction.cell{cell}");
        exp.set_scalar(format!("{key}.readings"), count_readings);
        exp.set_scalar(format!("{key}.backhaul_bytes"), bytes);
        if err.is_finite() {
            exp.set_scalar(format!("{key}.rel_rmse"), err);
        }
        println!(
            "{cell:>7}  {:>9}  {:>11}  {:>9}",
            fmt(count_readings),
            fmt(bytes),
            format!("{err:.4}"),
        );
    }
    println!(
        "\nshape to check: CG converges in far fewer iterations than Jacobi \
         (RBGS in between); thread scaling tracks the physical core count \
         printed above (flat on a 1-core box, ~linear to core count on real \
         hardware); coarser reduction cells cut bytes while relative RMSE \
         climbs — the paper's accuracy knob."
    );
    exp.finish()
}
