//! **F1** — Figure 1, the General Scenario, end to end: handheld → base
//! station → sensor network + grid, with the composition front half.
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_f1_scenario
//! ```

use pg_bench::header;
use pg_core::FireScenario;

fn main() {
    println!("F1: the Figure-1 fire-response scenario (3 floors x 8x8 sensors = 192)");
    let mut scenario = FireScenario::new(3, 8, 2003);
    println!(
        "composition plan '{}': {} steps, critical path {}",
        scenario.plan.task,
        scenario.plan.len(),
        scenario.plan.critical_path_len()
    );
    let report = scenario.respond();
    println!(
        "composition phase: success={} utility={:.2} latency={} rebinds={}",
        report.composition.success,
        report.composition.utility,
        report.composition.latency,
        report.composition.rebinds
    );
    header(
        "query phase (the four §4 archetypes)",
        &[
            ("query kind", 11),
            ("model chosen", 22),
            ("value", 9),
            ("energy J", 10),
            ("time s", 9),
            ("delivery", 8),
        ],
    );
    for (_, resp) in &report.queries {
        let r = resp.as_ref().expect("scenario queries answered");
        println!(
            "{:>11}  {:>22}  {:>9}  {:>10}  {:>9}  {:>8}",
            r.kind.name(),
            r.model.name(),
            r.value.map_or("-".into(), |v| format!("{v:.1}")),
            pg_bench::fmt(r.cost.energy_j),
            pg_bench::fmt(r.cost.time_s),
            format!("{:.2}", r.delivered_frac),
        );
    }
    println!(
        "\nscenario totals: {:.4} J sensor energy, {} sensors alive",
        report.energy_j, report.alive
    );
    println!(
        "shape to check: every archetype answered; the complex query's value \
         (reconstructed peak) is in the fire regime (>150 C); composition \
         succeeds with utility 1.0 or degrades only on optional steps."
    );
}
