//! **F1** — Figure 1, the General Scenario, end to end: handheld → base
//! station → sensor network + grid, with the composition front half.
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_f1_scenario [-- --smoke]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_bench::{header, key_part, Experiment};
use pg_core::FireScenario;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut exp = Experiment::from_args("exp_f1_scenario");
    let (floors, side) = exp.scale((3usize, 8usize), (2, 6));
    exp.set_meta("floors", floors.to_string());
    exp.set_meta("side", side.to_string());
    println!(
        "F1: the Figure-1 fire-response scenario ({floors} floors x {side}x{side} sensors = {})",
        floors * side * side
    );
    let mut scenario = FireScenario::new(floors, side, 2003);
    println!(
        "composition plan '{}': {} steps, critical path {}",
        scenario.plan.task,
        scenario.plan.len(),
        scenario.plan.critical_path_len()
    );
    exp.set_counter("plan.steps", scenario.plan.len() as u64);
    exp.set_counter(
        "plan.critical_path",
        scenario.plan.critical_path_len() as u64,
    );
    let report = scenario.respond();
    println!(
        "composition phase: success={} utility={:.2} latency={} rebinds={}",
        report.composition.success,
        report.composition.utility,
        report.composition.latency,
        report.composition.rebinds
    );
    exp.set_counter("composition.success", report.composition.success as u64);
    exp.set_scalar("composition.utility", report.composition.utility);
    exp.set_scalar(
        "composition.latency_s",
        report.composition.latency.as_secs_f64(),
    );
    exp.set_counter("composition.rebinds", report.composition.rebinds as u64);
    header(
        "query phase (the four §4 archetypes)",
        &[
            ("query kind", 11),
            ("model chosen", 22),
            ("value", 9),
            ("energy J", 10),
            ("time s", 9),
            ("delivery", 8),
        ],
    );
    for (_, resp) in &report.queries {
        let r = resp.as_ref().expect("scenario queries answered");
        let cell = key_part(r.kind.name());
        exp.set_meta(format!("{cell}.model"), r.model.name());
        exp.set_scalar(format!("{cell}.energy_j"), r.cost.energy_j);
        exp.set_scalar(format!("{cell}.time_s"), r.cost.time_s);
        exp.set_scalar(format!("{cell}.delivered_frac"), r.delivered_frac);
        if let Some(v) = r.value {
            exp.set_scalar(format!("{cell}.value"), v);
        }
        println!(
            "{:>11}  {:>22}  {:>9}  {:>10}  {:>9}  {:>8}",
            r.kind.name(),
            r.model.name(),
            r.value.map_or("-".into(), |v| format!("{v:.1}")),
            pg_bench::fmt(r.cost.energy_j),
            pg_bench::fmt(r.cost.time_s),
            format!("{:.2}", r.delivered_frac),
        );
    }
    println!(
        "\nscenario totals: {:.4} J sensor energy, {} sensors alive",
        report.energy_j, report.alive
    );
    exp.set_scalar("totals.energy_j", report.energy_j);
    exp.set_counter("totals.alive", report.alive as u64);
    println!(
        "shape to check: every archetype answered; the complex query's value \
         (reconstructed peak) is in the fire regime (>150 C); composition \
         succeeds with utility 1.0 or degrades only on optional steps."
    );
    exp.finish()
}
