//! **T20** — multi-cell federation: gossip membership, roaming handoff,
//! and peer load absorption, swept across federation size × cell churn ×
//! user mobility. Each cell owns its own streaming runtime over its own
//! grid; cells are stitched together only by seeded gossip (anti-entropy
//! membership + load digests + replicated handoff records) with no
//! central orchestrator.
//!
//! Three variants run per point:
//!
//! * **federated** — absorption on, next-cell predictor pre-warming plan
//!   caches at predicted destinations (warm handoffs);
//! * **cold** — absorption on but purely reactive planning (predictor
//!   off, zero cache TTL): every migration pays the full plan + discovery
//!   path at the destination;
//! * **isolated** — absorption off (cells ignore each other), only run
//!   under churn as the baseline the tentpole assertion compares against.
//!
//! Per-seed acceptance asserts: under a single-cell kill, federated
//! goodput strictly beats isolated cells (neighbors discovered via gossip
//! absorb the dead cell's admissions, honoring their own watermarks); and
//! warm handoff p99 is strictly below cold handoff p99 (the predictor's
//! pre-warm turns the 370 ms plan+discovery path into a 30 ms
//! revalidation).
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_t20_federation [-- --smoke]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_bench::{header, Experiment};
use pg_core::PervasiveGrid;
use pg_federation::{commute_traces, quantile, Federation, FederationConfig, RoamingConfig};
use pg_runtime::{
    MultiQueryRuntime, OverloadConfig, OverloadPolicy, QueryOpts, RuntimeConfig, SchedPolicy,
};
use pg_sim::fault::FaultPlan;
use pg_sim::rng::RngStreams;
use pg_sim::{Duration, SimTime};
use rand::Rng;
use rayon::prelude::*;
use std::process::ExitCode;

/// Per-cell service capacity: 2 slots per 30 s epoch.
const CAPACITY_HZ: f64 = 2.0 / 30.0;
const HORIZON_S: u64 = 3_600;

#[derive(Clone, Copy)]
struct Churn {
    name: &'static str,
    /// Kill cell 1's base station mid-run?
    kill: bool,
}

#[derive(Clone, Copy)]
struct Mobility {
    name: &'static str,
    dwell_min: u64,
    dwell_max: u64,
}

const CHURNS: [Churn; 2] = [
    Churn {
        name: "steady",
        kill: false,
    },
    Churn {
        name: "kill1",
        kill: true,
    },
];
const MOBILITIES: [Mobility; 2] = [
    Mobility {
        name: "slow",
        dwell_min: 500,
        dwell_max: 900,
    },
    Mobility {
        name: "fast",
        dwell_min: 150,
        dwell_max: 300,
    },
];

fn cell_runtime(seed: u64, faults: Option<FaultPlan>) -> MultiQueryRuntime<PervasiveGrid> {
    let mut b = PervasiveGrid::building(1, 4, seed);
    if let Some(plan) = faults {
        b = b.faults(plan);
    }
    let cfg = RuntimeConfig::builder()
        .capacity(32)
        .epoch(Duration::from_secs(30))
        .slots_per_epoch(2)
        .policy(SchedPolicy::Edf)
        .overload(OverloadConfig::watermarks(
            OverloadPolicy::Shed,
            0,
            0,
            16,
            24,
        ))
        .build();
    MultiQueryRuntime::new(cfg, b.build())
}

/// One federation run. `seed` derives everything: grids, mobility traces,
/// arrivals, gossip peer selection, bus jitter.
fn run_one(
    cells: usize,
    churn: Churn,
    mobility: Mobility,
    seed: u64,
    redirect: bool,
    warm: bool,
) -> Federation {
    let runtimes = (0..cells)
        .map(|i| {
            let cell_seed = seed * 1_000 + i as u64;
            let faults = (churn.kill && i == 1).then(|| {
                FaultPlan::builder(cell_seed)
                    .base_outage(
                        SimTime::from_secs(HORIZON_S / 6),
                        SimTime::from_secs(2 * HORIZON_S / 3),
                    )
                    .build()
                    .unwrap()
            });
            cell_runtime(cell_seed, faults)
        })
        .collect();
    let users = 4 * cells;
    let traces = commute_traces(
        seed,
        &RoamingConfig {
            users,
            cells,
            horizon: Duration::from_secs(HORIZON_S),
            dwell_min: Duration::from_secs(mobility.dwell_min),
            dwell_max: Duration::from_secs(mobility.dwell_max),
        },
    );
    let fcfg = FederationConfig {
        seed,
        redirect,
        predictor: warm,
        cache_ttl: if warm {
            Duration::from_secs(600)
        } else {
            Duration::ZERO
        },
        ..FederationConfig::default()
    };
    let mut fed = Federation::new(fcfg, runtimes, traces);

    // Offered load ~60% of aggregate capacity: bursts queue deep enough
    // that roaming users leave in-flight queries behind (migrations), yet
    // live cells keep the headroom that makes absorbing a dead neighbor's
    // admissions a win rather than a cascade.
    let rate_hz = 0.6 * CAPACITY_HZ * cells as f64;
    let mut rng = RngStreams::new(seed).fork("t20-arrivals");
    let texts = [
        "SELECT AVG(temp) FROM sensors",
        "SELECT MAX(temp) FROM sensors",
        "SELECT temp FROM sensors WHERE sensor_id = 3",
    ];
    let mut t = 0.0;
    loop {
        t += -rng.gen::<f64>().max(1e-12).ln() / rate_hz;
        if t >= HORIZON_S as f64 {
            break;
        }
        let user = rng.gen_range(0..users as u64);
        let text = texts[rng.gen_range(0..texts.len())];
        fed.offer(
            SimTime::from_secs_f64(t),
            user,
            text,
            QueryOpts::with_deadline(Duration::from_secs(120)),
        );
    }
    fed.run(SimTime::from_secs(HORIZON_S));
    fed
}

fn main() -> ExitCode {
    let mut exp = Experiment::from_args("exp_t20_federation");
    let reps: u64 = exp.scale3(4, 2, 12);
    let cell_counts: Vec<usize> = exp.scale3(vec![3, 6], vec![3], vec![3, 6, 9]);
    exp.set_meta("reps", reps.to_string());
    exp.set_meta("horizon_s", HORIZON_S.to_string());

    println!(
        "T20: federation size x cell churn x user mobility, {reps} seeds \
         per point ({HORIZON_S} s horizon, ~60% aggregate load, commute-ring \
         mobility; kill1 = cell 1 base down for half the run)"
    );
    header(
        "federated vs isolated goodput; warm (pre-warmed) vs cold (reactive) handoff p99",
        &[
            ("cells", 5),
            ("churn", 6),
            ("move", 4),
            ("good fed", 8),
            ("good iso", 8),
            ("absorb", 6),
            ("migr", 5),
            ("fwd", 4),
            ("lost", 4),
            ("warm p99", 8),
            ("cold p99", 8),
            ("prewarm", 7),
        ],
    );

    for &cells in &cell_counts {
        for churn in CHURNS {
            for mobility in MOBILITIES {
                struct Point {
                    met_fed: u64,
                    met_iso: u64,
                    absorbed: u64,
                    migrations: u64,
                    forwards: u64,
                    lost: u64,
                    prewarms: u64,
                    warm_lat: Vec<f64>,
                    cold_lat: Vec<f64>,
                }
                let points: Vec<Point> = (0..reps)
                    .into_par_iter()
                    .map(|rep| {
                        let seed = rep * 100 + cells as u64;
                        let fed = run_one(cells, churn, mobility, seed, true, true);
                        let cold = run_one(cells, churn, mobility, seed, true, false);
                        let (_, met_fed) = fed.goodput();

                        // Warm-vs-cold: the predictor's pre-warm must beat
                        // reactive re-planning at the tail, per seed.
                        let warm_lat = fed.stats.warm_handoff_latencies_s.clone();
                        let cold_lat = cold.stats.cold_handoff_latencies_s.clone();
                        assert!(
                            !warm_lat.is_empty(),
                            "seed {seed} c{cells} {}/{}: no warm handoffs landed",
                            churn.name,
                            mobility.name
                        );
                        assert!(
                            !cold_lat.is_empty(),
                            "seed {seed} c{cells} {}/{}: no cold handoffs landed",
                            churn.name,
                            mobility.name
                        );
                        let warm_p99 = quantile(&warm_lat, 0.99).unwrap();
                        let cold_p99 = quantile(&cold_lat, 0.99).unwrap();
                        assert!(
                            warm_p99 < cold_p99,
                            "seed {seed} c{cells} {}/{}: warm handoff p99 {warm_p99:.3} s \
                             not below cold {cold_p99:.3} s",
                            churn.name,
                            mobility.name
                        );

                        // Tentpole: under a single-cell kill, the federation
                        // strictly beats the same cells running isolated.
                        let met_iso = if churn.kill {
                            let iso = run_one(cells, churn, mobility, seed, false, true);
                            let (_, met_iso) = iso.goodput();
                            assert!(
                                fed.stats.absorbed > 0,
                                "seed {seed} c{cells} {}: kill produced no absorption",
                                mobility.name
                            );
                            assert!(
                                met_fed > met_iso,
                                "seed {seed} c{cells} {}: federated goodput {met_fed} \
                                 not above isolated {met_iso}",
                                mobility.name
                            );
                            met_iso
                        } else {
                            0
                        };

                        let s = &fed.stats;
                        Point {
                            met_fed,
                            met_iso,
                            absorbed: s.absorbed,
                            migrations: s.migrations_completed,
                            forwards: s.forwards_completed,
                            lost: s.migrations_lost + s.forwards_lost,
                            prewarms: s.prewarms,
                            warm_lat,
                            cold_lat,
                        }
                    })
                    .collect();

                let n = reps as f64;
                let sum = |f: fn(&Point) -> u64| points.iter().map(f).sum::<u64>();
                let (met_fed, met_iso) = (sum(|p| p.met_fed), sum(|p| p.met_iso));
                let (absorbed, migrations) = (sum(|p| p.absorbed), sum(|p| p.migrations));
                let (forwards, lost) = (sum(|p| p.forwards), sum(|p| p.lost));
                let prewarms = sum(|p| p.prewarms);
                let warm_all: Vec<f64> = points
                    .iter()
                    .flat_map(|p| p.warm_lat.iter().copied())
                    .collect();
                let cold_all: Vec<f64> = points
                    .iter()
                    .flat_map(|p| p.cold_lat.iter().copied())
                    .collect();
                let warm_p99 = quantile(&warm_all, 0.99).unwrap_or(0.0);
                let cold_p99 = quantile(&cold_all, 0.99).unwrap_or(0.0);

                let key = format!("c{cells}.{}.{}", churn.name, mobility.name);
                let goodput_fed = met_fed as f64 * 3_600.0 / (HORIZON_S as f64 * n);
                exp.set_scalar(format!("{key}.goodput_fed_per_h"), goodput_fed);
                if churn.kill {
                    let goodput_iso = met_iso as f64 * 3_600.0 / (HORIZON_S as f64 * n);
                    exp.set_scalar(format!("{key}.goodput_iso_per_h"), goodput_iso);
                }
                exp.set_scalar(format!("{key}.warm_handoff_p99_s"), warm_p99);
                exp.set_scalar(format!("{key}.cold_handoff_p99_s"), cold_p99);
                exp.set_counter(format!("{key}.absorbed"), absorbed);
                exp.set_counter(format!("{key}.migrations_completed"), migrations);
                exp.set_counter(format!("{key}.forwards_completed"), forwards);
                exp.set_counter(format!("{key}.handoffs_lost"), lost);
                exp.set_counter(format!("{key}.prewarms"), prewarms);
                println!(
                    "{cells:>5}  {:>6}  {:>4}  {met_fed:>8}  {:>8}  {absorbed:>6}  \
                     {migrations:>5}  {forwards:>4}  {lost:>4}  {warm_p99:>8.3}  \
                     {cold_p99:>8.3}  {prewarms:>7}",
                    churn.name,
                    mobility.name,
                    if churn.kill {
                        met_iso.to_string()
                    } else {
                        "-".into()
                    },
                );
            }
        }
    }

    println!(
        "shape to check: under kill1 the federated column strictly beats \
         isolated on every seed — the dead cell's users are rerouted into \
         live neighbors picked from gossiped load digests, each neighbor \
         still honoring its own shed watermarks (absorb > 0). Warm handoff \
         p99 sits ~340 ms under cold on every seed: the next-cell predictor \
         pre-warms the destination's plan cache so a migration pays a 30 ms \
         revalidation instead of the full 370 ms plan + discovery path. \
         Faster mobility raises migrations and forwards roughly in \
         proportion to move frequency; lost handoffs stay 0 with a clean \
         bus (dead-letters only appear under bus fault plans)."
    );

    exp.finish()
}
