//! **T13** — mobility-driven composition: proximity services hosted on
//! moving devices (§3: "A distributed service composition platform should
//! follow the mobility pattern of a set of services. … Service composition
//! should be able to take advantage of different short-lived services which
//! stay in the vicinity for a finite amount of time and then disappear").
//!
//! Availability here is *derived from motion* (random-waypoint devices
//! drifting in and out of radio range of the client), not sampled from an
//! exponential process: the experiment sweeps device speed and radio range.
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_t13_mobility [-- --smoke]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_bench::{header, Experiment};
use pg_compose::htn::MethodLibrary;
use pg_compose::manager::{execute, ManagerKind, ServiceWorld};
use pg_discovery::description::ServiceDescription;
use pg_discovery::ontology::Ontology;
use pg_net::churn::ChurnSchedule;
use pg_net::geom::Point;
use pg_net::mobility::{proximity_schedule, MobilityConfig};
use pg_sim::SimTime;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

const HORIZON_S: f64 = 40_000.0;

fn world(
    onto: &Ontology,
    speed: f64,
    range: f64,
    mobile_replicas: usize,
    seed: u64,
) -> ServiceWorld {
    let cfg = MobilityConfig {
        width: 100.0,
        height: 100.0,
        speed_min: speed * 0.5,
        speed_max: speed * 1.5,
        pause: 5.0,
    };
    let client = Point::flat(50.0, 50.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = ServiceWorld::new();
    // Fixed-grid roles are always up; the sensing/display roles live on
    // responders' moving devices.
    for class in ["MapService", "PdeSolverService"] {
        w.add_service(
            ServiceDescription::new(format!("{class}-fixed"), onto.class(class).unwrap()),
            ChurnSchedule::always_up(),
        );
    }
    for class in ["TemperatureSensor", "WeatherService", "DisplayService"] {
        for i in 0..mobile_replicas {
            w.add_service(
                ServiceDescription::new(format!("{class}-mobile-{i}"), onto.class(class).unwrap()),
                proximity_schedule(&cfg, client, range, HORIZON_S, 1.0, &mut rng),
            );
        }
    }
    w
}

fn measure(w: &ServiceWorld, onto: &Ontology, runs: u64) -> (f64, f64, f64) {
    let plan = MethodLibrary::pervasive_grid()
        .decompose("temperature-distribution")
        .unwrap();
    let mut ok = 0u64;
    let mut utility = 0.0;
    let mut rebinds = 0u64;
    for i in 0..runs {
        let r = execute(
            w,
            onto,
            &plan,
            ManagerKind::DistributedReactive,
            SimTime::from_secs(i * (HORIZON_S as u64 / runs)),
        );
        if r.success {
            ok += 1;
        }
        utility += r.utility;
        rebinds += r.rebinds as u64;
    }
    (
        ok as f64 / runs as f64,
        utility / runs as f64,
        rebinds as f64 / runs as f64,
    )
}

fn main() -> ExitCode {
    let mut exp = Experiment::from_args("exp_t13_mobility");
    let runs: u64 = exp.scale(40, 10);
    let speeds: &[f64] = exp.scale(&[0.5, 1.5, 5.0], &[1.5]);
    let ranges: &[f64] = exp.scale(&[20.0, 40.0, 70.0], &[20.0, 70.0]);
    let replica_sweep: &[usize] = exp.scale(&[1, 3, 6, 10], &[1, 3]);
    exp.set_meta("runs", runs.to_string());
    let onto = Ontology::pervasive_grid();
    println!(
        "T13: composition over mobile proximity services \
         (100x100 m arena, client at the centre, {runs} runs/cell)"
    );
    header(
        "speed x radio range, 3 mobile replicas per role",
        &[
            ("speed m/s", 9),
            ("range m", 8),
            ("success", 8),
            ("utility", 8),
            ("rebinds", 8),
        ],
    );
    for &speed in speeds {
        for &range in ranges {
            let w = world(&onto, speed, range, 3, 77);
            let (s, u, r) = measure(&w, &onto, runs);
            let cell = format!("speed{speed}.range{range}");
            exp.set_scalar(format!("{cell}.success"), s);
            exp.set_scalar(format!("{cell}.utility"), u);
            exp.set_scalar(format!("{cell}.rebinds"), r);
            println!("{speed:>9}  {range:>8}  {s:>8.2}  {u:>8.2}  {r:>8.2}");
        }
        println!();
    }
    header(
        "replication sweep at the hardest cell (5 m/s, 20 m range)",
        &[
            ("replicas", 8),
            ("success", 8),
            ("utility", 8),
            ("rebinds", 8),
        ],
    );
    for &reps in replica_sweep {
        let w = world(&onto, 5.0, 20.0, reps, 78);
        let (s, u, r) = measure(&w, &onto, runs);
        let cell = format!("replicas{reps}");
        exp.set_scalar(format!("{cell}.success"), s);
        exp.set_scalar(format!("{cell}.utility"), u);
        exp.set_scalar(format!("{cell}.rebinds"), r);
        println!("{reps:>8}  {s:>8.2}  {u:>8.2}  {r:>8.2}");
    }
    println!(
        "\nshape to check: radio range dominates (success 0.25 -> 1.00 across \
         the 20 m -> 70 m sweep: a larger vicinity is higher proximity \
         availability); speed mostly shows up as rebinds and mid-step breaks \
         at intermediate ranges; replicating the mobile roles recovers \
         availability at the hardest cell — the distributed reactive manager \
         'follows the mobility pattern' by rebinding to whichever replica is \
         nearby."
    );
    exp.finish()
}
