//! **T11** — routing technique comparison (§4: "A particular network may
//! use flooding technique to route data, while another may use gossiping"):
//! coverage, transmissions, and network-wide energy per dissemination for
//! flooding / gossip / tree routing, across network sizes and loss rates.
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_t11_routing [-- --smoke]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_bench::{fmt, header, key_part, standard_world_with_loss, Experiment};
use pg_net::routing::Protocol;
use pg_sensornet::aggregate::READING_WIRE_BYTES;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut exp = Experiment::from_args("exp_t11_routing");
    let reps: u64 = exp.scale(20, 5);
    let losses: &[f64] = exp.scale(&[0.0, 0.1, 0.3], &[0.0, 0.3]);
    let sizes: &[usize] = exp.scale(&[50, 200], &[50]);
    exp.set_meta("reps", reps.to_string());
    println!(
        "T11: one dissemination from the base station ({}-byte packets)",
        READING_WIRE_BYTES
    );
    for &loss in losses {
        header(
            &format!("link loss {:.0}%  (mean of {reps} seeds)", loss * 100.0),
            &[
                ("n", 5),
                ("protocol", 14),
                ("coverage", 9),
                ("tx", 8),
                ("rx", 8),
                ("energy J", 10),
            ],
        );
        for &n in sizes {
            for proto in [
                Protocol::Flooding,
                Protocol::Gossip { p: 0.7 },
                Protocol::Gossip { p: 0.4 },
                Protocol::Tree,
            ] {
                let mut cov = pg_sim::metrics::Summary::new();
                let mut tx = pg_sim::metrics::Summary::new();
                let mut rx = pg_sim::metrics::Summary::new();
                let mut en = pg_sim::metrics::Summary::new();
                for seed in 0..reps {
                    let w = standard_world_with_loss(n, seed, loss);
                    let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
                    let d =
                        proto.disseminate(w.net.topology(), w.net.base(), w.net.link(), &mut rng);
                    cov.record(d.coverage());
                    tx.record(d.transmissions as f64);
                    rx.record(d.receptions as f64);
                    en.record(d.energy(
                        READING_WIRE_BYTES,
                        w.net.radio(),
                        w.net.topology().range(),
                    ));
                }
                let cell = format!("loss{loss}.n{n}.{}", key_part(&proto.name()));
                exp.record_summary(format!("{cell}.coverage"), &cov);
                exp.record_summary(format!("{cell}.tx"), &tx);
                exp.record_summary(format!("{cell}.rx"), &rx);
                exp.record_summary(format!("{cell}.energy_j"), &en);
                println!(
                    "{n:>5}  {:>14}  {:>9}  {:>8}  {:>8}  {:>10}",
                    proto.name(),
                    format!("{:.3}", cov.mean()),
                    fmt(tx.mean()),
                    fmt(rx.mean()),
                    fmt(en.mean()),
                );
            }
            println!();
        }
    }
    println!(
        "shape to check: flooding always covers but costs the most \
         transmissions; gossip trades coverage for energy as p falls (and \
         collapses at low p on sparse networks); tree routing is cheapest \
         per delivery on lossless links but loses whole subtrees as loss \
         rises."
    );
    exp.finish()
}
