//! **T22** — closing §4's adaptive loop: the contextual LinUCB bandit
//! (`Policy::Bandit`) against the k-NN `Policy::Adaptive` and the
//! best-in-hindsight-at-start static policy, under *nonstationary*
//! scenarios where the right placement flips mid-run.
//!
//! Two scenarios, each run per seed:
//!
//! * **faults** — at the half-way point the grid's three workers go down
//!   and the message channel degrades to 30% loss. Query features are
//!   untouched (same members, same hops), so the k-NN case memory keeps
//!   replaying its stale phase-1 cases — hybrid/grid placements whose
//!   measured cost is now ~50,000× the best arm — while the bandit's
//!   discounted per-arm models flip to the base station within a few
//!   pulls.
//! * **load** — at the half-way point a queue-wait ramp begins (published
//!   into the learner via `note_pressure`) under a fixed response
//!   deadline. The energy-cheapest placement (hybrid, ~0.20 s) starts
//!   missing the deadline once the wait eats the budget; only the fast
//!   in-network tree (~0.07 s) still fits. The bandit's composite reward
//!   penalizes the misses and moves; cost-only learners do not.
//!
//! Per seed the binary *asserts* (the regress gate checks the numbers,
//! chaos nights check the asserts at higher scale): windowed regret vs the
//! clairvoyant oracle shrinks within each phase, and after the shift the
//! bandit strictly beats both k-NN and static-best-at-start — on phase-2
//! cost (faults) and phase-2 goodput (load).
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_t22_adaptive [-- --smoke | --chaos]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_bench::{fmt, header, standard_world_with_loss, Experiment, World};
use pg_partition::decide::{oracle_choice, DecisionMaker, Policy};
use pg_partition::exec::{execute_once, ExecContext};
use pg_partition::features::QueryFeatures;
use pg_partition::learn::Reward;
use pg_partition::model::{CostWeights, SolutionModel};
use pg_sim::fault::FaultPlan;
use pg_sim::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::process::ExitCode;

const N: usize = 100;
/// Load scenario: the end-to-end response deadline, seconds.
const LOAD_DEADLINE_S: f64 = 0.30;
/// Load scenario: peak queue wait at full ramp, seconds.
const LOAD_MAX_WAIT_S: f64 = 0.20;
/// Load scenario: objective penalty for a missed deadline (the cost
/// scalars are ~0.02–0.08, so a miss dominates — goodput first).
const MISS_PENALTY: f64 = 1.0;

#[derive(Clone, Copy, PartialEq)]
enum Scenario {
    Faults,
    Load,
}

impl Scenario {
    fn key(self) -> &'static str {
        match self {
            Scenario::Faults => "faults",
            Scenario::Load => "load",
        }
    }
}

fn stream(scenario: Scenario, seed: u64, len: usize) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| match scenario {
            // Complex-heavy: the fault shift flips the Complex optimum
            // (hybrid -> base station) by ~6 orders of magnitude.
            Scenario::Faults => match rng.gen_range(0..10) {
                0..=3 => "SELECT temperature_distribution() FROM sensors WHERE region(room210)"
                    .to_string(),
                4..=7 => "SELECT AVG(temp) FROM sensors".to_string(),
                _ => "SELECT MAX(temp) FROM sensors WHERE region(room210)".to_string(),
            },
            // Aggregate-heavy: under the wait ramp only the fast tree
            // placement keeps fitting the deadline.
            Scenario::Load => match rng.gen_range(0..10) {
                0..=7 => "SELECT AVG(temp) FROM sensors".to_string(),
                _ => "SELECT MAX(temp) FROM sensors WHERE region(room210)".to_string(),
            },
        })
        .collect()
}

/// The plan installed at the faults shift: all three grid workers down for
/// the rest of the run, message channel degraded. Windows cover all time —
/// the shift is expressed by *when the plan is swapped in*, so query
/// features (and with them the k-NN case distances) never move.
fn shift_plan(seed: u64) -> FaultPlan {
    let t0 = SimTime::ZERO;
    let t1 = SimTime::from_secs(2_000_000);
    FaultPlan::builder(seed)
        .message_loss(0.30)
        .worker_outage(0, t0, t1)
        .worker_outage(1, t0, t1)
        .worker_outage(2, t0, t1)
        .build()
        .expect("valid fault plan")
}

/// Queue wait at stream position `i` (load scenario): zero before the
/// shift, then a ramp reaching [`LOAD_MAX_WAIT_S`] halfway through
/// phase 2.
fn load_wait_s(i: usize, shift: usize, len: usize) -> (f64, f64) {
    if i < shift {
        return (0.0, 0.0);
    }
    let frac = (i - shift) as f64 / (len - shift).max(1) as f64;
    (LOAD_MAX_WAIT_S * (2.0 * frac).min(1.0), frac)
}

struct RunOut {
    /// Total scalar execution cost per phase.
    phase_cost: [f64; 2],
    /// Fraction of phase queries meeting the deadline (load scenario;
    /// 1.0 when no deadline is in force).
    goodput: [f64; 2],
    /// Mean per-decision regret (chosen objective − clairvoyant objective)
    /// over 4 stream windows: [0,1] = phase 1, [2,3] = phase 2.
    regret_w: [f64; 4],
}

/// Clairvoyant objective at one decision point: every standard candidate
/// executed on a clone of the world, judged by the scenario's objective.
#[allow(clippy::too_many_arguments)]
fn oracle_objective(
    scenario: Scenario,
    w: &World,
    query: &pg_query::ast::Query,
    weights: &CostWeights,
    wait_s: f64,
    members: usize,
    exec_seed: u64,
) -> Option<f64> {
    match scenario {
        Scenario::Faults => oracle_choice(
            &w.net, &w.grid, &w.field, &w.regions, w.now, query, weights, exec_seed,
        )
        .map(|(_, cost)| weights.scalar(&cost)),
        Scenario::Load => SolutionModel::candidates(members)
            .into_iter()
            .filter_map(|m| {
                let mut trial = w.net.clone();
                let mut ctx = ExecContext {
                    net: &mut trial,
                    grid: &w.grid,
                    field: &w.field,
                    regions: &w.regions,
                    now: w.now,
                };
                let mut rng = StdRng::seed_from_u64(exec_seed);
                let out = execute_once(&mut ctx, query, m, &mut rng).ok()?;
                let miss = wait_s + out.cost.time_s > LOAD_DEADLINE_S;
                Some(weights.scalar(&out.cost) + if miss { MISS_PENALTY } else { 0.0 })
            })
            .reduce(f64::min),
    }
}

fn run(scenario: Scenario, policy: Policy, seed: u64, len: usize) -> RunOut {
    let weights = CostWeights::default();
    let shift = len / 2;
    let mut w = standard_world_with_loss(N, seed, 0.02);
    let mut dm = DecisionMaker::new(policy, seed);
    let mut phase_cost = [0.0f64; 2];
    let mut met = [0u32; 2];
    let mut count = [0u32; 2];
    let mut regret_sum = [0.0f64; 4];
    let mut regret_n = [0u32; 4];
    for (i, text) in stream(scenario, seed, len).iter().enumerate() {
        if scenario == Scenario::Faults && i == shift {
            let plan = shift_plan(seed);
            w.net.set_fault_plan(plan.clone());
            w.grid.set_fault_plan(plan);
        }
        let (wait_s, load_frac) = match scenario {
            Scenario::Load => load_wait_s(i, shift, len),
            Scenario::Faults => (0.0, 0.0),
        };
        if scenario == Scenario::Load && i >= shift {
            dm.note_pressure((64.0 * load_frac) as usize, load_frac);
        }
        let query = pg_query::parse(text).expect("valid query");
        let features = {
            let ctx = ExecContext {
                net: &mut w.net,
                grid: &w.grid,
                field: &w.field,
                regions: &w.regions,
                now: w.now,
            };
            match QueryFeatures::extract(&ctx, &query) {
                Some(f) => f,
                None => continue,
            }
        };
        let Ok(model) = dm.choose(&w.net, &w.grid, &query, &features) else {
            continue;
        };
        // Regret is asserted for the bandit only, so only its run pays the
        // clairvoyant's per-decision counterfactual executions.
        let oracle_obj = if policy == Policy::Bandit {
            oracle_objective(
                scenario,
                &w,
                &query,
                &weights,
                wait_s,
                features.members,
                i as u64,
            )
        } else {
            None
        };
        let mut ctx = ExecContext {
            net: &mut w.net,
            grid: &w.grid,
            field: &w.field,
            regions: &w.regions,
            now: w.now,
        };
        let mut rng = StdRng::seed_from_u64(i as u64);
        let Ok(out) = execute_once(&mut ctx, &query, model, &mut rng) else {
            continue;
        };
        let scalar = weights.scalar(&out.cost);
        let missed = scenario == Scenario::Load && wait_s + out.cost.time_s > LOAD_DEADLINE_S;
        let phase = usize::from(i >= shift);
        phase_cost[phase] += scalar;
        count[phase] += 1;
        if !missed {
            met[phase] += 1;
        }
        if let Some(oracle) = oracle_obj {
            let obj = scalar + if missed { MISS_PENALTY } else { 0.0 };
            let window = (i * 4 / len).min(3);
            regret_sum[window] += obj - oracle;
            regret_n[window] += 1;
        }
        dm.observe(
            &w.net,
            &w.grid,
            features,
            model,
            Reward {
                cost: out.cost,
                loss_frac: (1.0 - out.delivered_frac).clamp(0.0, 1.0),
                deadline_missed: missed,
                retries: out.retries,
                dead_letters: 0,
            },
        );
    }
    let mut regret_w = [0.0f64; 4];
    for k in 0..4 {
        regret_w[k] = regret_sum[k] / f64::from(regret_n[k].max(1));
    }
    RunOut {
        phase_cost,
        goodput: [
            f64::from(met[0]) / f64::from(count[0].max(1)),
            f64::from(met[1]) / f64::from(count[1].max(1)),
        ],
        regret_w,
    }
}

fn main() -> ExitCode {
    let mut exp = Experiment::from_args("exp_t22_adaptive");
    let stream_len: usize = exp.scale3(400, 160, 600);
    let seeds: u64 = exp.scale3(3, 2, 6);
    exp.set_meta("stream_len", stream_len.to_string());
    exp.set_meta("seeds", seeds.to_string());
    println!(
        "T22: nonstationary adaptive loop on a {N}-sensor network, \
         {stream_len}-query streams, shift at {}, {seeds} seeds",
        stream_len / 2
    );
    let statics: [SolutionModel; 5] = {
        let c = SolutionModel::candidates(N - 1);
        [c[0], c[1], c[2], c[3], c[4]]
    };
    for scenario in [Scenario::Faults, Scenario::Load] {
        let sk = scenario.key();
        println!("\n== scenario: {sk}");
        header(
            "phase-2 outcome per policy (mean over seeds)",
            &[("policy", 26), ("p2 cost", 11), ("p2 goodput", 11)],
        );
        let mut mean_bandit = RunOut {
            phase_cost: [0.0; 2],
            goodput: [0.0; 2],
            regret_w: [0.0; 4],
        };
        let mut mean_knn = [0.0f64; 2]; // (phase2 cost, phase2 goodput)
        let mut mean_static = [0.0f64; 2];
        for s in 0..seeds {
            let seed = 11 + s;
            let bandit = run(scenario, Policy::Bandit, seed, stream_len);
            let knn = run(scenario, Policy::Adaptive, seed, stream_len);
            // Best-in-hindsight-at-start: the static policy with the best
            // phase-1 total, judged on its phase-2 outcome.
            let static_runs: Vec<RunOut> = statics
                .iter()
                .map(|&m| run(scenario, Policy::Static(m), seed, stream_len))
                .collect();
            let best_at_start = static_runs
                .iter()
                .min_by(|a, b| {
                    a.phase_cost[0]
                        .partial_cmp(&b.phase_cost[0])
                        .expect("costs are never NaN")
                })
                .expect("five static runs");

            // The per-seed contract (chaos nights run it at 6 seeds and a
            // 600-query stream): regret shrinks within each phase, and the
            // bandit strictly wins phase 2.
            assert!(
                bandit.regret_w[1] < bandit.regret_w[0],
                "[{sk} seed {seed}] phase-1 windowed regret must shrink: \
                 {:.4} -> {:.4}",
                bandit.regret_w[0],
                bandit.regret_w[1]
            );
            assert!(
                bandit.regret_w[3] < bandit.regret_w[2],
                "[{sk} seed {seed}] phase-2 windowed regret must shrink: \
                 {:.4} -> {:.4}",
                bandit.regret_w[2],
                bandit.regret_w[3]
            );
            match scenario {
                Scenario::Faults => {
                    assert!(
                        bandit.phase_cost[1] < knn.phase_cost[1],
                        "[{sk} seed {seed}] bandit p2 cost {} must beat k-NN {}",
                        fmt(bandit.phase_cost[1]),
                        fmt(knn.phase_cost[1])
                    );
                    assert!(
                        bandit.phase_cost[1] < best_at_start.phase_cost[1],
                        "[{sk} seed {seed}] bandit p2 cost {} must beat static-best {}",
                        fmt(bandit.phase_cost[1]),
                        fmt(best_at_start.phase_cost[1])
                    );
                }
                Scenario::Load => {
                    assert!(
                        bandit.goodput[1] > knn.goodput[1],
                        "[{sk} seed {seed}] bandit p2 goodput {:.3} must beat k-NN {:.3}",
                        bandit.goodput[1],
                        knn.goodput[1]
                    );
                    assert!(
                        bandit.goodput[1] > best_at_start.goodput[1],
                        "[{sk} seed {seed}] bandit p2 goodput {:.3} must beat static-best {:.3}",
                        bandit.goodput[1],
                        best_at_start.goodput[1]
                    );
                }
            }

            let k = seeds as f64;
            for p in 0..2 {
                mean_bandit.phase_cost[p] += bandit.phase_cost[p] / k;
                mean_bandit.goodput[p] += bandit.goodput[p] / k;
            }
            for wi in 0..4 {
                mean_bandit.regret_w[wi] += bandit.regret_w[wi] / k;
            }
            mean_knn[0] += knn.phase_cost[1] / k;
            mean_knn[1] += knn.goodput[1] / k;
            mean_static[0] += best_at_start.phase_cost[1] / k;
            mean_static[1] += best_at_start.goodput[1] / k;
        }
        for (name, cost, goodput) in [
            (
                "bandit (LinUCB)",
                mean_bandit.phase_cost[1],
                mean_bandit.goodput[1],
            ),
            ("adaptive (k-NN)", mean_knn[0], mean_knn[1]),
            ("static best-at-start", mean_static[0], mean_static[1]),
        ] {
            println!("{name:>26}  {:>11}  {goodput:>11.3}", fmt(cost));
        }
        println!(
            "windowed regret (bandit, mean/decision): p1 {} -> {}, p2 {} -> {}",
            fmt(mean_bandit.regret_w[0]),
            fmt(mean_bandit.regret_w[1]),
            fmt(mean_bandit.regret_w[2]),
            fmt(mean_bandit.regret_w[3]),
        );
        exp.set_scalar(
            format!("{sk}.bandit.phase2_cost"),
            mean_bandit.phase_cost[1],
        );
        exp.set_scalar(format!("{sk}.knn.phase2_cost"), mean_knn[0]);
        exp.set_scalar(format!("{sk}.static_best.phase2_cost"), mean_static[0]);
        exp.set_scalar(format!("{sk}.bandit.goodput2"), mean_bandit.goodput[1]);
        exp.set_scalar(format!("{sk}.knn.goodput2"), mean_knn[1]);
        exp.set_scalar(format!("{sk}.static_best.goodput2"), mean_static[1]);
        for (wi, r) in mean_bandit.regret_w.iter().enumerate() {
            exp.set_scalar(format!("{sk}.bandit.regret_w{wi}"), *r);
        }
    }
    println!(
        "\nshape to check: in both scenarios the bandit's windowed regret \
         collapses within each phase, and after the shift it strictly beats \
         the frozen learners — k-NN keeps replaying stale cases (identical \
         features, obsolete costs) and the phase-1 winner placement is \
         either ruinous (dead workers) or deadline-blind (wait ramp)."
    );
    exp.finish()
}
