//! **T2** — in-network aggregation savings vs. network size (the TAG shape
//! §4 builds on): energy per epoch for direct / cluster / tree collection
//! as the network grows.
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_t2_aggregation
//! ```

use pg_bench::{fmt, header, replicate, standard_world};
use pg_sensornet::aggregate::AggFn;
use pg_sensornet::cluster::default_head_count;
use pg_sensornet::epoch::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

const REPS: u64 = 10;

fn main() {
    println!("T2: aggregate-query energy vs network size (AVG over all sensors, one epoch)");
    header(
        "mean of 10 seeds",
        &[
            ("n", 5),
            ("direct J", 11),
            ("cluster J", 11),
            ("tree J", 11),
            ("tree/direct", 11),
            ("direct B", 11),
            ("tree B", 11),
        ],
    );
    for n in [25usize, 50, 100, 200, 400] {
        let run = |strategy: Strategy| {
            move |seed: u64| {
                let mut w = standard_world(n, seed);
                let members: Vec<_> = w
                    .net
                    .topology()
                    .nodes()
                    .filter(|&x| x != w.net.base())
                    .collect();
                let mut rng = StdRng::seed_from_u64(seed ^ 0xAA);
                let r = strategy.run_epoch(&mut w.net, &members, &w.field, w.now, AggFn::Avg, &mut rng);
                r.energy_j
            }
        };
        let bytes = |strategy: Strategy| {
            move |seed: u64| {
                let mut w = standard_world(n, seed);
                let members: Vec<_> = w
                    .net
                    .topology()
                    .nodes()
                    .filter(|&x| x != w.net.base())
                    .collect();
                let mut rng = StdRng::seed_from_u64(seed ^ 0xAA);
                let r = strategy.run_epoch(&mut w.net, &members, &w.field, w.now, AggFn::Avg, &mut rng);
                r.total_bytes as f64
            }
        };
        let direct = replicate(REPS, run(Strategy::Direct)).mean();
        let cluster = replicate(
            REPS,
            run(Strategy::Cluster {
                heads: default_head_count(n - 1),
            }),
        )
        .mean();
        let tree = replicate(REPS, run(Strategy::Tree)).mean();
        let db = replicate(REPS, bytes(Strategy::Direct)).mean();
        let tb = replicate(REPS, bytes(Strategy::Tree)).mean();
        println!(
            "{n:>5}  {:>11}  {:>11}  {:>11}  {:>11}  {:>11}  {:>11}",
            fmt(direct),
            fmt(cluster),
            fmt(tree),
            format!("{:.2}", tree / direct),
            fmt(db),
            fmt(tb),
        );
    }
    println!(
        "\nshape to check: tree/direct ratio falls as n grows (in-network \
         aggregation pays off more the bigger the network — TAG's result); \
         direct bytes grow superlinearly (hop count grows), tree bytes \
         linearly (one partial per node)."
    );
}
