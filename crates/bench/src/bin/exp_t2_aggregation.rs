//! **T2** — in-network aggregation savings vs. network size (the TAG shape
//! §4 builds on): energy per epoch for direct / cluster / tree collection
//! as the network grows.
//!
//! ```sh
//! cargo run --release -p pg-bench --bin exp_t2_aggregation [-- --smoke]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use pg_bench::standard_world;
use pg_bench::{fmt, header, replicate_par, Experiment};
use pg_sensornet::aggregate::AggFn;
use pg_sensornet::cluster::default_head_count;
use pg_sensornet::epoch::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut exp = Experiment::from_args("exp_t2_aggregation");
    let reps: u64 = exp.scale(10, 3);
    let sizes: &[usize] = exp.scale(&[25, 50, 100, 200, 400], &[25, 50, 100]);
    exp.set_meta("reps", reps.to_string());
    println!("T2: aggregate-query energy vs network size (AVG over all sensors, one epoch)");
    header(
        &format!("mean of {reps} seeds"),
        &[
            ("n", 5),
            ("direct J", 11),
            ("cluster J", 11),
            ("tree J", 11),
            ("tree/direct", 11),
            ("direct B", 11),
            ("tree B", 11),
        ],
    );
    for &n in sizes {
        let run = |strategy: Strategy| {
            move |seed: u64| {
                let mut w = standard_world(n, seed);
                let members: Vec<_> = w
                    .net
                    .topology()
                    .nodes()
                    .filter(|&x| x != w.net.base())
                    .collect();
                let mut rng = StdRng::seed_from_u64(seed ^ 0xAA);
                let r =
                    strategy.run_epoch(&mut w.net, &members, &w.field, w.now, AggFn::Avg, &mut rng);
                r.energy_j
            }
        };
        let bytes = |strategy: Strategy| {
            move |seed: u64| {
                let mut w = standard_world(n, seed);
                let members: Vec<_> = w
                    .net
                    .topology()
                    .nodes()
                    .filter(|&x| x != w.net.base())
                    .collect();
                let mut rng = StdRng::seed_from_u64(seed ^ 0xAA);
                let r =
                    strategy.run_epoch(&mut w.net, &members, &w.field, w.now, AggFn::Avg, &mut rng);
                r.total_bytes as f64
            }
        };
        // Multi-seed replications fan out across the rayon pool; the fold
        // back into each Summary is in seed order (see `replicate_par`).
        let direct = replicate_par(reps, run(Strategy::Direct));
        let cluster = replicate_par(
            reps,
            run(Strategy::Cluster {
                heads: default_head_count(n - 1),
            }),
        );
        let tree = replicate_par(reps, run(Strategy::Tree));
        let db = replicate_par(reps, bytes(Strategy::Direct));
        let tb = replicate_par(reps, bytes(Strategy::Tree));
        exp.record_summary(format!("n{n}.direct_j"), &direct);
        exp.record_summary(format!("n{n}.cluster_j"), &cluster);
        exp.record_summary(format!("n{n}.tree_j"), &tree);
        exp.record_summary(format!("n{n}.direct_bytes"), &db);
        exp.record_summary(format!("n{n}.tree_bytes"), &tb);
        exp.set_scalar(
            format!("n{n}.tree_over_direct"),
            tree.mean() / direct.mean(),
        );
        println!(
            "{n:>5}  {:>11}  {:>11}  {:>11}  {:>11}  {:>11}  {:>11}",
            fmt(direct.mean()),
            fmt(cluster.mean()),
            fmt(tree.mean()),
            format!("{:.2}", tree.mean() / direct.mean()),
            fmt(db.mean()),
            fmt(tb.mean()),
        );
    }
    println!(
        "\nshape to check: tree/direct ratio falls as n grows (in-network \
         aggregation pays off more the bigger the network — TAG's result); \
         direct bytes grow superlinearly (hop count grows), tree bytes \
         linearly (one partial per node)."
    );
    exp.finish()
}
